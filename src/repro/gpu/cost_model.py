"""Shared cost-model helpers: rooflines and utilization queries.

The per-kernel duration models live with their kernels
(:mod:`repro.gpu.libraries` for GEMMs, :mod:`repro.gpu.kernels` for the
rest); this module provides the cross-cutting quantities used by static
knowledge (section 4.8), the epoch calibrator, and analysis tooling:
roofline bounds, achieved-utilization queries, and launch-bound
diagnostics.

None of this feeds back into Astra's *decisions* -- the paper's point is
that decisions come from measurement.  These helpers exist for
calibration (is a kernel where the roofline says it could be?), for the
enumerator's coarse flop budgeting, and for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import GPUSpec
from .kernels import Kernel
from .streams import ExecutionResult


@dataclass(frozen=True)
class Roofline:
    """Classic roofline bounds for a piece of work on a device."""

    flops: float
    bytes_moved: float
    device_name: str
    compute_bound_us: float
    memory_bound_us: float

    @property
    def bound_us(self) -> float:
        """The roofline: no implementation can beat this."""
        return max(self.compute_bound_us, self.memory_bound_us)

    @property
    def is_compute_bound(self) -> bool:
        return self.compute_bound_us >= self.memory_bound_us

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte; decides which wall the work hits first."""
        return self.flops / max(1.0, self.bytes_moved)


def roofline(flops: float, bytes_moved: float, device: GPUSpec) -> Roofline:
    return Roofline(
        flops=flops,
        bytes_moved=bytes_moved,
        device_name=device.name,
        compute_bound_us=flops / device.peak_flops_per_us,
        memory_bound_us=bytes_moved / device.mem_bw_bytes_per_us,
    )


def gemm_roofline(m: int, k: int, n: int, device: GPUSpec) -> Roofline:
    """Roofline of an (m,k) x (k,n) GEMM at fp32."""
    return roofline(2.0 * m * k * n, 4.0 * (m * k + k * n + m * n), device)


def achieved_fraction(kernel: Kernel, device: GPUSpec) -> float:
    """Fraction of the roofline bound this kernel's model achieves.

    Always <= 1 by construction (the simulator never beats physics); the
    calibration tests pin typical values per kernel family.
    """
    flops = kernel.flops()
    if flops <= 0:
        return 0.0
    bound = flops / device.peak_flops_per_us
    return bound / kernel.duration_us(device)


def launch_bound_fraction(result: ExecutionResult, device: GPUSpec) -> float:
    """Share of a mini-batch's wall time attributable to CPU dispatch.

    High values mean the schedule is launch-bound -- the regime where
    fusion pays (section 2.3); it shrinks as batch size grows, which is
    the mechanism behind the decaying speedups of Tables 2-4.
    """
    launch_time = len(result.records) * device.launch_overhead_us
    return min(1.0, launch_time / max(result.total_time_us, 1e-9))


def device_utilization(result: ExecutionResult, device: GPUSpec) -> float:
    """Achieved flops over peak for one executed mini-batch."""
    flops = sum(r.kernel.flops() for r in result.records)
    peak = device.peak_flops_per_us * max(result.total_time_us, 1e-9)
    return flops / peak
