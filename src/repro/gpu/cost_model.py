"""Shared cost-model helpers: rooflines and utilization queries.

The per-kernel duration models live with their kernels
(:mod:`repro.gpu.libraries` for GEMMs, :mod:`repro.gpu.kernels` for the
rest); this module provides the cross-cutting quantities used by static
knowledge (section 4.8), the epoch calibrator, and analysis tooling:
roofline bounds, achieved-utilization queries, and launch-bound
diagnostics.

Rankings still come from measurement -- the paper's point -- but the
fast-path pre-ranker (:mod:`repro.perf.ranker`) uses the per-unit cost
helpers below to *skip provably-losing configurations* before any
mini-batch is spent on them: at base clock the simulator's sequential
record durations equal the analytic kernel models exactly, so the
analytic per-choice cost is the measurement the wirer would have taken.
The roofline/utilization helpers remain what they were: calibration (is
a kernel where the roofline says it could be?), the enumerator's coarse
flop budgeting, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import GPUSpec
from .kernels import Kernel
from .streams import ExecutionResult


@dataclass(frozen=True)
class Roofline:
    """Classic roofline bounds for a piece of work on a device."""

    flops: float
    bytes_moved: float
    device_name: str
    compute_bound_us: float
    memory_bound_us: float

    @property
    def bound_us(self) -> float:
        """The roofline: no implementation can beat this."""
        return max(self.compute_bound_us, self.memory_bound_us)

    @property
    def is_compute_bound(self) -> bool:
        return self.compute_bound_us >= self.memory_bound_us

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte; decides which wall the work hits first."""
        return self.flops / max(1.0, self.bytes_moved)


def roofline(flops: float, bytes_moved: float, device: GPUSpec) -> Roofline:
    return Roofline(
        flops=flops,
        bytes_moved=bytes_moved,
        device_name=device.name,
        compute_bound_us=flops / device.peak_flops_per_us,
        memory_bound_us=bytes_moved / device.mem_bw_bytes_per_us,
    )


def gemm_roofline(m: int, k: int, n: int, device: GPUSpec) -> Roofline:
    """Roofline of an (m,k) x (k,n) GEMM at fp32."""
    return roofline(2.0 * m * k * n, 4.0 * (m * k + k * n + m * n), device)


def achieved_fraction(kernel: Kernel, device: GPUSpec) -> float:
    """Fraction of the roofline bound this kernel's model achieves.

    Always <= 1 by construction (the simulator never beats physics); the
    calibration tests pin typical values per kernel family.
    """
    flops = kernel.flops()
    if flops <= 0:
        return 0.0
    bound = flops / device.peak_flops_per_us
    return bound / kernel.duration_us(device)


def unit_cost_us(unit, device: GPUSpec, include_dispatch: bool = False) -> float:
    """Analytic serial cost of one schedule unit.

    The kernel's duration model (wave quantization, library efficiency,
    memory floor) plus its gather pre-copy penalties -- exactly what the
    wirer's ``"units"`` metric sums for a sequentially executed unit at
    base clock, which is what makes margin-guarded pruning exact.  With
    ``include_dispatch`` the CPU launch overhead per launch is added
    (useful for launch-bound diagnostics; the pre-ranker must *not* add
    it, because the measured metric never includes it).
    """
    cost = sum(k.duration_us(device) for k in unit.pre_copies)
    if unit.kernel is not None:
        cost += unit.kernel.duration_us(device)
    if include_dispatch:
        launches = len(unit.pre_copies) + (1 if unit.kernel is not None else 0)
        cost += launches * device.launch_overhead_us
    return cost


def units_cost_us(units, device: GPUSpec, include_dispatch: bool = False) -> float:
    """Summed :func:`unit_cost_us` over a unit collection."""
    return sum(unit_cost_us(u, device, include_dispatch) for u in units)


def launch_bound_fraction(result: ExecutionResult, device: GPUSpec) -> float:
    """Share of a mini-batch's wall time attributable to CPU dispatch.

    High values mean the schedule is launch-bound -- the regime where
    fusion pays (section 2.3); it shrinks as batch size grows, which is
    the mechanism behind the decaying speedups of Tables 2-4.
    """
    launch_time = len(result.records) * device.launch_overhead_us
    return min(1.0, launch_time / max(result.total_time_us, 1e-9))


def device_utilization(result: ExecutionResult, device: GPUSpec) -> float:
    """Achieved flops over peak for one executed mini-batch."""
    flops = sum(r.kernel.flops() for r in result.records)
    peak = device.peak_flops_per_us * max(result.total_time_us, 1e-9)
    return flops / peak
