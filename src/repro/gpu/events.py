"""cudaEvent analog: lightweight named timestamps.

Astra's profiler wraps regions of interest between pairs of events
(section 5.2): the runtime only needs to *mark* the events in the critical
path, and elapsed time between a pair is queried after the mini-batch.
Events are stream-local unless marked global (super-epoch boundaries
synchronize across all streams).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


class EventNamespace:
    """Allocates unique event ids for one schedule."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def new_event(self, label: str = "") -> "EventId":
        return EventId(next(self._counter), label)


@dataclass(frozen=True)
class EventId:
    index: int
    label: str = ""

    def __str__(self) -> str:
        return f"ev{self.index}" + (f"({self.label})" if self.label else "")


@dataclass(frozen=True)
class ProfileRange:
    """A profiled region: elapsed time between two recorded events.

    ``key`` is the profile-index key this measurement feeds (section 4.6);
    the key already includes any higher-level context prefixes.
    """

    key: tuple
    start: EventId
    end: EventId
