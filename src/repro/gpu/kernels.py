"""Kernel launch descriptors understood by the GPU simulator.

A kernel is the unit the dispatcher schedules (paper section 2.2: nodes of
the DFG map to kernel implementations in cuBLAS etc.).  Every kernel
answers two questions for the discrete-event engine:

* ``duration_us(device)`` -- execution time when running *alone*;
* ``parallelism(device)`` -- how many SM slots it can occupy, which bounds
  how much it benefits from (or yields to) concurrent kernels on other
  streams.

Costs are pure functions of shapes and the device spec -- never of tensor
values -- which is the predictability property Astra's online profiling
relies on (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import GPUSpec
from .libraries import GEMM_LIBRARIES, GemmKernel


class Kernel:
    """Base class for schedulable device work."""

    name: str = "kernel"
    #: classification used by profiling keys and schedule dumps
    kind: str = "generic"

    def duration_us(self, device: GPUSpec) -> float:
        raise NotImplementedError

    def parallelism(self, device: GPUSpec) -> int:
        return device.sm_slots

    def flops(self) -> int:
        return 0

    def describe(self) -> str:
        return self.name


@dataclass
class GemmLaunch(Kernel):
    """One GEMM (possibly a fused group lowered to a single larger GEMM).

    ``library`` selects among the simulated kernel libraries -- the
    adaptation dimension of section 3.1.
    """

    m: int
    k: int
    n: int
    library: str
    #: ids of the DFG nodes this launch computes (1 for plain, >1 for fused)
    node_ids: tuple[int, ...] = ()
    kind: str = field(default="gemm", init=False)

    def __post_init__(self) -> None:
        if self.library not in GEMM_LIBRARIES:
            raise ValueError(f"unknown GEMM library {self.library!r}")
        self.name = f"gemm[{self.m}x{self.k}x{self.n}]@{self.library}"

    @property
    def impl(self) -> GemmKernel:
        return GEMM_LIBRARIES[self.library]

    def duration_us(self, device: GPUSpec) -> float:
        return self.impl.duration_us(self.m, self.k, self.n, device)

    def parallelism(self, device: GPUSpec) -> int:
        return self.impl.max_parallel_blocks(self.m, self.n, device, k=self.k)

    def flops(self) -> int:
        return 2 * self.m * self.k * self.n


@dataclass
class ElementwiseLaunch(Kernel):
    """A (possibly JIT-fused) elementwise / reduction kernel.

    ``fused_ops`` counts the DFG ops folded into this launch; fusing avoids
    repeated launches and intermediate memory traffic (section 5.3).
    """

    num_elements: int
    fused_ops: int = 1
    flops_per_element: float = 1.0
    bytes_per_element: float = 8.0
    node_ids: tuple[int, ...] = ()
    label: str = "eltwise"
    kind: str = field(default="elementwise", init=False)

    def __post_init__(self) -> None:
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")
        self.name = f"{self.label}[{self.num_elements}x{self.fused_ops}]"

    def duration_us(self, device: GPUSpec) -> float:
        total_flops = self.num_elements * self.flops_per_element * self.fused_ops
        # fused ops stream the data once; unfused pay traffic per op
        traffic = self.num_elements * self.bytes_per_element * (1 + 0.25 * (self.fused_ops - 1))
        startup = 1.0
        return startup + max(
            total_flops / (0.5 * device.peak_flops_per_us),
            traffic / device.mem_bw_bytes_per_us,
        )

    def parallelism(self, device: GPUSpec) -> int:
        blocks = max(1, self.num_elements // 1024)
        return min(blocks, device.sm_slots)

    def flops(self) -> int:
        return int(self.num_elements * self.flops_per_element * self.fused_ops)


@dataclass
class CopyLaunch(Kernel):
    """Device-to-device gather/scatter copy (e.g. compacting non-contiguous
    operands before a fused GEMM -- the cost fusion tries to avoid, 3.2)."""

    bytes_moved: int
    label: str = "copy"
    node_ids: tuple[int, ...] = ()
    kind: str = field(default="copy", init=False)

    def __post_init__(self) -> None:
        self.name = f"{self.label}[{self.bytes_moved}B]"

    def duration_us(self, device: GPUSpec) -> float:
        return 1.0 + 2 * self.bytes_moved / device.mem_bw_bytes_per_us

    def parallelism(self, device: GPUSpec) -> int:
        blocks = max(1, self.bytes_moved // 4096)
        return min(blocks, device.sm_slots)


@dataclass
class CompoundLaunch(Kernel):
    """A hand-optimized accelerator kernel (the cuDNN model, section 2.4).

    Executes a whole layer step-group with near-peak efficiency in a single
    launch; only available for the "popular" structures the accelerator
    supports.  ``rows`` is the mini-batch dimension: below
    ``saturation_rows`` even hand-tuned kernels cannot fill the device, so
    sustained efficiency decays gently (cuDNN's small-batch LSTM kernels
    are latency-bound too).
    """

    total_flops: int
    efficiency: float = 0.72
    rows: int = 64
    saturation_rows: int = 64
    saturation_exp: float = 0.21
    label: str = "cudnn"
    node_ids: tuple[int, ...] = ()
    kind: str = field(default="compound", init=False)

    def __post_init__(self) -> None:
        self.name = f"{self.label}[{self.total_flops}f]"

    def _effective_efficiency(self) -> float:
        occupancy = min(1.0, self.rows / self.saturation_rows) ** self.saturation_exp
        return self.efficiency * occupancy

    def duration_us(self, device: GPUSpec) -> float:
        return 2.0 + self.total_flops / (
            device.peak_flops_per_us * self._effective_efficiency()
        )

    def flops(self) -> int:
        return self.total_flops


@dataclass
class HostTransfer(Kernel):
    """Host<->device copy over PCIe (the XLA embedding pathology inserts
    these around lookups, section 6.6)."""

    bytes_moved: int
    direction: str = "h2d"
    node_ids: tuple[int, ...] = ()
    kind: str = field(default="transfer", init=False)

    def __post_init__(self) -> None:
        if self.direction not in ("h2d", "d2h"):
            raise ValueError(f"bad transfer direction {self.direction!r}")
        self.name = f"{self.direction}[{self.bytes_moved}B]"

    def duration_us(self, device: GPUSpec) -> float:
        return device.pcie_latency_us + self.bytes_moved / device.pcie_bw_bytes_per_us

    def parallelism(self, device: GPUSpec) -> int:
        return 0  # uses the copy engine, not SMs
