"""GPU memory arenas and allocation plans.

GEMM fusion requires the fused operands to be *contiguous* in device memory
(paper section 3.2): multiplying ``x @ W1`` and ``x @ W2`` as one GEMM
``x @ [W1 W2]`` is copy-free only if W1 and W2 are adjacent.  Different
fusion choices may demand conflicting layouts (Figure 1), which is why the
allocation strategy is a top-level fork in Astra's exploration hierarchy
(section 4.5.2).

An :class:`AllocationPlan` places tensors (DFG node ids) into an arena.
Contiguity groups are placed back to back; the dispatcher queries
``is_contiguous`` to decide whether a fused GEMM needs a gather copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph


@dataclass(frozen=True)
class ContiguityGroup:
    """An ordered run of tensors that must be adjacent in memory."""

    node_ids: tuple[int, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.node_ids) < 2:
            raise ValueError("a contiguity group needs at least two tensors")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("duplicate tensor in contiguity group")


class AllocationPlan:
    """A concrete placement of graph tensors into a flat arena.

    The plan is built from a set of non-overlapping contiguity groups; all
    remaining tensors are placed individually.  Offsets are deterministic
    (insertion order), so plans are comparable and hashable by their group
    structure (``strategy_key``).
    """

    def __init__(self, graph: Graph, groups: list[ContiguityGroup] | None = None,
                 alignment: int = 256, label: str = "default"):
        self.graph = graph
        self.groups = list(groups or [])
        self.alignment = alignment
        self.label = label
        self._offsets: dict[int, int] = {}
        self._arena_size = 0
        self._grouped: dict[int, int] = {}  # node id -> group index
        self._validate_groups()
        self._place()

    def _validate_groups(self) -> None:
        for gi, group in enumerate(self.groups):
            for nid in group.node_ids:
                if nid >= len(self.graph.nodes):
                    raise ValueError(f"group {group.label!r} names unknown node {nid}")
                if nid in self._grouped:
                    other = self.groups[self._grouped[nid]]
                    raise ValueError(
                        f"tensor %{nid} claimed by both {other.label!r} and {group.label!r}"
                    )
                self._grouped[nid] = gi

    def _align(self, offset: int) -> int:
        rem = offset % self.alignment
        return offset if rem == 0 else offset + self.alignment - rem

    def _place(self) -> None:
        cursor = 0
        for group in self.groups:
            cursor = self._align(cursor)
            for nid in group.node_ids:
                self._offsets[nid] = cursor
                cursor += self.graph.node(nid).spec.size_bytes
        for node in self.graph.nodes:
            if node.node_id in self._offsets:
                continue
            cursor = self._align(cursor)
            self._offsets[node.node_id] = cursor
            cursor += node.spec.size_bytes
        self._arena_size = cursor

    # -- queries ---------------------------------------------------------

    @property
    def arena_size_bytes(self) -> int:
        return self._arena_size

    def offset_of(self, node_id: int) -> int:
        return self._offsets[node_id]

    def group_label(self, node_id: int) -> str | None:
        """Label of the contiguity group holding ``node_id`` (None if
        the tensor is placed individually)."""
        index = self._grouped.get(node_id)
        return self.groups[index].label if index is not None else None

    def is_contiguous(self, node_ids: tuple[int, ...] | list[int]) -> bool:
        """True if the tensors sit back to back, in order, with no gaps."""
        ids = list(node_ids)
        if len(ids) <= 1:
            return True
        cursor = self._offsets[ids[0]]
        for nid in ids:
            if self._offsets[nid] != cursor:
                return False
            cursor += self.graph.node(nid).spec.size_bytes
        return True

    def gather_bytes(self, node_ids: tuple[int, ...] | list[int]) -> int:
        """Bytes a gather copy must move to compact these tensors."""
        return sum(self.graph.node(nid).spec.size_bytes for nid in node_ids)

    def strategy_key(self) -> tuple:
        """Hashable identity of the layout choice (profile-index context)."""
        return tuple(group.node_ids for group in self.groups)

    def __repr__(self) -> str:
        return (
            f"AllocationPlan({self.label!r}, groups={len(self.groups)}, "
            f"arena={self._arena_size}B)"
        )
