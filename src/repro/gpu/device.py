"""Simulated GPU device specifications.

The simulator models the architectural features the paper's optimizations
interact with (section 2.3):

* massive but *quantized* parallelism -- work is issued in tiles/blocks onto
  a fixed number of SM slots, producing wave-quantization performance cliffs;
* a 5-10 microsecond kernel-launch cost paid on a serialized CPU dispatch
  timeline, so many small kernels become launch-bound;
* streams: FIFO queues whose resident kernels share the SM array;
* cudaEvent-style lightweight timestamps;
* a clock that is exactly deterministic at base frequency and *jittery*
  under autoboost -- section 7's "predictable execution" hardware
  requirement, which we expose as a switch so the ablation benchmarks can
  show adaptation degrading when determinism is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

CLOCK_BASE = "base"
CLOCK_AUTOBOOST = "autoboost"


@dataclass(frozen=True)
class GPUSpec:
    """Architectural parameters of a simulated accelerator."""

    name: str = "P100"
    num_sms: int = 56
    #: resident thread blocks per SM for a typical GEMM tile
    blocks_per_sm: int = 1
    #: peak single-precision throughput, flops per microsecond
    peak_flops_per_us: float = 9.0e6  # 9 Tflops/s
    #: HBM bandwidth, bytes per microsecond
    mem_bw_bytes_per_us: float = 720e3  # 720 GB/s
    #: host <-> device transfer bandwidth (PCIe), bytes per microsecond
    pcie_bw_bytes_per_us: float = 12e3  # 12 GB/s
    #: fixed latency of a host<->device transfer, microseconds
    pcie_latency_us: float = 10.0
    #: CPU cost to issue one kernel launch, microseconds
    launch_overhead_us: float = 5.0
    #: extra CPU cost to record a cuda event, microseconds
    event_overhead_us: float = 0.3
    #: CPU cost of a cross-stream barrier synchronization, microseconds
    barrier_overhead_us: float = 2.0
    #: device memory capacity, bytes (16 GB HBM2 on the P100); arena plans
    #: exceeding this are un-runnable, which grounds OOM fault injection
    #: and allocation-strategy pruning in the device model
    memory_bytes: int = 16 * 1024**3
    #: clock mode: deterministic base clock, or autoboost with jitter
    clock_mode: str = CLOCK_BASE
    #: autoboost jitter: multiplicative half-width (e.g. 0.12 = +/-12%)
    autoboost_jitter: float = 0.12
    #: mean speedup from autoboost (slightly above base clock)
    autoboost_gain: float = 0.04

    @property
    def sm_slots(self) -> int:
        """Concurrent thread-block slots available across the device."""
        return self.num_sms * self.blocks_per_sm

    def with_clock(self, mode: str) -> "GPUSpec":
        if mode not in (CLOCK_BASE, CLOCK_AUTOBOOST):
            raise ValueError(f"unknown clock mode {mode!r}")
        return replace(self, clock_mode=mode)


#: the device used throughout the paper's evaluation (section 6.1)
P100 = GPUSpec()

#: a newer-generation device profile (section 6.7's discussion that faster
#: hardware makes even more operations launch-bound, increasing Astra's scope)
V100 = GPUSpec(
    name="V100",
    num_sms=80,
    peak_flops_per_us=15.0e6,
    mem_bw_bytes_per_us=900e3,
    launch_overhead_us=5.0,
    memory_bytes=32 * 1024**3,
)

DEVICES = {"P100": P100, "V100": V100}
