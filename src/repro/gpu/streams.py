"""Discrete-event execution engine: streams, dispatch, processor sharing.

This is the heart of the GPU substrate.  It models the execution semantics
the paper's optimizations exploit (sections 2.3 and 3.3):

* the CPU issues kernel launches *serially* (5-10 us each), long before the
  kernels execute -- so many small kernels become dispatch-bound;
* each stream executes its kernels in FIFO order; kernels on different
  streams run concurrently, *sharing* the SM array (modelled as max-min
  fair processor sharing, each kernel capped by its own tile parallelism);
* cross-stream dependencies are enforced with events
  (record-event / wait-event pairs), and host syncs block the dispatch
  thread;
* in base-clock mode execution is exactly deterministic; in autoboost mode
  a seeded multiplicative jitter is applied per kernel execution,
  reproducing the variance the paper had to disable via nvidia-smi
  (section 7).

The engine returns per-kernel and per-event timestamps, from which the
profiler computes the fine-grained measurements that drive adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import CLOCK_AUTOBOOST, GPUSpec
from .events import EventId
from .kernels import Kernel

_EPS = 1e-9


@dataclass
class LaunchItem:
    """Dispatch-order instruction: launch ``kernel`` into ``stream``.

    ``record_is_profiling`` distinguishes events recorded for the profiler
    (counted as profiling overhead) from events required for cross-stream
    synchronization (a cost of the schedule itself).
    """

    kernel: Kernel
    stream: int = 0
    waits: tuple[EventId, ...] = ()
    record: EventId | None = None
    record_is_profiling: bool = True


@dataclass
class RecordEventItem:
    """Record an event in a stream (completes when prior stream work does)."""

    stream: int
    event: EventId


@dataclass
class HostSyncItem:
    """Dispatch thread blocks until ``event`` completes (None = all work).

    Used for super-epoch barriers (section 4.5.3) and end-of-mini-batch
    synchronization.
    """

    event: EventId | None = None


@dataclass
class HostComputeItem:
    """Pure CPU-side work that stalls dispatch (e.g. host-side embedding
    lookups in the XLA pathology, section 6.6)."""

    duration_us: float
    label: str = "host"


DispatchItem = LaunchItem | RecordEventItem | HostSyncItem | HostComputeItem


@dataclass
class KernelRecord:
    """Timing of one executed kernel instance.

    Every record carries its stream and kernel kind (via the uniform
    ``stream_id`` / ``kind`` accessors) so downstream consumers -- the
    timeline renderer and the Chrome-trace exporter in
    :mod:`repro.obs.trace` -- never have to fall back to defaults.
    """

    kernel: Kernel
    stream: int
    issue_time: float
    start_time: float = -1.0
    end_time: float = -1.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def stream_id(self) -> int:
        """The stream this kernel was dispatched to (alias of ``stream``)."""
        return self.stream

    @property
    def kind(self) -> str:
        """Kernel classification (gemm/elementwise/copy/compound/transfer)."""
        return self.kernel.kind


@dataclass
class ExecutionResult:
    """Everything the profiler can observe about one mini-batch execution."""

    total_time_us: float
    cpu_time_us: float
    records: list[KernelRecord]
    event_times: dict[EventId, float]
    #: CPU microseconds spent on event marking (profiling overhead metric)
    profiling_overhead_us: float = 0.0

    def elapsed_us(self, start: EventId, end: EventId) -> float:
        """cudaEventElapsedTime analog."""
        try:
            return self.event_times[end] - self.event_times[start]
        except KeyError as exc:
            raise KeyError(f"event {exc} was never recorded") from exc

    def kernel_time_us(self) -> float:
        return sum(r.duration for r in self.records)

    def stream_ids(self) -> list[int]:
        """Sorted ids of every stream that executed at least one kernel."""
        return sorted({r.stream_id for r in self.records})

    def records_for_stream(self, stream: int) -> list[KernelRecord]:
        """Kernel records dispatched to ``stream``, in dispatch order."""
        return [r for r in self.records if r.stream_id == stream]


class _Running:
    """A kernel currently executing, tracked in slot-microseconds."""

    __slots__ = ("record", "cap", "work_left", "rate", "uses_sms")

    def __init__(self, record: KernelRecord, cap: int, work: float, uses_sms: bool):
        self.record = record
        self.cap = max(1, cap)
        self.work_left = work
        self.rate = 0.0
        self.uses_sms = uses_sms


def _waterfill(running: list[_Running], slots: int) -> None:
    """Max-min fair allocation of SM slots among resident kernels.

    Each kernel is capped by its own available parallelism; copy-engine
    work (``uses_sms=False``) always progresses at unit rate.
    """
    sharers = [r for r in running if r.uses_sms]
    for r in running:
        if not r.uses_sms:
            r.rate = 1.0
    remaining = float(slots)
    pending = sorted(sharers, key=lambda r: r.cap)
    count = len(pending)
    for r in pending:
        share = remaining / count
        alloc = min(float(r.cap), share)
        r.rate = alloc
        remaining -= alloc
        count -= 1


class StreamSimulator:
    """Executes a dispatch list and reports timings.

    A fresh simulator is cheap; reuse one only to share the autoboost RNG
    stream across mini-batches (which is what makes autoboost measurements
    non-repeatable run to run).

    ``injector`` (a :class:`~repro.faults.injector.FaultInjector`) arms
    fault injection: per-kernel slowdowns and throttle windows multiply
    into execution times on top of any autoboost jitter, kernel launches
    may abort the run with
    :class:`~repro.faults.events.KernelLaunchError`, and profiled
    timestamps may be marked dropped/corrupted in the injector's
    per-mini-batch log (the executor reads the log back; the simulator's
    own records stay ground truth).
    """

    def __init__(self, device: GPUSpec, seed: int = 0, injector=None):
        self.device = device
        self._rng = np.random.default_rng(seed)
        self.injector = injector

    def rng_state(self) -> dict:
        """JSON-safe snapshot of the jitter RNG, for checkpointing: a
        resumed run continues the exact autoboost noise stream."""
        from ..faults.injector import _encode_rng_state

        return _encode_rng_state(self._rng.bit_generator.state)

    def set_rng_state(self, state: dict) -> None:
        from ..faults.injector import _decode_rng_state

        self._rng.bit_generator.state = _decode_rng_state(state)

    def reseed(self, seed_key) -> None:
        """Rebind the jitter RNG to a derived substream.

        The parallel engine reseeds a worker's simulator once per
        exploration candidate, keyed by the candidate's global mini-batch
        ordinal, so autoboost jitter is a function of *which* candidate
        runs -- never of which worker runs it or what ran on that worker
        before.  At base clock no draws happen at all and reseeding is a
        no-op in effect.
        """
        self._rng = np.random.default_rng(seed_key)

    def _jitter(self) -> float:
        if self.device.clock_mode != CLOCK_AUTOBOOST:
            return 1.0
        gain = 1.0 + self.device.autoboost_gain
        half = self.device.autoboost_jitter
        return max(0.05, gain * (1.0 + self._rng.uniform(-half, half)))

    def _duration(self, kernel: Kernel) -> float:
        """Execution time of one kernel instance: model time, autoboost
        jitter, then any injected straggler/throttle multiplier."""
        duration = kernel.duration_us(self.device) * self._jitter()
        if self.injector is not None:
            duration *= self.injector.kernel_multiplier(kernel.kind)
        return duration

    def _check_launch(self, item: LaunchItem) -> None:
        if self.injector is not None and self.injector.launch_fails(item.kernel.kind):
            from ..faults.events import KernelLaunchError

            raise KernelLaunchError(item.kernel.kind, self.injector.minibatch)

    def _mark_profiled_record(self, record_index: int) -> None:
        """Give the injector a chance to drop/corrupt the timestamp pair
        backing this profiled kernel record."""
        if self.injector is not None:
            self.injector.event_fault(record_index)

    def run(self, items: list[DispatchItem]) -> ExecutionResult:
        if self._is_sequential(items):
            return self._run_sequential(items)
        return self._run_concurrent(items)

    @staticmethod
    def _is_sequential(items: list[DispatchItem]) -> bool:
        """True when the schedule uses a single stream and no cross-stream
        waits -- the common case for native and fusion-phase plans, which a
        much cheaper pipeline model executes exactly."""
        stream = None
        for item in items:
            if isinstance(item, LaunchItem):
                if item.waits:
                    return False
                if stream is None:
                    stream = item.stream
                elif item.stream != stream:
                    return False
            elif isinstance(item, RecordEventItem):
                if stream is not None and item.stream != stream:
                    return False
        return True

    def _run_sequential(self, items: list[DispatchItem]) -> ExecutionResult:
        """O(n) execution of a single-stream schedule: each kernel starts at
        max(its launch time, previous kernel's completion)."""
        device = self.device
        cpu_time = 0.0
        last_end = 0.0
        records: list[KernelRecord] = []
        event_times: dict[EventId, float] = {}
        profiling_overhead = 0.0
        for item in items:
            if isinstance(item, LaunchItem):
                cpu_time += device.launch_overhead_us
                self._check_launch(item)
                if item.record is not None:
                    cpu_time += device.event_overhead_us
                    if item.record_is_profiling:
                        profiling_overhead += device.event_overhead_us
                        self._mark_profiled_record(len(records))
                start = max(cpu_time, last_end)
                duration = self._duration(item.kernel)
                end = start + duration
                records.append(
                    KernelRecord(item.kernel, item.stream, cpu_time, start, end)
                )
                last_end = end
                if item.record is not None:
                    event_times[item.record] = end
            elif isinstance(item, RecordEventItem):
                cpu_time += device.event_overhead_us
                profiling_overhead += device.event_overhead_us
                event_times[item.event] = max(cpu_time, last_end) if records else cpu_time
            elif isinstance(item, HostComputeItem):
                cpu_time += item.duration_us
            elif isinstance(item, HostSyncItem):
                if item.event is not None and item.event not in event_times:
                    raise RuntimeError(f"sync on unrecorded event {item.event}")
                target = event_times[item.event] if item.event is not None else last_end
                cpu_time = max(cpu_time, target) + device.barrier_overhead_us
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown dispatch item {item!r}")
        total = max(cpu_time, last_end)
        return ExecutionResult(
            total_time_us=total,
            cpu_time_us=cpu_time,
            records=records,
            event_times=event_times,
            profiling_overhead_us=profiling_overhead,
        )

    def _run_concurrent(self, items: list[DispatchItem]) -> ExecutionResult:
        device = self.device
        slots = device.sm_slots

        event_times: dict[EventId, float] = {}
        records: list[KernelRecord] = []
        # stream id -> list of (record, waits, record_event) not yet started
        stream_queues: dict[int, list] = {}
        # stream id -> completion time of the last *finished* kernel (for bare event records)
        stream_last_done: dict[int, float] = {}
        # events attached to kernels: kernel record -> list of events to stamp
        running: list[_Running] = []
        profiling_overhead = 0.0

        cpu_time = 0.0
        idx = 0
        blocked_on: EventId | None | str = "none"  # "none" = not blocked
        sim_time = 0.0
        in_flight = 0  # launched but unfinished kernels

        def issue_until_blocked() -> None:
            nonlocal cpu_time, idx, blocked_on, in_flight, profiling_overhead
            while idx < len(items):
                item = items[idx]
                if isinstance(item, LaunchItem):
                    cpu_time += device.launch_overhead_us
                    self._check_launch(item)
                    rec = KernelRecord(item.kernel, item.stream, issue_time=cpu_time)
                    events = []
                    if item.record is not None:
                        cpu_time += device.event_overhead_us
                        if item.record_is_profiling:
                            profiling_overhead += device.event_overhead_us
                            self._mark_profiled_record(len(records))
                        events.append(item.record)
                    stream_queues.setdefault(item.stream, []).append(
                        (rec, tuple(item.waits), tuple(events))
                    )
                    records.append(rec)
                    in_flight += 1
                elif isinstance(item, RecordEventItem):
                    cpu_time += device.event_overhead_us
                    profiling_overhead += device.event_overhead_us
                    queue = stream_queues.get(item.stream, [])
                    if queue:
                        # piggyback on the last launched kernel in the stream
                        rec, waits, events = queue[-1]
                        queue[-1] = (rec, waits, events + (item.event,))
                    else:
                        # stream idle: event completes immediately at CPU time
                        event_times[item.event] = max(
                            cpu_time, stream_last_done.get(item.stream, 0.0)
                        )
                elif isinstance(item, HostComputeItem):
                    cpu_time += item.duration_us
                elif isinstance(item, HostSyncItem):
                    if item.event is None:
                        if in_flight > 0:
                            blocked_on = None
                            return
                        cpu_time = max(cpu_time, sim_time) + device.barrier_overhead_us
                    else:
                        if item.event not in event_times:
                            blocked_on = item.event
                            return
                        cpu_time = (
                            max(cpu_time, event_times[item.event])
                            + device.barrier_overhead_us
                        )
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown dispatch item {item!r}")
                idx += 1
            blocked_on = "none"

        def try_unblock() -> None:
            nonlocal cpu_time, idx, blocked_on
            if idx >= len(items):
                return
            item = items[idx]
            if not isinstance(item, HostSyncItem):
                return
            if item.event is None:
                if in_flight == 0:
                    cpu_time = max(cpu_time, sim_time) + device.barrier_overhead_us
                    idx += 1
                    blocked_on = "none"
                    issue_until_blocked()
            elif item.event in event_times:
                cpu_time = max(cpu_time, event_times[item.event]) + device.barrier_overhead_us
                idx += 1
                blocked_on = "none"
                issue_until_blocked()

        def ready_time(stream: int) -> tuple | None:
            """Head-of-stream kernel's earliest start, or None if not ready."""
            queue = stream_queues.get(stream)
            if not queue:
                return None
            rec, waits, events = queue[0]
            if rec.start_time >= 0.0:
                return None  # already running
            if any(ev not in event_times for ev in waits):
                return None
            start = rec.issue_time
            for ev in waits:
                start = max(start, event_times[ev])
            start = max(start, stream_last_done.get(stream, 0.0))
            return (start, stream, rec, events)

        issue_until_blocked()

        # Main event loop.
        while True:
            candidates = [c for c in (ready_time(s) for s in list(stream_queues)) if c]
            next_start = min(candidates, key=lambda c: c[0]) if candidates else None

            _waterfill(running, slots)
            next_completion = None
            for r in running:
                if r.rate <= 0:
                    continue
                finish = sim_time + r.work_left / r.rate
                if next_completion is None or finish < next_completion[0]:
                    next_completion = (finish, r)

            moments = []
            if next_start is not None:
                moments.append(next_start[0])
            if next_completion is not None:
                moments.append(next_completion[0])
            if not moments:
                if any(stream_queues.values()) or running:
                    raise RuntimeError(
                        "deadlock: kernels pending but no progress possible "
                        "(wait on an event that is never recorded?)"
                    )
                break

            new_time = min(moments)
            # progress running kernels
            for r in running:
                r.work_left -= r.rate * (new_time - sim_time)
            sim_time = new_time

            # completions first (frees stream heads and events)
            finished = [r for r in running if r.work_left <= _EPS]
            for r in finished:
                running.remove(r)
                r.record.end_time = sim_time
                stream = r.record.stream
                queue = stream_queues[stream]
                entry = queue.pop(0)
                stream_last_done[stream] = sim_time
                for ev in entry[2]:
                    event_times[ev] = sim_time
                in_flight -= 1
            if finished:
                try_unblock()
                continue

            # otherwise, start every kernel that is ready at this instant
            started_any = False
            for cand in sorted(candidates, key=lambda c: c[0]):
                start, stream, rec, _events = cand
                if start <= sim_time + _EPS and not any(
                    r.record is rec for r in running
                ):
                    rec.start_time = sim_time
                    kernel = rec.kernel
                    cap = kernel.parallelism(device)
                    uses_sms = cap > 0
                    base = self._duration(kernel)
                    work = base * (max(1, cap) if uses_sms else 1.0)
                    running.append(_Running(rec, cap, work, uses_sms))
                    started_any = True
            if not started_any and next_completion is None:
                raise RuntimeError("simulation stalled without progress")

        total = max([cpu_time] + [r.end_time for r in records] + [sim_time])
        return ExecutionResult(
            total_time_us=total,
            cpu_time_us=cpu_time,
            records=records,
            event_times=event_times,
            profiling_overhead_us=profiling_overhead,
        )
