"""GPU simulator substrate: device model, kernels, streams, memory.

Substitutes for the P100 the paper evaluates on (DESIGN.md section 2): a
deterministic discrete-event model of kernel launches, FIFO streams with
processor sharing, cudaEvent timestamps, GEMM kernel libraries with
shape-dependent winners, and an arena allocator with contiguity queries.
"""

from .device import CLOCK_AUTOBOOST, CLOCK_BASE, DEVICES, GPUSpec, P100, V100
from .events import EventId, EventNamespace, ProfileRange
from .kernels import (
    CompoundLaunch,
    CopyLaunch,
    ElementwiseLaunch,
    GemmLaunch,
    HostTransfer,
    Kernel,
)
from .libraries import DEFAULT_LIBRARY, GEMM_LIBRARIES, GemmKernel, best_library
from .memory import AllocationPlan, ContiguityGroup
from .streams import (
    DispatchItem,
    ExecutionResult,
    HostComputeItem,
    HostSyncItem,
    KernelRecord,
    LaunchItem,
    RecordEventItem,
    StreamSimulator,
)

__all__ = [
    "CLOCK_AUTOBOOST", "CLOCK_BASE", "DEVICES", "GPUSpec", "P100", "V100",
    "EventId", "EventNamespace", "ProfileRange",
    "CompoundLaunch", "CopyLaunch", "ElementwiseLaunch", "GemmLaunch",
    "HostTransfer", "Kernel",
    "DEFAULT_LIBRARY", "GEMM_LIBRARIES", "GemmKernel", "best_library",
    "AllocationPlan", "ContiguityGroup",
    "DispatchItem", "ExecutionResult", "HostComputeItem", "HostSyncItem",
    "KernelRecord", "LaunchItem", "RecordEventItem", "StreamSimulator",
]

from .cost_model import (
    Roofline,
    achieved_fraction,
    device_utilization,
    gemm_roofline,
    launch_bound_fraction,
    roofline,
)

__all__ += [
    "Roofline", "achieved_fraction", "device_utilization",
    "gemm_roofline", "launch_bound_fraction", "roofline",
]
