"""Tensor liveness analysis and arena reuse.

The simple arena of :mod:`repro.gpu.memory` places every tensor at a
distinct offset -- fine for contiguity reasoning, pessimistic for
footprint.  Real framework allocators reuse a tensor's space once its
last consumer has run.  This module computes per-tensor live intervals
over an execution order and a linear-scan reuse plan, giving the *peak*
memory a training mini-batch actually needs.

It quantifies the memory side of section 3.4's recomputation trade: a
recomputed segment's forward activations die right after the forward
pass instead of surviving into backward, which is exactly a shortened
live interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph


@dataclass(frozen=True)
class LiveInterval:
    """One tensor's lifetime in execution-order positions, inclusive."""

    node_id: int
    start: int
    end: int
    size_bytes: int

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


def live_intervals(
    graph: Graph,
    order: list[int] | None = None,
    keep_until_end: set[int] | None = None,
    end_overrides: dict[int, int] | None = None,
) -> list[LiveInterval]:
    """Per-tensor live intervals over an execution order.

    ``order`` defaults to node-id order (the trace order, which is a valid
    schedule).  Leaves (inputs/params) and graph outputs live for the whole
    range; ``keep_until_end`` forces extra node ids to the horizon, and
    ``end_overrides`` caps specific tensors' lifetimes (a recomputed
    activation dies at its last *forward* consumer -- the backward pass
    reads a recomputed clone instead).
    """
    order = order if order is not None else [n.node_id for n in graph.nodes]
    position = {nid: i for i, nid in enumerate(order)}
    horizon = len(order) - 1
    keep = set(keep_until_end or ())
    keep.update(graph.outputs)
    end_overrides = end_overrides or {}

    intervals = []
    for node in graph.nodes:
        if node.node_id not in position:
            continue
        start = position[node.node_id]
        consumers = [position[c] for c in graph.consumers(node.node_id) if c in position]
        if node.node_id in end_overrides:
            end = max(start, end_overrides[node.node_id])
        elif node.is_leaf or node.node_id in keep:
            end = horizon
        elif consumers:
            end = max(consumers)
        else:
            end = start  # dead value: dies immediately
        if node.is_leaf:
            start = 0
        intervals.append(
            LiveInterval(node.node_id, start, end, node.spec.size_bytes)
        )
    return intervals


@dataclass
class ReusePlan:
    """Linear-scan allocation with reuse: offsets + peak footprint."""

    offsets: dict[int, int]
    peak_bytes: int
    #: footprint without any reuse, for comparison
    naive_bytes: int

    @property
    def reuse_factor(self) -> float:
        return self.naive_bytes / max(1, self.peak_bytes)


def plan_with_reuse(
    graph: Graph,
    order: list[int] | None = None,
    alignment: int = 256,
    keep_until_end: set[int] | None = None,
    end_overrides: dict[int, int] | None = None,
) -> ReusePlan:
    """Greedy first-fit allocation over live intervals.

    Tensors whose intervals do not overlap may share space.  First-fit
    over a free-list keyed by offset gives the classic linear-scan shape;
    deterministic for reproducibility.
    """
    intervals = sorted(
        live_intervals(graph, order, keep_until_end, end_overrides),
        key=lambda iv: (iv.start, iv.node_id),
    )

    def aligned(n: int) -> int:
        rem = n % alignment
        return n if rem == 0 else n + alignment - rem

    # active allocations: (end, offset, size)
    active: list[tuple[int, int, int]] = []
    offsets: dict[int, int] = {}
    peak = 0
    for interval in intervals:
        active = [a for a in active if a[0] >= interval.start]
        size = aligned(max(1, interval.size_bytes))
        # first-fit: scan gaps between active allocations
        taken = sorted((offset, offset + length) for _e, offset, length in active)
        cursor = 0
        placed = None
        for begin, end in taken:
            if begin - cursor >= size:
                placed = cursor
                break
            cursor = max(cursor, end)
        if placed is None:
            placed = cursor
        offsets[interval.node_id] = placed
        active.append((interval.end, placed, size))
        peak = max(peak, placed + size)

    naive = sum(aligned(max(1, iv.size_bytes)) for iv in intervals)
    return ReusePlan(offsets=offsets, peak_bytes=peak, naive_bytes=naive)


def activation_peak_bytes(graph: Graph, recomputed: set[int] | None = None) -> int:
    """Peak memory of one training mini-batch under reuse.

    ``recomputed`` marks forward nodes whose activations are *not* kept
    for the backward pass (section 3.4): their live interval ends at
    their last forward consumer, shrinking the peak.
    """
    recomputed = recomputed or set()
    position = {n.node_id: i for i, n in enumerate(graph.nodes)}
    overrides: dict[int, int] = {}
    for nid in recomputed:
        node = graph.node(nid)
        if node.is_leaf or node.pass_tag != "forward":
            continue
        forward_consumers = [
            position[c]
            for c in graph.consumers(nid)
            if graph.node(c).pass_tag == "forward"
        ]
        overrides[nid] = max(forward_consumers, default=position[nid])
    return plan_with_reuse(graph, end_overrides=overrides).peak_bytes
