"""Simulated low-level GEMM kernel libraries.

The paper's Table 1 observes that the best GEMM library depends on the
operand shapes (and GPU generation) in ways that are hard to predict
statically -- which is exactly why Astra adapts the kernel choice online.
We model three libraries in the spirit of cuBLAS, OpenAI-GEMM and Neon:
each owns a menu of tile geometries with different sustained efficiencies
and different behaviour over the K (reduction) dimension, so wave
quantization over the SM slots makes the winner shape-dependent.

These are *performance models*, not numerics: the executed values are
identical for every library (all Astra optimizations are value-preserving,
section 6.7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import GPUSpec


@dataclass(frozen=True)
class TileVariant:
    """One tile geometry a library can instantiate, with its efficiency
    multiplier (bigger tiles amortize register/shared-memory staging
    better; small tiles avoid padding waste on skinny operands)."""

    tile_m: int
    tile_n: int
    efficiency: float


@dataclass(frozen=True)
class GemmPlan:
    """The library's chosen execution plan for a shape: used both for the
    duration and for the parallelism cap the stream engine applies."""

    duration_us: float
    tiles: int
    variant: TileVariant
    split_k: int


@dataclass(frozen=True)
class GemmKernel:
    """One library's GEMM implementation.

    ``k_ramp`` models pipeline fill (efficiency ramps ~K/k_ramp below it);
    ``k_decay`` models shared-memory thrashing above a K threshold.
    Libraries with ``max_split_k > 1`` can split the reduction dimension to
    fill SM slots on skinny shapes, paying a combine penalty.
    """

    library: str
    variants: tuple[TileVariant, ...]
    base_efficiency: float
    k_ramp: int
    k_decay: int
    startup_us: float
    k_decay_strength: float = 0.8
    max_split_k: int = 1
    split_k_penalty: float = 0.25

    def efficiency(self, k: int, variant: TileVariant) -> float:
        eff = self.base_efficiency * variant.efficiency
        if k < self.k_ramp:
            eff *= k / self.k_ramp
        if self.k_decay and k > self.k_decay:
            eff /= 1.0 + self.k_decay_strength * math.log2(k / self.k_decay)
        return eff

    def plan(self, m: int, k: int, n: int, device: GPUSpec) -> GemmPlan:
        """Pick the fastest (variant, split-K) plan for a shape.

        Tiles are issued in waves over the SM slots; a partially-filled
        last wave still costs a full wave -- the performance-cliff
        behaviour of section 3.1.

        The result is a pure function of (library, shape, device physics)
        and a training job re-asks for the same few dozen shapes every
        mini-batch, so plans are memoized process-wide (both the simulator
        and the fast-path pre-ranker hit this on their hot paths).
        """
        # key on the exact physics inputs the computation reads, so a
        # modified device spec (tests build them freely) never aliases
        memo_key = (
            self, m, k, n,
            device.sm_slots, device.peak_flops_per_us, device.mem_bw_bytes_per_us,
        )
        cached = _PLAN_MEMO.get(memo_key)
        if cached is not None:
            return cached
        plan = self._plan_uncached(m, k, n, device)
        if len(_PLAN_MEMO) >= _PLAN_MEMO_CAP:
            _PLAN_MEMO.clear()  # unbounded shape churn is not a real workload
        _PLAN_MEMO[memo_key] = plan
        return plan

    def _plan_uncached(self, m: int, k: int, n: int, device: GPUSpec) -> GemmPlan:
        slots = device.sm_slots
        per_slot_throughput = device.peak_flops_per_us / slots
        best: GemmPlan | None = None
        for variant in self.variants:
            base_tiles = math.ceil(m / variant.tile_m) * math.ceil(n / variant.tile_n)
            for split in range(1, self.max_split_k + 1):
                tiles = base_tiles * split
                waves = math.ceil(tiles / slots)
                k_part = max(1, math.ceil(k / split))
                flops_per_tile = 2.0 * variant.tile_m * variant.tile_n * k_part
                eff = self.efficiency(k_part, variant)
                tile_time = flops_per_tile / (per_slot_throughput * eff)
                overhead = 1.0 + (self.split_k_penalty if split > 1 else 0.0)
                compute = waves * tile_time * overhead
                bytes_touched = 4 * (m * k + k * n + m * n)
                mem_floor = bytes_touched / device.mem_bw_bytes_per_us
                duration = self.startup_us + max(compute, mem_floor)
                if best is None or duration < best.duration_us:
                    best = GemmPlan(duration, tiles, variant, split)
        assert best is not None
        return best

    def duration_us(self, m: int, k: int, n: int, device: GPUSpec) -> float:
        """Time for this GEMM to run *alone* on the device."""
        return self.plan(m, k, n, device).duration_us

    def max_parallel_blocks(self, m: int, n: int, device: GPUSpec, k: int = 1024) -> int:
        """SM slots the chosen plan can occupy at once: bounds how much the
        kernel benefits from -- or yields to -- concurrent streams."""
        return min(self.plan(m, k, n, device).tiles, device.sm_slots)


# Library catalogue.  Calibrated (see tests/gpu/test_libraries.py) so that:
#  * cuBLAS is the robust all-rounder with a broad tile menu: the default
#    library of the native baseline, and the Table 1 winner at large K;
#  * OAI_1 peaks higher but ramps slowly in K and decays beyond ~1.5k:
#    wins skinny-M / large-N / mid-K shapes (Table 1 row 1), loses at
#    small K (common at small hidden sizes) and at very large K (row 2);
#  * OAI_2 only has a deep-K tile: near-cuBLAS at K=4096, catastrophic
#    (several-fold slower) on large-N mid-K shapes -- the 0.938 ms outlier.
CUBLAS = GemmKernel(
    library="cublas",
    variants=(
        TileVariant(128, 64, 1.00),
        TileVariant(64, 128, 0.95),
        TileVariant(64, 64, 0.90),
        TileVariant(32, 128, 0.88),
        TileVariant(16, 128, 0.68),
        TileVariant(8, 128, 0.62),
        TileVariant(32, 32, 0.52),
    ),
    base_efficiency=0.84,
    k_ramp=64,
    k_decay=0,
    startup_us=2.2,
    max_split_k=2,
    split_k_penalty=0.25,
)

OAI_1 = GemmKernel(
    library="oai_1",
    variants=(
        TileVariant(32, 128, 1.00),
        TileVariant(64, 128, 0.92),
        TileVariant(16, 128, 0.85),
        TileVariant(8, 128, 0.80),
    ),
    base_efficiency=0.92,
    k_ramp=1024,
    k_decay=1536,
    startup_us=1.6,
    k_decay_strength=0.8,
    max_split_k=2,
    split_k_penalty=0.25,
)

OAI_2 = GemmKernel(
    library="oai_2",
    variants=(TileVariant(64, 32, 1.00),),
    base_efficiency=0.82,
    k_ramp=5632,
    k_decay=0,
    startup_us=1.2,
)

GEMM_LIBRARIES: dict[str, GemmKernel] = {
    kernel.library: kernel for kernel in (CUBLAS, OAI_1, OAI_2)
}

#: process-wide GemmPlan memo (see :meth:`GemmKernel.plan`); bounded by a
#: flush-on-full cap because real jobs reuse a few dozen shapes
_PLAN_MEMO: dict[tuple, GemmPlan] = {}
_PLAN_MEMO_CAP = 4096

#: the library the native (unadapted) baseline always uses
DEFAULT_LIBRARY = "cublas"


def best_library(m: int, k: int, n: int, device: GPUSpec) -> str:
    """Oracle: the fastest library for a shape (used only by tests; Astra
    itself discovers this by measurement, never by consulting the model)."""
    return min(GEMM_LIBRARIES, key=lambda lib: GEMM_LIBRARIES[lib].duration_us(m, k, n, device))
