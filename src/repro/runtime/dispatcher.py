"""The dispatcher: lowers (graph, plan) to a GPU dispatch-item list.

This is the layer Astra interposes on (paper Figure 3): it owns stream
assignment, event insertion for cross-stream dependencies, barrier
placement at super-epoch boundaries, and profiling-event placement.  The
same dispatcher executes native, cuDNN, XLA and Astra plans -- they differ
only in the :class:`~repro.runtime.plan.ExecutionPlan` handed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.events import EventId, EventNamespace
from ..gpu.streams import (
    DispatchItem,
    HostComputeItem,
    HostSyncItem,
    LaunchItem,
)
from ..ir.graph import Graph
from .plan import ExecutionPlan, Unit


@dataclass
class LoweredSchedule:
    """Dispatch items plus the bookkeeping needed to read measurements back."""

    items: list[DispatchItem]
    #: unit id -> index of its main kernel in the simulator's record list
    unit_record_index: dict[int, int]
    #: unit id -> stream it was dispatched to
    unit_stream: dict[int, int]
    plan: ExecutionPlan
    graph: Graph
    #: unit id of every launched kernel, in record order (pre-copies carry
    #: their owning unit's id); consumed by the Chrome-trace exporter
    record_units: list[int] = field(default_factory=list)
    #: index of every *work* item (LaunchItem / HostComputeItem) -> the unit
    #: that emitted it; consumed by the schedule validator (repro.check)
    item_units: dict[int, int] = field(default_factory=dict)


def topological_units(units: list[Unit], deps: dict[int, set[int]]) -> list[Unit]:
    """Deterministic Kahn toposort of units; ties broken by smallest
    covered node id so the order tracks data-flow order."""
    import heapq

    by_id = {u.unit_id: u for u in units}
    indegree = {u.unit_id: len(deps.get(u.unit_id, ())) for u in units}
    dependents: dict[int, list[int]] = {}
    for uid, parent_ids in deps.items():
        for parent in parent_ids:
            dependents.setdefault(parent, []).append(uid)

    heap = [
        (min(by_id[uid].node_ids), uid) for uid, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(heap)
    order: list[Unit] = []
    while heap:
        _, uid = heapq.heappop(heap)
        order.append(by_id[uid])
        for child in dependents.get(uid, ()):
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(heap, (min(by_id[child].node_ids), child))
    if len(order) != len(units):
        raise ValueError("cycle detected among schedule units")
    return order


class Dispatcher:
    """Computes unit dependencies from the DFG and emits dispatch items."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._producer_cache: dict[int, set[int]] = {}

    # -- dependency analysis -------------------------------------------------

    def unit_dependencies(self, plan: ExecutionPlan) -> dict[int, set[int]]:
        """unit id -> set of unit ids it consumes tensors from.

        Nodes not covered by any unit (reshapes, fills) are transparent:
        dependencies flow through them to their producers.
        """
        node_unit: dict[int, int] = {}
        for unit in plan.units:
            for nid in unit.node_ids:
                node_unit[nid] = unit.unit_id

        self._producer_cache.clear()

        def producing_units(node_id: int) -> set[int]:
            if node_id in self._producer_cache:
                return self._producer_cache[node_id]
            node = self.graph.node(node_id)
            if node_id in node_unit:
                result = {node_unit[node_id]}
            elif node.is_leaf:
                result = set()
            else:
                result = set()
                for inp in node.input_ids:
                    result |= producing_units(inp)
            self._producer_cache[node_id] = result
            return result

        deps: dict[int, set[int]] = {}
        for unit in plan.units:
            found: set[int] = set()
            for nid in unit.node_ids:
                for inp in self.graph.node(nid).input_ids:
                    for producer in producing_units(inp):
                        if producer != unit.unit_id:
                            found.add(producer)
            deps[unit.unit_id] = found
        return deps

    def _order_units(self, plan: ExecutionPlan, deps: dict[int, set[int]]) -> list[Unit]:
        """Dispatch order: the plan's explicit order, topologically checked,
        or a deterministic topological order (Kahn, ties by smallest covered
        node id -- i.e. data-flow order, section 2.2)."""
        by_id = {u.unit_id: u for u in plan.units}
        if plan.dispatch_order is not None:
            order = [by_id[uid] for uid in plan.dispatch_order]
            if len(order) != len(plan.units):
                raise ValueError("dispatch_order must cover every unit exactly once")
            seen: set[int] = set()
            for unit in order:
                missing = deps[unit.unit_id] - seen
                if missing:
                    raise ValueError(
                        f"dispatch_order issues unit {unit.unit_id} before deps {missing}"
                    )
                seen.add(unit.unit_id)
            return order
        return topological_units(plan.units, deps)

    def order_units(self, plan: ExecutionPlan, deps: dict[int, set[int]]) -> list[Unit]:
        """Public issue-order computation (consumed by the compilation
        cache, which memoizes it across structurally identical plans)."""
        return self._order_units(plan, deps)

    # -- lowering -------------------------------------------------------------

    def lower(
        self,
        plan: ExecutionPlan,
        deps: dict[int, set[int]] | None = None,
        order: list[Unit] | None = None,
    ) -> LoweredSchedule:
        """Lower a plan to dispatch items.

        ``deps``/``order`` may be supplied by the compilation cache when
        the dependency analysis was already done for a structurally
        identical plan; they must be exactly what
        :meth:`unit_dependencies` / :meth:`order_units` would compute
        (the cache guarantees this by keying on the unit structure).
        """
        plan.validate_covering()
        if deps is None:
            deps = self.unit_dependencies(plan)
        if order is None:
            order = self._order_units(plan, deps)

        namespace = EventNamespace()
        items: list[DispatchItem] = []
        unit_record_index: dict[int, int] = {}
        unit_stream: dict[int, int] = {}
        record_units: list[int] = []
        item_units: dict[int, int] = {}
        record_counter = 0

        # which units need a completion event: any unit consumed from a
        # different stream (cross-stream dependency -> wait-event), or any
        # unit feeding host-side work (the dispatch thread must block on it).
        # Only units that launch a kernel can record one -- a host-only
        # producer is ordered by the dispatch thread itself (HostComputeItem
        # stalls dispatch), so an event for it would never be recorded and
        # every waiter would deadlock.
        consumers_cross_stream: set[int] = set()
        host_units = {u.unit_id for u in plan.units if u.host_us > 0.0}
        kernel_units = {u.unit_id for u in plan.units if u.kernel is not None}
        for uid, dep_ids in deps.items():
            for dep in dep_ids:
                if dep not in kernel_units:
                    continue
                if plan.stream(dep) != plan.stream(uid) or uid in host_units:
                    consumers_cross_stream.add(dep)

        completion_events: dict[int, EventId] = {
            uid: namespace.new_event(f"u{uid}") for uid in consumers_cross_stream
        }
        barrier_pending = set(plan.barriers_after)
        issued: set[int] = set()

        for unit in order:
            uid = unit.unit_id
            stream = plan.stream(uid)
            unit_stream[uid] = stream

            waits: list[EventId] = []
            for dep in sorted(deps[uid]):
                # kernel-less deps have no event; the dispatch thread
                # serializes them (HostComputeItem stalls dispatch)
                if plan.stream(dep) != stream and dep in completion_events:
                    waits.append(completion_events[dep])

            if unit.host_us > 0.0:
                # host work stalls dispatch; any device deps must be complete
                for dep in sorted(deps[uid]):
                    if dep in completion_events:
                        items.append(HostSyncItem(completion_events[dep]))
                item_units[len(items)] = uid
                items.append(HostComputeItem(unit.host_us, label=unit.label or "host"))

            if unit.kernel is not None:
                for copy_kernel in unit.pre_copies:
                    item_units[len(items)] = uid
                    items.append(
                        LaunchItem(copy_kernel, stream, waits=tuple(waits))
                    )
                    waits = []  # same-stream FIFO carries the dependency on
                record = completion_events.get(uid)
                wants_profile = plan.profile and (
                    plan.profile_unit_ids is None or uid in plan.profile_unit_ids
                )
                is_profiling = wants_profile
                if record is None and wants_profile:
                    record = namespace.new_event(f"p{uid}")
                item_units[len(items)] = uid
                items.append(
                    LaunchItem(
                        unit.kernel, stream, waits=tuple(waits), record=record,
                        record_is_profiling=is_profiling,
                    )
                )
                unit_record_index[uid] = record_counter + len(unit.pre_copies)
                record_counter += 1 + len(unit.pre_copies)
                record_units.extend([uid] * (1 + len(unit.pre_copies)))

            issued.add(uid)
            if uid in barrier_pending:
                items.append(HostSyncItem(None))
                barrier_pending.discard(uid)

        items.append(HostSyncItem(None))
        return LoweredSchedule(
            items=items,
            unit_record_index=unit_record_index,
            unit_stream=unit_stream,
            plan=plan,
            graph=self.graph,
            record_units=record_units,
            item_units=item_units,
        )
