"""ASCII timeline rendering of executed schedules.

Debugging aid for stream adaptation: renders one executed mini-batch as a
Gantt chart -- one row per stream plus the CPU dispatch row -- so the
overlap (or lack of it) that the epoch metrics measure is visible at a
glance.  Used by the examples and handy in tests.

For an interactive, zoomable view of the same data, export a Chrome
trace instead (:func:`repro.obs.trace.chrome_trace`) and open it in
Perfetto -- see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.streams import ExecutionResult

#: glyphs by kernel kind
_GLYPHS = {
    "gemm": "#",
    "elementwise": "=",
    "copy": "c",
    "compound": "@",
    "transfer": "~",
    "generic": "+",
}


@dataclass
class TimelineOptions:
    width: int = 100
    show_cpu: bool = True
    show_legend: bool = True


def render_timeline(result: ExecutionResult, options: TimelineOptions | None = None) -> str:
    """Render an :class:`ExecutionResult` as an ASCII Gantt chart."""
    options = options or TimelineOptions()
    width = max(20, options.width)
    total = max(result.total_time_us, 1e-9)
    scale = width / total

    streams = result.stream_ids()
    lines = [f"timeline: {total:.0f}us total, {len(result.records)} kernels, "
             f"{len(streams)} stream(s)"]

    if options.show_cpu:
        row = [" "] * width
        for record in result.records:
            pos = min(width - 1, int(record.issue_time * scale))
            row[pos] = "|"
        lines.append("cpu     " + "".join(row))

    for stream in streams:
        row = [" "] * width
        for record in result.records_for_stream(stream):
            if record.start_time < 0:
                continue
            begin = min(width - 1, int(record.start_time * scale))
            end = min(width, max(begin + 1, int(record.end_time * scale)))
            glyph = _GLYPHS.get(record.kind, "+")
            for i in range(begin, end):
                row[i] = glyph
        lines.append(f"stream{stream} " + "".join(row))

    if options.show_legend:
        lines.append(
            "legend: # gemm, = elementwise, c copy, @ compound, ~ transfer, | launch"
        )
    return "\n".join(lines)


def utilization(result: ExecutionResult) -> dict[int, float]:
    """Busy fraction per stream over the mini-batch wall time."""
    total = max(result.total_time_us, 1e-9)
    busy: dict[int, float] = {}
    for record in result.records:
        if record.start_time >= 0:
            busy[record.stream] = busy.get(record.stream, 0.0) + record.duration
    return {stream: value / total for stream, value in sorted(busy.items())}


def overlap_fraction(result: ExecutionResult) -> float:
    """Fraction of wall time during which >= 2 kernels run concurrently.

    The quantity stream adaptation tries to maximize; 0.0 for any
    single-stream schedule.
    """
    events: list[tuple[float, int]] = []
    for record in result.records:
        if record.start_time >= 0:
            events.append((record.start_time, 1))
            events.append((record.end_time, -1))
    events.sort()
    active = 0
    overlap = 0.0
    last = None
    for time, delta in events:
        if last is not None and active >= 2:
            overlap += time - last
        active += delta
        last = time
    return overlap / max(result.total_time_us, 1e-9)
