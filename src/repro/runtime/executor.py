"""Executor: runs a lowered schedule on the GPU simulator and extracts the
fine-grained measurements that drive Astra's adaptation.

The measurements mirror section 4.7's metrics:

* per-unit elapsed time (GEMM / fused-GEMM / elementwise kernels);
* per-epoch stream metric: time from the start of the unit's super-epoch
  to the completion of *all* kernels dispatched on all streams up to and
  including that epoch;
* end-to-end mini-batch time and CPU profiling overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import GPUSpec
from ..gpu.streams import ExecutionResult, StreamSimulator
from ..obs.metrics import NULL_REGISTRY
from .dispatcher import Dispatcher, LoweredSchedule
from .plan import ExecutionPlan


@dataclass
class MiniBatchResult:
    """Everything observed while executing one mini-batch."""

    total_time_us: float
    cpu_time_us: float
    profiling_overhead_us: float
    #: unit id -> kernel execution time (including its gather pre-copies)
    unit_times: dict[int, float]
    #: (super_epoch, epoch) -> stream-completion metric (section 4.7)
    epoch_metrics: dict[tuple[int, int], float]
    #: raw simulator output, for tests and deep inspection
    raw: ExecutionResult

    @property
    def profiling_overhead_fraction(self) -> float:
        if self.total_time_us <= 0:
            return 0.0
        return self.profiling_overhead_us / self.total_time_us


class Executor:
    """Runs execution plans for a fixed graph on a simulated device.

    With ``validate=True`` every lowered schedule is statically checked
    by :mod:`repro.check` before it reaches the simulator; a defective
    schedule raises :class:`~repro.check.ScheduleValidationError` instead
    of executing, and per-kind violation counters are published to
    ``metrics`` (``check.schedules_validated``,
    ``check.violations.<kind>``).
    """

    def __init__(
        self,
        graph,
        device: GPUSpec,
        seed: int = 0,
        validate: bool = False,
        metrics=None,
    ):
        self.graph = graph
        self.device = device
        self.dispatcher = Dispatcher(graph)
        self.validate = validate
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._simulator = StreamSimulator(device, seed=seed)

    def run(self, plan: ExecutionPlan) -> MiniBatchResult:
        lowered = self.dispatcher.lower(plan)
        return self.run_lowered(lowered)

    def validate_lowered(self, lowered: LoweredSchedule):
        """Check one lowered schedule; raise on violations.

        Returns the :class:`~repro.check.ValidationReport` so callers in
        the exploration loop can inspect pass statistics.
        """
        # deferred import: repro.check sits above runtime in the layering
        from ..check import ScheduleValidationError, validate_schedule

        report = validate_schedule(lowered)
        self.metrics.counter("check.schedules_validated").inc()
        for kind, count in report.by_kind().items():
            self.metrics.counter(f"check.violations.{kind}").inc(count)
        if not report.ok:
            raise ScheduleValidationError(report)
        return report

    def run_lowered(self, lowered: LoweredSchedule) -> MiniBatchResult:
        if self.validate:
            self.validate_lowered(lowered)
        result = self._simulator.run(lowered.items)
        unit_times = self._unit_times(lowered, result)
        epoch_metrics = self._epoch_metrics(lowered, result)
        return MiniBatchResult(
            total_time_us=result.total_time_us,
            cpu_time_us=result.cpu_time_us,
            profiling_overhead_us=result.profiling_overhead_us,
            unit_times=unit_times,
            epoch_metrics=epoch_metrics,
            raw=result,
        )

    def _unit_times(self, lowered: LoweredSchedule, result: ExecutionResult) -> dict[int, float]:
        times: dict[int, float] = {}
        for unit in lowered.plan.units:
            idx = lowered.unit_record_index.get(unit.unit_id)
            if idx is None:
                continue
            record = result.records[idx]
            elapsed = record.duration
            # charge the unit for its gather copies: they exist only because
            # of this unit's fusion/allocation choice.  A hand-built schedule
            # may map a unit near the head of the record list; never walk
            # past index 0 (a negative index would silently charge the
            # wrong record from the tail).
            for back in range(1, len(unit.pre_copies) + 1):
                if idx - back < 0:
                    break
                elapsed += result.records[idx - back].duration
            times[unit.unit_id] = elapsed
        return times

    def _epoch_metrics(
        self, lowered: LoweredSchedule, result: ExecutionResult
    ) -> dict[tuple[int, int], float]:
        plan = lowered.plan
        # group unit completion times by (super_epoch, epoch)
        starts: dict[int, float] = {}
        ends: dict[tuple[int, int], float] = {}
        for unit in plan.units:
            if unit.super_epoch < 0 or unit.epoch < 0:
                continue
            idx = lowered.unit_record_index.get(unit.unit_id)
            if idx is None:
                continue
            record = result.records[idx]
            first = max(0, idx - len(unit.pre_copies))
            start = result.records[first].start_time
            se = unit.super_epoch
            starts[se] = min(starts.get(se, float("inf")), start)
            key = (se, unit.epoch)
            ends[key] = max(ends.get(key, 0.0), record.end_time)

        metrics: dict[tuple[int, int], float] = {}
        for se in starts:
            epochs = sorted(e for (s, e) in ends if s == se)
            running_end = 0.0
            for epoch in epochs:
                running_end = max(running_end, ends[(se, epoch)])
                metrics[(se, epoch)] = running_end - starts[se]
        return metrics
