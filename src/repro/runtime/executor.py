"""Executor: runs a lowered schedule on the GPU simulator and extracts the
fine-grained measurements that drive Astra's adaptation.

The measurements mirror section 4.7's metrics:

* per-unit elapsed time (GEMM / fused-GEMM / elementwise kernels);
* per-epoch stream metric: time from the start of the unit's super-epoch
  to the completion of *all* kernels dispatched on all streams up to and
  including that epoch;
* end-to-end mini-batch time and CPU profiling overhead.

With a :class:`~repro.faults.injector.FaultInjector` attached, the
executor is the boundary where injected faults become *typed*: aborting
faults (launch failure, device OOM, scheduled preemption) raise
:class:`~repro.faults.events.FaultError` subclasses, and measurement
faults (dropped or detectably-corrupted timestamps) are surfaced as
:class:`~repro.faults.events.FaultEvent` records on the result while the
affected measurements are withheld -- never silently-wrong numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import GPUSpec
from ..gpu.streams import ExecutionResult, StreamSimulator
from ..obs.metrics import NULL_REGISTRY
from ..perf.timers import NULL_CLOCK
from .dispatcher import Dispatcher, LoweredSchedule
from .plan import ExecutionPlan


@dataclass
class MiniBatchResult:
    """Everything observed while executing one mini-batch."""

    total_time_us: float
    cpu_time_us: float
    profiling_overhead_us: float
    #: unit id -> kernel execution time (including its gather pre-copies)
    unit_times: dict[int, float]
    #: (super_epoch, epoch) -> stream-completion metric (section 4.7)
    epoch_metrics: dict[tuple[int, int], float]
    #: raw simulator output, for tests and deep inspection
    raw: ExecutionResult
    #: measurement faults surfaced this mini-batch (affected unit times and
    #: epoch metrics are withheld, not silently wrong)
    faults: list = field(default_factory=list)

    @property
    def profiling_overhead_fraction(self) -> float:
        if self.total_time_us <= 0:
            return 0.0
        return self.profiling_overhead_us / self.total_time_us

    @property
    def tainted(self) -> bool:
        return bool(self.faults)


class Executor:
    """Runs execution plans for a fixed graph on a simulated device.

    With ``validate=True`` every lowered schedule is statically checked
    by :mod:`repro.check` before it reaches the simulator; a defective
    schedule raises :class:`~repro.check.ScheduleValidationError` instead
    of executing, and per-kind violation counters are published to
    ``metrics`` (``check.schedules_validated``,
    ``check.violations.<kind>``).

    With ``injector`` set, every run consults the fault-injection layer:
    scheduled preemption fires between mini-batches, plans whose arena
    exceeds the usable device memory raise
    :class:`~repro.faults.events.DeviceOOMError` before dispatch, launch
    failures abort mid-simulation, and tainted measurements are withheld
    (``fault.*`` counters record each occurrence).
    """

    def __init__(
        self,
        graph,
        device: GPUSpec,
        seed: int = 0,
        validate: bool = False,
        metrics=None,
        injector=None,
        cache=None,
        clock=None,
    ):
        self.graph = graph
        self.device = device
        self.dispatcher = Dispatcher(graph)
        self.validate = validate
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.injector = injector
        #: optional :class:`repro.perf.cache.LoweringCache` memoizing
        #: plan -> LoweredSchedule across structurally identical plans
        self.cache = cache
        self.clock = clock if clock is not None else NULL_CLOCK
        self._simulator = StreamSimulator(device, seed=seed, injector=injector)

    def run(self, plan: ExecutionPlan, validate: bool | None = None) -> MiniBatchResult:
        with self.clock.phase("lower"):
            if self.cache is not None:
                lowered = self.cache.lower(self.dispatcher, plan)
            else:
                lowered = self.dispatcher.lower(plan)
        return self.run_lowered(lowered, validate=validate)

    def validate_lowered(self, lowered: LoweredSchedule):
        """Check one lowered schedule; raise on violations.

        Returns the :class:`~repro.check.ValidationReport` so callers in
        the exploration loop can inspect pass statistics.
        """
        # deferred import: repro.check sits above runtime in the layering
        from ..check import ScheduleValidationError, validate_schedule

        report = validate_schedule(lowered)
        self.metrics.counter("check.schedules_validated").inc()
        for kind, count in report.by_kind().items():
            self.metrics.counter(f"check.violations.{kind}").inc(count)
        if not report.ok:
            raise ScheduleValidationError(report)
        return report

    def _check_memory(self, plan: ExecutionPlan) -> None:
        """Device-OOM gate: the plan's arena must fit the usable memory.

        The capacity comes from the device model (``GPUSpec.memory_bytes``);
        an armed ``oom`` fault window can shrink it further (a co-tenant
        occupying part of the device)."""
        if plan.allocation is None:
            return
        from ..faults.events import FAULT_OOM, DeviceOOMError

        arena = plan.allocation.arena_size_bytes
        capacity = self.device.memory_bytes
        minibatch = -1
        if self.injector is not None:
            capacity = self.injector.effective_memory_bytes(self.device)
            minibatch = self.injector.minibatch
        if arena > capacity:
            if self.injector is not None:
                self.injector.record(FAULT_OOM, f"arena {arena} > {capacity}")
            self.metrics.counter("fault.oom").inc()
            raise DeviceOOMError(arena, capacity, minibatch)

    def run_lowered(
        self, lowered: LoweredSchedule, validate: bool | None = None
    ) -> MiniBatchResult:
        from ..faults.events import FAULT_PREEMPT, KernelLaunchError, PreemptionError

        do_validate = self.validate if validate is None else validate
        if do_validate:
            with self.clock.phase("validate"):
                self.validate_lowered(lowered)
        fault_log = None
        if self.injector is not None:
            try:
                fault_log = self.injector.begin_minibatch()
            except PreemptionError:
                self.metrics.counter(f"fault.{FAULT_PREEMPT}").inc()
                raise
        self._check_memory(lowered.plan)
        try:
            with self.clock.phase("simulate"):
                result = self._simulator.run(lowered.items)
        except KernelLaunchError:
            self.metrics.counter("fault.launch_fail").inc()
            self.metrics.counter("fault.minibatches_lost").inc()
            raise
        unit_times, faults, tainted_units = self._unit_times(
            lowered, result, fault_log
        )
        epoch_metrics = self._epoch_metrics(lowered, result, tainted_units)
        return MiniBatchResult(
            total_time_us=result.total_time_us,
            cpu_time_us=result.cpu_time_us,
            profiling_overhead_us=result.profiling_overhead_us,
            unit_times=unit_times,
            epoch_metrics=epoch_metrics,
            raw=result,
            faults=faults,
        )

    def _unit_times(
        self,
        lowered: LoweredSchedule,
        result: ExecutionResult,
        fault_log=None,
    ) -> tuple[dict[int, float], list, set[int]]:
        from ..faults.events import FAULT_EVENT_CORRUPT, FAULT_EVENT_DROP, FaultEvent

        times: dict[int, float] = {}
        faults: list = []
        tainted: set[int] = set()
        dropped = fault_log.dropped_records if fault_log is not None else ()
        corrupted = fault_log.corrupted_records if fault_log is not None else {}
        for unit in lowered.plan.units:
            idx = lowered.unit_record_index.get(unit.unit_id)
            if idx is None:
                continue
            if idx in dropped:
                # the timestamp pair backing this measurement was lost:
                # surface the fault and withhold the number entirely
                faults.append(FaultEvent(
                    FAULT_EVENT_DROP, f"unit {unit.unit_id} timestamp lost",
                    unit_id=unit.unit_id,
                ))
                self.metrics.counter("fault.event_drop").inc()
                tainted.add(unit.unit_id)
                continue
            record = result.records[idx]
            elapsed = record.duration
            if idx in corrupted:
                elapsed *= corrupted[idx]
                # plausibility check: a corrupted elapsed time that falls
                # outside the mini-batch is detectably absurd and is
                # withheld; one inside the envelope survives as a
                # plausible-but-wrong sample for min-of-k/MAD to reject
                if elapsed <= 0.0 or elapsed > result.total_time_us:
                    faults.append(FaultEvent(
                        FAULT_EVENT_CORRUPT,
                        f"unit {unit.unit_id} timestamp implausible",
                        unit_id=unit.unit_id,
                    ))
                    self.metrics.counter("fault.event_corrupt_detected").inc()
                    tainted.add(unit.unit_id)
                    continue
            # charge the unit for its gather copies: they exist only because
            # of this unit's fusion/allocation choice.  A hand-built schedule
            # may map a unit near the head of the record list; never walk
            # past index 0 (a negative index would silently charge the
            # wrong record from the tail).
            for back in range(1, len(unit.pre_copies) + 1):
                if idx - back < 0:
                    break
                elapsed += result.records[idx - back].duration
            times[unit.unit_id] = elapsed
        return times, faults, tainted

    def _epoch_metrics(
        self,
        lowered: LoweredSchedule,
        result: ExecutionResult,
        tainted_units: set[int] | None = None,
    ) -> dict[tuple[int, int], float]:
        plan = lowered.plan
        tainted_units = tainted_units or set()
        # group unit completion times by (super_epoch, epoch); epochs that
        # contain a unit with a lost/implausible timestamp are withheld --
        # their stream metric would be built on the missing measurement
        tainted_epochs: set[tuple[int, int]] = set()
        starts: dict[int, float] = {}
        ends: dict[tuple[int, int], float] = {}
        for unit in plan.units:
            if unit.super_epoch < 0 or unit.epoch < 0:
                continue
            if unit.unit_id in tainted_units:
                tainted_epochs.add((unit.super_epoch, unit.epoch))
                continue
            idx = lowered.unit_record_index.get(unit.unit_id)
            if idx is None:
                continue
            record = result.records[idx]
            first = max(0, idx - len(unit.pre_copies))
            start = result.records[first].start_time
            se = unit.super_epoch
            starts[se] = min(starts.get(se, float("inf")), start)
            key = (se, unit.epoch)
            ends[key] = max(ends.get(key, 0.0), record.end_time)

        metrics: dict[tuple[int, int], float] = {}
        for se in starts:
            epochs = sorted(e for (s, e) in ends if s == se)
            running_end = 0.0
            for epoch in epochs:
                running_end = max(running_end, ends[(se, epoch)])
                if (se, epoch) in tainted_epochs:
                    continue
                metrics[(se, epoch)] = running_end - starts[se]
        return metrics
