"""Runtime layer: execution plans, the dispatcher Astra interposes on, and
the executor that runs plans on the simulated GPU (paper Figure 3)."""

from .dispatcher import Dispatcher, LoweredSchedule
from .executor import Executor, MiniBatchResult
from .lowering import (
    build_units,
    elementwise_chains,
    fused_elementwise_kernel,
    kernel_for_node,
)
from .plan import ExecutionPlan, Unit

__all__ = [
    "Dispatcher", "LoweredSchedule", "Executor", "MiniBatchResult",
    "build_units", "elementwise_chains", "fused_elementwise_kernel",
    "kernel_for_node", "ExecutionPlan", "Unit",
]

from .timeline import TimelineOptions, overlap_fraction, render_timeline, utilization

__all__ += ["TimelineOptions", "overlap_fraction", "render_timeline", "utilization"]
