"""Execution plans: every choice the optimizer can make, reified.

A plan is one point in Astra's optimization state space (section 3): which
GEMMs are fused and at what granularity, which kernel library each GEMM
launch uses, which stream each kernel is dispatched to and in what order,
where super-epoch barriers fall, and which memory-allocation strategy is
active.  The native, cuDNN and XLA baselines are just particular fixed
plans; Astra's custom-wirer *iterates* over plans, one per mini-batch.

The dispatcher (:mod:`repro.runtime.dispatcher`) lowers a plan to the
dispatch-item list the GPU simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.kernels import Kernel
from ..gpu.memory import AllocationPlan


@dataclass
class Unit:
    """One schedulable unit: a single kernel launch covering >= 1 DFG nodes.

    ``pre_copies`` are gather kernels that must run immediately before the
    main kernel in the same stream (e.g. compacting non-contiguous fused
    operands).  ``host_us`` > 0 models CPU-side work that stalls dispatch
    instead of launching a device kernel (XLA embedding pathology).
    """

    unit_id: int
    kernel: Kernel | None
    node_ids: tuple[int, ...]
    label: str = ""
    pre_copies: tuple[Kernel, ...] = ()
    host_us: float = 0.0
    #: epoch/super-epoch coordinates assigned by the enumerator (-1 = none)
    epoch: int = -1
    super_epoch: int = -1

    def __post_init__(self) -> None:
        if self.kernel is None and self.host_us <= 0.0:
            raise ValueError(f"unit {self.unit_id} has neither kernel nor host work")
        if not self.node_ids:
            raise ValueError(f"unit {self.unit_id} covers no nodes")


@dataclass
class ExecutionPlan:
    """A complete, executable configuration for one mini-batch.

    ``units`` must cover each compute node at most once; nodes not covered
    by any unit are free (reshapes, constant fills).  ``stream_of`` maps
    unit ids to streams (missing = stream 0).  ``dispatch_order`` optionally
    overrides the topological issue order -- Astra's stream adaptation
    explores both assignment *and* dispatch order (section 4.5.3).
    """

    units: list[Unit]
    allocation: AllocationPlan | None = None
    stream_of: dict[int, int] = field(default_factory=dict)
    dispatch_order: list[int] | None = None
    #: unit ids after which a cross-stream barrier is inserted
    barriers_after: frozenset[int] = frozenset()
    #: record per-unit timing events (profiled exploration mini-batches)
    profile: bool = True
    #: restrict event marking to these unit ids (None = every unit); the
    #: paper profiles only "regions of interest" to amortize overhead (5.2)
    profile_unit_ids: frozenset[int] | None = None
    label: str = "plan"

    def stream(self, unit_id: int) -> int:
        return self.stream_of.get(unit_id, 0)

    @property
    def num_streams(self) -> int:
        return max([self.stream(u.unit_id) for u in self.units], default=0) + 1

    def unit_by_id(self, unit_id: int) -> Unit:
        for unit in self.units:
            if unit.unit_id == unit_id:
                return unit
        raise KeyError(unit_id)

    def validate_covering(self, graph=None) -> None:
        """Each *compute* node may be covered by at most one unit.  Leaf
        nodes (params/inputs) may appear in several units: weight-pack
        prologue copies reference the leaves they gather."""
        seen: set[int] = set()
        for unit in self.units:
            if unit.kernel is not None and unit.kernel.kind == "copy" and unit.label.startswith("pack"):
                continue
            for nid in unit.node_ids:
                if nid in seen:
                    raise ValueError(f"node %{nid} covered by multiple units")
                seen.add(nid)
