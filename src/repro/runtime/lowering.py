"""Node-to-kernel lowering shared by every plan builder.

Maps DFG nodes onto simulator kernels: GEMM nodes become
:class:`~repro.gpu.kernels.GemmLaunch`, elementwise/reduction chains become
(optionally JIT-fused, section 5.3) :class:`ElementwiseLaunch`, data
movement becomes copies, and reshape/fill are free.  The native baseline
uses these units verbatim; Astra's enumerator replaces the GEMM units with
fused groups and re-streams everything.
"""

from __future__ import annotations

import itertools

from ..gpu.kernels import CopyLaunch, ElementwiseLaunch, GemmLaunch, Kernel
from ..gpu.libraries import DEFAULT_LIBRARY
from ..ir import ops
from ..ir.graph import Graph, Node
from .plan import Unit

#: op kinds lowered into a single (possibly fused) elementwise launch
_FUSABLE_KINDS = {ops.KIND_ELEMENTWISE, ops.KIND_REDUCTION}


def kernel_for_node(graph: Graph, node: Node, library: str = DEFAULT_LIBRARY) -> Kernel | None:
    """The kernel executing one node alone, or None for free ops."""
    if node.is_leaf or node.op is None:
        return None
    op = node.op
    if isinstance(op, (ops.Reshape, ops.Fill)):
        return None
    in_specs = [graph.node(i).spec for i in node.input_ids]
    if node.kind == ops.KIND_GEMM:
        assert isinstance(op, ops.MatMul)
        m, k, n = op.gemm_dims(in_specs)
        return GemmLaunch(m, k, n, library, node_ids=(node.node_id,))
    if node.kind in _FUSABLE_KINDS:
        elems = node.spec.num_elements
        flops = op.flops(in_specs, node.spec)
        traffic = op.bytes_accessed(in_specs, node.spec)
        return ElementwiseLaunch(
            num_elements=elems,
            fused_ops=1,
            flops_per_element=flops / elems,
            bytes_per_element=traffic / elems,
            node_ids=(node.node_id,),
            label=op.name,
        )
    if node.kind == ops.KIND_EMBEDDING:
        traffic = op.bytes_accessed(in_specs, node.spec)
        return ElementwiseLaunch(
            num_elements=node.spec.num_elements,
            fused_ops=1,
            flops_per_element=0.0,
            bytes_per_element=traffic / node.spec.num_elements,
            node_ids=(node.node_id,),
            label=op.name,
        )
    if node.kind == ops.KIND_MOVEMENT:
        return CopyLaunch(
            bytes_moved=node.spec.size_bytes,
            label=op.name,
            node_ids=(node.node_id,),
        )
    raise NotImplementedError(f"no lowering for op kind {node.kind!r} ({op.name})")


def fused_elementwise_kernel(graph: Graph, node_ids: tuple[int, ...]) -> ElementwiseLaunch:
    """One launch computing a chain of elementwise ops (JIT fusion, 5.3)."""
    nodes = [graph.node(nid) for nid in node_ids]
    out = nodes[-1]
    elems = out.spec.num_elements
    total_flops = 0
    for node in nodes:
        in_specs = [graph.node(i).spec for i in node.input_ids]
        total_flops += node.op.flops(in_specs, node.spec)  # type: ignore[union-attr]
    # fused chain streams external inputs once and writes one output
    external_inputs = {
        inp
        for node in nodes
        for inp in node.input_ids
        if inp not in set(node_ids)
    }
    traffic = out.spec.size_bytes + sum(graph.node(i).spec.size_bytes for i in external_inputs)
    return ElementwiseLaunch(
        num_elements=elems,
        fused_ops=len(nodes),
        flops_per_element=total_flops / (elems * len(nodes)),
        bytes_per_element=traffic / (elems * len(nodes)),
        node_ids=tuple(node_ids),
        label="fused_" + nodes[-1].op.name,  # type: ignore[union-attr]
    )


def elementwise_chains(graph: Graph, node_ids: set[int] | None = None) -> list[tuple[int, ...]]:
    """Greedy chain detection for elementwise JIT fusion.

    A node joins its producer's chain when the producer is elementwise,
    feeds only this node, produces the same element count, and belongs to
    the same pass (forward/backward) -- the conservative conditions under
    which a pointwise JIT compiler fuses without materialising.
    """
    eligible = {
        n.node_id
        for n in graph.nodes
        if not n.is_leaf and n.kind in _FUSABLE_KINDS
        and (node_ids is None or n.node_id in node_ids)
    }
    chain_of: dict[int, list[int]] = {}
    chains: list[list[int]] = []
    for node in graph.nodes:
        if node.node_id not in eligible:
            continue
        merged = None
        for inp in node.input_ids:
            if (
                inp in chain_of
                and len(graph.consumers(inp)) == 1
                and graph.node(inp).spec.num_elements == node.spec.num_elements
                and graph.node(inp).pass_tag == node.pass_tag
            ):
                merged = chain_of[inp]
                break
        if merged is None:
            merged = []
            chains.append(merged)
        merged.append(node.node_id)
        chain_of[node.node_id] = merged
    return [tuple(chain) for chain in chains if chain]


def cached_elementwise_chains(
    graph: Graph, node_ids: set[int], cache: dict
) -> list[tuple[int, ...]]:
    """Memoized :func:`elementwise_chains` keyed by the uncovered-node set.

    Chain detection walks the whole graph but depends only on which nodes
    are left uncovered -- which is invariant across exploration
    configurations (fusion choices only re-cover GEMM nodes) -- so the
    enumerator pays for it once per distinct remainder instead of once
    per plan build.  ``cache`` is caller-owned (one per enumerator);
    entries are immutable tuples and safe to share.
    """
    key = frozenset(node_ids)
    chains = cache.get(key)
    if chains is None:
        chains = elementwise_chains(graph, node_ids)
        cache[key] = chains
    return chains


def build_units(
    graph: Graph,
    gemm_library: str = DEFAULT_LIBRARY,
    fuse_elementwise: bool = False,
) -> list[Unit]:
    """Per-node units (the native execution model), with optional
    elementwise chain fusion.  GEMMs stay one unit per node here; fused
    GEMM units are built by the enumerator."""
    units: list[Unit] = []
    counter = itertools.count()
    covered: set[int] = set()

    if fuse_elementwise:
        for chain in elementwise_chains(graph):
            if len(chain) < 2:
                continue
            kernel = fused_elementwise_kernel(graph, chain)
            units.append(Unit(next(counter), kernel, chain, label=kernel.label))
            covered.update(chain)

    for node in graph.nodes:
        if node.node_id in covered:
            continue
        kernel = kernel_for_node(graph, node, library=gemm_library)
        if kernel is None:
            continue
        units.append(Unit(next(counter), kernel, (node.node_id,), label=kernel.name))
    return units
