"""ProfileStore: the persistent, fleet-shared profile-index store.

Today a job's profile index dies with its process (checkpoints aside).
The store gives indexes a life beyond the run: a directory of
append-only JSON segments, one sub-directory per :func:`job digest
<repro.serve.keys.job_digest>`, versioned by the simulator/cost-model
:func:`schema <repro.serve.keys.store_schema_version>`.

Design rules, in priority order:

* **crash safety** -- a segment becomes visible only through an atomic
  ``os.replace``; a writer killed mid-write leaves a ``*.tmp`` file the
  loader never reads.  There is no read-modify-write anywhere: writers
  only ever *add* segments, so no fsync ordering between writers
  matters.
* **first-writer-wins determinism** -- loading a job merges its
  segments in sorted filename order (names embed a nanosecond
  timestamp, then pid, then a per-writer sequence number) through
  :meth:`repro.core.profile_index.ProfileIndex.merge`, which dedupes
  repeated keys and keeps quarantine sentinels sticky.  Concurrent
  writers therefore race only on *who lands the earlier filename*;
  every subsequent load of the same segment set produces the same
  index, byte for byte.
* **eviction on version change** -- every segment records the schema it
  was measured under.  Opening a store whose ``META.json`` carries a
  different schema rewrites META and drops the stale segments; a stale
  segment that survives (e.g. written concurrently by an old-schema
  process) is filtered at load time, so version skew can degrade reuse
  but never correctness.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..core.profile_index import ProfileIndex, untuple
from .keys import store_schema_version

#: layout version of the store directory itself (META + segments)
STORE_VERSION = 1

_META = "META.json"
_INDEX_DIR = "index"


@dataclass
class SegmentInfo:
    """Outcome of one :meth:`ProfileStore.put`."""

    path: str
    entries: int


class ProfileStore:
    """Append-only on-disk store of profile indexes, keyed by job digest."""

    def __init__(self, root: str, schema: str | None = None):
        self.root = os.path.abspath(root)
        self.schema = schema if schema is not None else store_schema_version()
        #: segments dropped because their schema no longer matches
        self.evicted_segments = 0
        #: segments skipped because they could not be parsed (a serving
        #: daemon must not die on one torn file; atomic rename makes
        #: these unreachable in practice)
        self.corrupt_segments = 0
        self._seq = 0
        self._open()

    # -- layout -------------------------------------------------------------

    def _index_root(self) -> str:
        return os.path.join(self.root, _INDEX_DIR)

    def _job_dir(self, digest: str) -> str:
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"malformed job digest {digest!r}")
        return os.path.join(self._index_root(), digest)

    def _open(self) -> None:
        os.makedirs(self._index_root(), exist_ok=True)
        meta_path = os.path.join(self.root, _META)
        meta = None
        if os.path.exists(meta_path):
            try:
                with open(meta_path) as fh:
                    meta = json.load(fh)
            except (OSError, ValueError):
                meta = None  # torn META: treat as a fresh store
        if (
            meta is not None
            and meta.get("store_version") == STORE_VERSION
            and meta.get("schema") == self.schema
        ):
            return
        # version mismatch (or first open): stamp the new identity first
        # -- readers filter segments by schema, so a concurrent old-schema
        # writer cannot poison the store while we sweep -- then evict
        self._write_meta(meta_path)
        if meta is not None:
            self.evicted_segments += self.evict_stale()

    def _write_meta(self, meta_path: str) -> None:
        doc = {"store_version": STORE_VERSION, "schema": self.schema}
        tmp = f"{meta_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, meta_path)

    def evict_stale(self) -> int:
        """Remove every segment whose schema differs from the store's.

        Best-effort: a file another process removed first just counts as
        already gone.  Returns the number of segments removed."""
        removed = 0
        for digest in self.jobs():
            job_dir = self._job_dir(digest)
            for name in self._segment_names(job_dir):
                path = os.path.join(job_dir, name)
                doc = self._read_segment(path)
                if doc is not None and doc.get("schema") == self.schema:
                    continue
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- writing ------------------------------------------------------------

    def put(self, digest: str, measurements) -> SegmentInfo | None:
        """Append one segment of ``(key, value)`` measurements for a job.

        ``measurements`` may be a :class:`ProfileIndex`, a mapping, or an
        iterable of pairs.  Returns None (and writes nothing) when there
        is nothing to persist.  The segment is written to a ``.tmp`` path
        and published with one atomic rename."""
        if isinstance(measurements, ProfileIndex):
            items = list(measurements.snapshot().items())
        elif hasattr(measurements, "items"):
            items = list(measurements.items())
        else:
            items = list(measurements)
        if not items:
            return None
        job_dir = self._job_dir(digest)
        os.makedirs(job_dir, exist_ok=True)
        self._seq += 1
        name = (
            f"seg-{time.time_ns():020d}-{os.getpid():08d}-{self._seq:06d}.json"
        )
        doc = {
            "version": STORE_VERSION,
            "schema": self.schema,
            "entries": [
                {"key": list(key), "value": value} for key, value in items
            ],
        }
        path = os.path.join(job_dir, name)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)
        return SegmentInfo(path=path, entries=len(items))

    # -- reading ------------------------------------------------------------

    @staticmethod
    def _segment_names(job_dir: str) -> list[str]:
        try:
            names = os.listdir(job_dir)
        except OSError:
            return []
        return sorted(
            n for n in names if n.startswith("seg-") and n.endswith(".json")
        )

    def _read_segment(self, path: str) -> dict | None:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or "entries" not in doc:
            return None
        return doc

    def entries(self, digest: str) -> list[tuple[tuple, float]]:
        """The job's merged measurements, first-writer-wins, as pairs.

        Deterministic for a given segment set: segments merge in sorted
        filename order, and within a segment in recorded order."""
        index = self.load(digest)
        return [] if index is None else list(index.snapshot().items())

    def load(self, digest: str) -> ProfileIndex | None:
        """Merge every live segment of one job into a fresh index.

        Returns None when the job has no (readable, schema-matching)
        segments at all -- "never seen" and "empty" are different
        answers to a warm-start probe."""
        job_dir = self._job_dir(digest)
        names = self._segment_names(job_dir)
        index = ProfileIndex()
        seen_any = False
        for name in names:
            doc = self._read_segment(os.path.join(job_dir, name))
            if doc is None:
                self.corrupt_segments += 1
                continue
            if doc.get("schema") != self.schema:
                continue  # stale survivor of an eviction sweep
            seen_any = True
            index.merge(
                (untuple(entry["key"]), entry["value"])
                for entry in doc["entries"]
            )
        return index if seen_any else None

    def jobs(self) -> list[str]:
        """Digests with at least one segment directory, sorted."""
        try:
            names = os.listdir(self._index_root())
        except OSError:
            return []
        return sorted(n for n in names if not n.startswith("."))

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        jobs = self.jobs()
        segments = sum(
            len(self._segment_names(self._job_dir(d))) for d in jobs
        )
        return {
            "root": self.root,
            "schema": self.schema,
            "jobs": len(jobs),
            "segments": segments,
            "evicted_segments": self.evicted_segments,
            "corrupt_segments": self.corrupt_segments,
        }

    def observe_into(self, registry) -> None:
        stats = self.stats()
        for name in ("jobs", "segments", "evicted_segments", "corrupt_segments"):
            registry.gauge(f"store.{name}").set(stats[name])
