"""ProfileStore: the persistent, fleet-shared profile-index store.

Today a job's profile index dies with its process (checkpoints aside).
The store gives indexes a life beyond the run: a directory of
append-only JSON segments, one sub-directory per :func:`job digest
<repro.serve.keys.job_digest>`, versioned by the simulator/cost-model
:func:`schema <repro.serve.keys.store_schema_version>`.

Design rules, in priority order:

* **crash safety** -- a segment becomes visible only through an atomic
  ``os.replace``; a writer killed mid-write leaves a ``*.tmp`` file the
  loader never reads.  There is no read-modify-write anywhere: writers
  only ever *add* segments, so no fsync ordering between writers
  matters.
* **self-healing integrity** -- every segment is stamped with a sha256
  checksum at :meth:`put` and verified on every read.  A torn, trailing
  -garbage, or bit-flipped segment is **quarantined** (moved to
  ``quarantine/`` under the store root, counted in
  ``serve.store.corrupt``) rather than crashed on, trusted, or silently
  dropped -- Daydream's trust-the-trace rule applied to the knowledge
  base: never serve a measurement whose integrity cannot be verified,
  and never lose the evidence either.  ``load()`` always succeeds on
  the surviving segments.
* **first-writer-wins determinism** -- loading a job merges its
  segments in sorted filename order (names embed a nanosecond
  timestamp, then pid, then a per-writer sequence number) through
  :meth:`repro.core.profile_index.ProfileIndex.merge`, which dedupes
  repeated keys and keeps quarantine sentinels sticky.  Concurrent
  writers therefore race only on *who lands the earlier filename*;
  every subsequent load of the same segment set produces the same
  index, byte for byte.
* **eviction on version change** -- every segment records the schema it
  was measured under.  Opening a store whose ``META.json`` carries a
  different schema rewrites META and drops the stale segments; a stale
  segment that survives (e.g. written concurrently by an old-schema
  process) is filtered at load time, so version skew can degrade reuse
  but never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

from ..core.profile_index import ProfileIndex, untuple
from .keys import store_schema_version

#: layout version of the store directory itself (META + segments);
#: version 2 added the per-segment sha256 integrity stamp
STORE_VERSION = 2

_META = "META.json"
_INDEX_DIR = "index"
_QUARANTINE_DIR = "quarantine"
_MODELS_DIR = "models"

#: segment classification outcomes (see :meth:`ProfileStore._classify`)
SEG_OK = "ok"
SEG_CORRUPT = "corrupt"      # torn, bit-flipped, or checksum-less v2
SEG_STALE = "stale"          # schema mismatch (old simulator semantics)
SEG_LEGACY = "legacy"        # pre-checksum layout (store version < 2)


def segment_checksum(body: dict) -> str:
    """sha256 over the canonical JSON of a segment's payload body.

    The body is the ``{"version", "schema", "entries"}`` triple -- the
    checksum therefore covers every byte that affects what ``load()``
    would merge, so flipping *any* of them is detected."""
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class SegmentInfo:
    """Outcome of one :meth:`ProfileStore.put`."""

    path: str
    entries: int


class ProfileStore:
    """Append-only on-disk store of profile indexes, keyed by job digest."""

    def __init__(self, root: str, schema: str | None = None, metrics=None):
        self.root = os.path.abspath(root)
        self.schema = schema if schema is not None else store_schema_version()
        self._metrics = metrics
        #: segments dropped because their schema no longer matches
        self.evicted_segments = 0
        #: segments found corrupt (torn tail, flipped byte, missing or
        #: mismatching checksum) -- every one is also quarantined
        self.corrupt_segments = 0
        #: corrupt segments successfully moved to ``quarantine/``
        self.quarantined_segments = 0
        #: learned-cost-model artifacts dropped on schema change
        self.evicted_models = 0
        self._seq = 0
        self._open()

    # -- layout -------------------------------------------------------------

    def _index_root(self) -> str:
        return os.path.join(self.root, _INDEX_DIR)

    def _quarantine_root(self) -> str:
        return os.path.join(self.root, _QUARANTINE_DIR)

    def _job_dir(self, digest: str) -> str:
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"malformed job digest {digest!r}")
        return os.path.join(self._index_root(), digest)

    def _open(self) -> None:
        os.makedirs(self._index_root(), exist_ok=True)
        meta_path = os.path.join(self.root, _META)
        meta = None
        if os.path.exists(meta_path):
            try:
                with open(meta_path) as fh:
                    meta = json.load(fh)
            except (OSError, ValueError):
                meta = None  # torn META: treat as a fresh store
        if (
            meta is not None
            and meta.get("store_version") == STORE_VERSION
            and meta.get("schema") == self.schema
        ):
            return
        # version mismatch (or first open): stamp the new identity first
        # -- readers filter segments by schema, so a concurrent old-schema
        # writer cannot poison the store while we sweep -- then evict
        self._write_meta(meta_path)
        if meta is not None:
            self.evicted_segments += self.evict_stale()

    def _write_meta(self, meta_path: str) -> None:
        doc = {"store_version": STORE_VERSION, "schema": self.schema}
        tmp = f"{meta_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, meta_path)

    def evict_stale(self) -> int:
        """Remove every stale or legacy segment; quarantine corrupt ones.

        Best-effort: a file another process removed first just counts as
        already gone.  Returns the number of segments removed."""
        removed = 0
        for digest in self.jobs():
            job_dir = self._job_dir(digest)
            for name in self._segment_names(job_dir):
                path = os.path.join(job_dir, name)
                verdict, _doc = self._classify(path)
                if verdict == SEG_OK:
                    continue
                if verdict == SEG_CORRUPT:
                    self._quarantine(path, digest)
                    continue
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        self.evicted_models += self._sweep_models()
        return removed

    # -- learned-cost-model artifacts (docs/learning.md) ---------------------

    def _models_root(self) -> str:
        return os.path.join(self.root, _MODELS_DIR)

    def model_path(self, name: str = "cost-model") -> str:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"malformed model name {name!r}")
        return os.path.join(self._models_root(), f"{name}.json")

    def models(self) -> list[str]:
        """Names of the artifacts currently stored, sorted."""
        try:
            names = os.listdir(self._models_root())
        except OSError:
            return []
        return sorted(n[:-5] for n in names if n.endswith(".json"))

    def put_model(self, artifact, name: str = "cost-model") -> str:
        """Persist one trained cost-model artifact, atomically.

        ``artifact`` is a :class:`~repro.learn.model.LearnedCostModel`
        or its serialized JSON text.  The artifact is verified against
        this store's schema *before* it is accepted -- a stale or
        corrupt artifact raises instead of poisoning readers."""
        from ..learn.model import LearnedCostModel

        if isinstance(artifact, LearnedCostModel):
            artifact = artifact.dumps()
        LearnedCostModel.loads(artifact, schema=self.schema)
        path = self.model_path(name)
        os.makedirs(self._models_root(), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(artifact)
        os.replace(tmp, path)
        if self._metrics is not None:
            self._metrics.counter("serve.store.models_stored").inc()
        return path

    def load_model(self, name: str = "cost-model") -> str | None:
        """One verified artifact's JSON text, or None.

        Mirrors segment handling: a corrupt artifact is quarantined, a
        stale one (trained against a different simulator schema) is
        evicted; both return None so callers fall back to exhaustive
        exploration."""
        from ..learn.model import (
            LearnedCostModel, ModelArtifactError, StaleModelError,
        )

        path = self.model_path(name)
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return None
        try:
            LearnedCostModel.loads(text, schema=self.schema)
        except StaleModelError:
            self.evicted_models += 1
            if self._metrics is not None:
                self._metrics.counter("serve.store.models_evicted").inc()
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        except ModelArtifactError:
            self._quarantine(path, _MODELS_DIR)
            return None
        return text

    def _sweep_models(self) -> int:
        """Drop artifacts that no longer verify; returns evictions."""
        from ..learn.model import (
            LearnedCostModel, ModelArtifactError, StaleModelError,
        )

        removed = 0
        for name in self.models():
            path = self.model_path(name)
            try:
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
                LearnedCostModel.loads(text, schema=self.schema)
            except StaleModelError:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
            except (OSError, ModelArtifactError):
                self._quarantine(path, _MODELS_DIR)
        return removed

    # -- writing ------------------------------------------------------------

    def put(self, digest: str, measurements) -> SegmentInfo | None:
        """Append one segment of ``(key, value)`` measurements for a job.

        ``measurements`` may be a :class:`ProfileIndex`, a mapping, or an
        iterable of pairs.  Returns None (and writes nothing) when there
        is nothing to persist.  The segment body is checksummed, written
        to a ``.tmp`` path, and published with one atomic rename."""
        if isinstance(measurements, ProfileIndex):
            items = list(measurements.snapshot().items())
        elif hasattr(measurements, "items"):
            items = list(measurements.items())
        else:
            items = list(measurements)
        if not items:
            return None
        job_dir = self._job_dir(digest)
        os.makedirs(job_dir, exist_ok=True)
        self._seq += 1
        name = (
            f"seg-{time.time_ns():020d}-{os.getpid():08d}-{self._seq:06d}.json"
        )
        body = {
            "version": STORE_VERSION,
            "schema": self.schema,
            "entries": [
                {"key": list(key), "value": value} for key, value in items
            ],
        }
        doc = dict(body)
        # the checksum is computed over the JSON-normalized body (what a
        # reader will reconstruct after json.load), not the Python one
        doc["sha256"] = segment_checksum(_normalize_body(body))
        path = os.path.join(job_dir, name)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)
        return SegmentInfo(path=path, entries=len(items))

    # -- reading ------------------------------------------------------------

    @staticmethod
    def _segment_names(job_dir: str) -> list[str]:
        try:
            names = os.listdir(job_dir)
        except OSError:
            return []
        return sorted(
            n for n in names if n.startswith("seg-") and n.endswith(".json")
        )

    def _classify(self, path: str) -> tuple[str, dict | None]:
        """Read and verify one segment file.

        Returns ``(verdict, doc)``; ``doc`` is only non-None for
        :data:`SEG_OK`.  Verification order matters: the checksum is
        checked *before* the schema, because a bit flip inside the
        schema field must read as corruption, not as a stale segment."""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return SEG_CORRUPT, None
        if not isinstance(doc, dict) or not isinstance(
            doc.get("entries"), list
        ):
            return SEG_CORRUPT, None
        if "sha256" not in doc:
            # a checksum-less segment claiming the current layout is
            # corrupt; one from an older layout is merely legacy
            if doc.get("version") == STORE_VERSION:
                return SEG_CORRUPT, None
            return SEG_LEGACY, None
        body = {k: doc.get(k) for k in ("version", "schema", "entries")}
        if segment_checksum(body) != doc["sha256"]:
            return SEG_CORRUPT, None
        if doc.get("schema") != self.schema:
            return SEG_STALE, None  # survivor of an eviction sweep
        return SEG_OK, doc

    def _read_segment(self, path: str) -> dict | None:
        """One verified segment document, or None for anything unusable.

        Corrupt files are quarantined as a side effect -- callers never
        see (and can never merge) unverified measurements."""
        verdict, doc = self._classify(path)
        if verdict == SEG_CORRUPT:
            self._quarantine(path)
            return None
        return doc  # None for stale/legacy too

    def _quarantine(self, path: str, digest: str | None = None) -> None:
        """Move a corrupt segment aside; count it; never raise.

        The file is preserved under ``quarantine/`` (prefixed with its
        job digest) so corruption is evidence, not a silent deletion.
        Losing the race to another process's quarantine is fine."""
        self.corrupt_segments += 1
        if self._metrics is not None:
            self._metrics.counter("serve.store.corrupt").inc()
        if digest is None:
            digest = os.path.basename(os.path.dirname(path))
        try:
            os.makedirs(self._quarantine_root(), exist_ok=True)
            os.replace(path, os.path.join(
                self._quarantine_root(),
                f"{digest}__{os.path.basename(path)}",
            ))
            self.quarantined_segments += 1
            if self._metrics is not None:
                self._metrics.counter("serve.store.quarantined").inc()
        except OSError:
            pass

    def quarantined(self) -> list[str]:
        """Filenames currently sitting in ``quarantine/``, sorted."""
        try:
            return sorted(os.listdir(self._quarantine_root()))
        except OSError:
            return []

    def entries(self, digest: str) -> list[tuple[tuple, float]]:
        """The job's merged measurements, first-writer-wins, as pairs.

        Deterministic for a given segment set: segments merge in sorted
        filename order, and within a segment in recorded order."""
        index = self.load(digest)
        return [] if index is None else list(index.snapshot().items())

    def load(self, digest: str) -> ProfileIndex | None:
        """Merge every live, verified segment of one job into an index.

        Returns None when the job has no (readable, schema-matching)
        segments at all -- "never seen" and "empty" are different
        answers to a warm-start probe.  Corrupt segments are quarantined
        on the way through; the merge proceeds over the survivors."""
        job_dir = self._job_dir(digest)
        names = self._segment_names(job_dir)
        index = ProfileIndex()
        seen_any = False
        for name in names:
            doc = self._read_segment(os.path.join(job_dir, name))
            if doc is None:
                continue
            seen_any = True
            index.merge(
                (untuple(entry["key"]), entry["value"])
                for entry in doc["entries"]
            )
        return index if seen_any else None

    def available(self) -> bool:
        """Can the store currently accept a segment?  (``/readyz``)"""
        return (
            os.path.isdir(self._index_root())
            and os.access(self._index_root(), os.W_OK)
        )

    def jobs(self) -> list[str]:
        """Digests with at least one segment directory, sorted."""
        try:
            names = os.listdir(self._index_root())
        except OSError:
            return []
        return sorted(n for n in names if not n.startswith("."))

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        jobs = self.jobs()
        segments = sum(
            len(self._segment_names(self._job_dir(d))) for d in jobs
        )
        return {
            "root": self.root,
            "schema": self.schema,
            "jobs": len(jobs),
            "segments": segments,
            "models": len(self.models()),
            "evicted_models": self.evicted_models,
            "evicted_segments": self.evicted_segments,
            "corrupt_segments": self.corrupt_segments,
            "quarantined_segments": self.quarantined_segments,
            "quarantine_dir_entries": len(self.quarantined()),
            "available": self.available(),
        }

    def observe_into(self, registry) -> None:
        stats = self.stats()
        for name in ("jobs", "segments", "evicted_segments",
                     "corrupt_segments", "quarantined_segments"):
            registry.gauge(f"store.{name}").set(stats[name])


def _normalize_body(body: dict):
    """Round-trip a body through JSON so the checksum sees exactly what a
    reader will reconstruct (tuples already listified by the caller;
    this canonicalizes e.g. ``-0.0`` and non-string dict keys)."""
    return json.loads(json.dumps(body))
