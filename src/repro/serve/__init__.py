"""Optimization-as-a-service: profile store, serve daemon, warm start.

See ``docs/serving.md``.  The pieces:

- :mod:`repro.serve.keys` -- job digests and the store schema version,
- :mod:`repro.serve.store` -- the persistent on-disk profile-index store
  (checksummed segments, corrupt ones quarantined),
- :mod:`repro.serve.journal` -- the durable write-ahead job journal,
- :mod:`repro.serve.jobs` -- job specs and the supervised bounded job
  queue (retries, deadlines, dead-lettering, crash recovery),
- :mod:`repro.serve.server` -- the stdlib HTTP daemon (``repro serve``),
- :mod:`repro.serve.client` -- the matching resilient client
  (``optimize --server``),
- :mod:`repro.serve.chaos` -- the daemon-level chaos harness
  (``repro chaos-serve``).
"""

from .client import (
    CircuitOpenError,
    ServeClient,
    ServeConnectionError,
    ServeError,
    ServeResponseError,
    ServeTransportError,
)
from .jobs import (
    IdempotencyConflictError,
    Job,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueClosedError,
    QueueFullError,
    run_job,
)
from .journal import JobJournal, JournalState
from .keys import job_digest, store_schema_version
from .server import AstraServer
from .store import ProfileStore

__all__ = [
    "AstraServer",
    "CircuitOpenError",
    "IdempotencyConflictError",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JobSpecError",
    "JournalState",
    "ProfileStore",
    "QueueClosedError",
    "QueueFullError",
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "ServeResponseError",
    "ServeTransportError",
    "job_digest",
    "run_job",
    "store_schema_version",
]
