"""Optimization-as-a-service: profile store, serve daemon, warm start.

See ``docs/serving.md``.  The pieces:

- :mod:`repro.serve.keys` -- job digests and the store schema version,
- :mod:`repro.serve.store` -- the persistent on-disk profile-index store,
- :mod:`repro.serve.jobs` -- job specs and the bounded job queue,
- :mod:`repro.serve.server` -- the stdlib HTTP daemon (``repro serve``),
- :mod:`repro.serve.client` -- the matching client
  (``optimize --server``).
"""

from .client import ServeClient, ServeError
from .jobs import (
    Job,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueClosedError,
    QueueFullError,
    run_job,
)
from .keys import job_digest, store_schema_version
from .server import AstraServer
from .store import ProfileStore

__all__ = [
    "AstraServer",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobSpecError",
    "ProfileStore",
    "QueueClosedError",
    "QueueFullError",
    "ServeClient",
    "ServeError",
    "job_digest",
    "run_job",
    "store_schema_version",
]
