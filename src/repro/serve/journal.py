"""Durable write-ahead job journal for the serve daemon.

The :class:`~repro.serve.store.ProfileStore` already makes *measurements*
survive a daemon crash; the journal does the same for *jobs*.  Every
state transition a job takes -- accepted, started (per attempt), done,
failed, dead-lettered -- is appended to ``journal/journal.jsonl`` under
the store root **before** the transition is acted on, so a SIGKILLed
daemon restarted on the same root can reconstruct exactly which jobs it
owed its clients:

* a job with a terminal record is **restored** -- its result (or error)
  is served from the journal without re-running anything;
* a job without one is **re-enqueued** -- it re-runs against the same
  store, warm-starting from whatever measurements earlier runs
  published, and (on the deterministic simulator) converges to the
  bit-identical winner an uninterrupted run would have produced.

Durability rules, in priority order:

* **append-only, one JSON document per line** -- there is no
  read-modify-write in the hot path, so a crash can only ever tear the
  *final* line.  Recovery tolerates a torn tail (and, defensively, any
  unparseable interior line) by skipping it and counting it in
  ``torn_records``; a torn ``submit`` simply means the client never got
  its 202 and will resubmit.
* **fsync before acknowledge** -- ``append`` flushes and fsyncs by
  default, so a record the client saw acknowledged survives power loss,
  not just process death.
* **idempotency keys** -- a ``submit`` record carries the
  client-supplied key (when given); recovery rebuilds the key->job map,
  so a client that resubmits after a crash gets the original job back
  instead of double-running it (and double-publishing its segments).

Recovery also **compacts**: the reconstructed state is rewritten as a
fresh journal (atomic tmp + ``os.replace``), one ``submit`` plus at most
one terminal record per job, bounding growth across restarts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

#: journal line-format version
JOURNAL_VERSION = 1

#: record types, in lifecycle order
RECORD_SUBMIT = "submit"
RECORD_START = "start"
RECORD_DONE = "done"
RECORD_FAIL = "fail"
RECORD_DEAD = "dead"

#: records that end a job's life
TERMINAL_RECORDS = (RECORD_DONE, RECORD_FAIL, RECORD_DEAD)

_RECORD_TYPES = (RECORD_SUBMIT, RECORD_START) + TERMINAL_RECORDS


@dataclass
class JournalEntry:
    """Reconstructed state of one journaled job."""

    job_id: str
    spec: dict
    key: str | None = None
    #: last record type seen (``submit``/``start``/terminal)
    record: str = RECORD_SUBMIT
    result: dict | None = None
    error: str | None = None
    #: number of ``start`` records (attempts begun before the crash)
    attempts: int = 0

    @property
    def terminal(self) -> bool:
        return self.record in TERMINAL_RECORDS


@dataclass
class JournalState:
    """Everything ``recover()`` learned from one journal file."""

    #: job_id -> entry, in first-submit order (dicts preserve insertion)
    jobs: dict = field(default_factory=dict)
    #: highest numeric suffix of any ``job-NNNNNN`` id seen
    max_seq: int = 0
    #: unparseable lines skipped (a torn tail is the expected case)
    torn_records: int = 0
    #: well-formed records that made no sense (unknown id, bad type)
    orphan_records: int = 0

    def incomplete(self) -> list:
        """Jobs the daemon still owes a result, in submit order."""
        return [e for e in self.jobs.values() if not e.terminal]

    def completed(self) -> list:
        """Jobs whose terminal state can be served from the journal."""
        return [e for e in self.jobs.values() if e.terminal]


class JobJournal:
    """Append-only JSONL journal of job state transitions."""

    def __init__(self, root: str, fsync: bool = True):
        self.root = os.path.abspath(root)
        self.fsync = fsync
        self._dir = os.path.join(self.root, "journal")
        self.path = os.path.join(self._dir, "journal.jsonl")
        self._lock = threading.Lock()
        os.makedirs(self._dir, exist_ok=True)
        #: filled in by the last ``recover()`` on this instance
        self.torn_records = 0
        self.orphan_records = 0

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (one JSON line)."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())

    def _record(self, record_type: str, job_id: str, **extra) -> None:
        doc = {"v": JOURNAL_VERSION, "t": record_type, "id": job_id,
               "ts": time.time()}
        doc.update(extra)
        self.append(doc)

    def submitted(self, job_id: str, spec: dict, key: str | None = None) -> None:
        """Journal acceptance -- must land before the client's 202."""
        self._record(RECORD_SUBMIT, job_id, spec=spec, key=key)

    def started(self, job_id: str, attempt: int) -> None:
        self._record(RECORD_START, job_id, attempt=attempt)

    def completed(self, job_id: str, result: dict) -> None:
        self._record(RECORD_DONE, job_id, result=result)

    def failed(self, job_id: str, error: str) -> None:
        self._record(RECORD_FAIL, job_id, error=error)

    def dead(self, job_id: str, error: str) -> None:
        self._record(RECORD_DEAD, job_id, error=error)

    # -- recovery ------------------------------------------------------------

    def recover(self) -> JournalState:
        """Replay the journal into a consistent :class:`JournalState`.

        Never raises on malformed input: torn/unparseable lines and
        records that reference unknown jobs are counted and skipped.
        Replay order is file order, so the *last* state transition wins
        -- a job that was started, failed, resubmitted-by-retry, and
        completed ends up ``done``."""
        state = JournalState()
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError:
            lines = []
        for line in lines:
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                state.torn_records += 1
                continue
            if not isinstance(doc, dict) or doc.get("t") not in _RECORD_TYPES:
                state.torn_records += 1
                continue
            job_id = doc.get("id")
            if not isinstance(job_id, str) or not job_id:
                state.torn_records += 1
                continue
            state.max_seq = max(state.max_seq, _seq_of(job_id))
            record_type = doc["t"]
            if record_type == RECORD_SUBMIT:
                spec = doc.get("spec")
                if not isinstance(spec, dict):
                    state.torn_records += 1
                    continue
                key = doc.get("key")
                if job_id not in state.jobs:
                    state.jobs[job_id] = JournalEntry(
                        job_id=job_id, spec=spec,
                        key=key if isinstance(key, str) else None,
                    )
                continue
            entry = state.jobs.get(job_id)
            if entry is None:
                # a transition for a job whose submit record we never
                # saw (compacted away wrongly, or torn): nothing we can
                # re-run without a spec, so count it and move on
                state.orphan_records += 1
                continue
            entry.record = record_type
            if record_type == RECORD_START:
                entry.attempts += 1
            elif record_type == RECORD_DONE:
                result = doc.get("result")
                entry.result = result if isinstance(result, dict) else {}
                entry.error = None
            else:  # fail / dead
                entry.error = str(doc.get("error") or "unknown error")
                entry.result = None
        self.torn_records = state.torn_records
        self.orphan_records = state.orphan_records
        return state

    def compact(self, state: JournalState) -> None:
        """Atomically rewrite the journal from a recovered state.

        Incomplete jobs keep only their ``submit`` record (their
        attempts restart from zero after recovery); terminal jobs keep
        ``submit`` plus their terminal record."""
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with self._lock:
            with open(tmp, "w") as fh:
                for entry in state.jobs.values():
                    fh.write(json.dumps({
                        "v": JOURNAL_VERSION, "t": RECORD_SUBMIT,
                        "id": entry.job_id, "spec": entry.spec,
                        "key": entry.key, "ts": time.time(),
                    }, sort_keys=True) + "\n")
                    if not entry.terminal:
                        continue
                    terminal = {"v": JOURNAL_VERSION, "t": entry.record,
                                "id": entry.job_id, "ts": time.time()}
                    if entry.record == RECORD_DONE:
                        terminal["result"] = entry.result or {}
                    else:
                        terminal["error"] = entry.error or "unknown error"
                    fh.write(json.dumps(terminal, sort_keys=True) + "\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "bytes": size,
            "torn_records": self.torn_records,
            "orphan_records": self.orphan_records,
        }


def _seq_of(job_id: str) -> int:
    """Numeric suffix of a ``job-NNNNNN`` id (0 for foreign ids)."""
    _, _, tail = job_id.rpartition("-")
    try:
        return int(tail)
    except ValueError:
        return 0
