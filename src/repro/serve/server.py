"""The ``repro serve`` daemon: optimization-as-a-service over HTTP.

Stdlib-only (``http.server.ThreadingHTTPServer``): the daemon owns one
:class:`~repro.serve.store.ProfileStore`, one durable
:class:`~repro.serve.journal.JobJournal` under the store root, and one
bounded, supervised :class:`~repro.serve.jobs.JobQueue`, and exposes a
small JSON API:

====================  =====================================================
``POST /jobs``        submit a job spec (optional ``key`` idempotency
                      field); 202 + job doc, 400 malformed, 409 key
                      conflict, 503 queue full or shutting down
``GET /jobs``         list all jobs (id, status)
``GET /jobs/<id>``    one job's status/result; 404 unknown
``GET /index/<sig>``  a stored profile index for a job digest; 404 never
                      seen
``PUT /index/<sig>``  publish measurement entries for a job digest
``GET /healthz``      liveness: 200 while the HTTP loop answers
``GET /readyz``       readiness: 200 accepting jobs, 503 draining or
                      store unavailable (body says why)
``GET /stats``        store + queue + journal + request counters
``POST /shutdown``    graceful stop: drain the queue, then exit
====================  =====================================================

On startup the daemon **recovers**: the journal is replayed, jobs that
finished before a crash are restored (their results served from the
journal), and jobs that did not are re-enqueued ahead of new traffic --
a SIGKILL loses no accepted work (see ``docs/serving.md``, "Failure
modes and recovery", and the ``repro chaos-serve`` harness that proves
it).

Every optimization a job performs lands in the store, so later jobs with
the same :func:`~repro.serve.keys.job_digest` warm-start from it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .jobs import (
    IdempotencyConflictError,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueClosedError,
    QueueFullError,
    run_job,
)
from .journal import JobJournal
from .store import ProfileStore


class AstraServer:
    """One serve daemon: HTTP frontend + job queue + journal + store."""

    def __init__(
        self,
        store: ProfileStore | str,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 16,
        job_workers: int = 1,
        metrics=None,
        runner=None,
        quiet: bool = True,
        journal: bool = True,
        max_attempts: int = 3,
        deadline_s: float | None = None,
    ):
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self.store = (
            ProfileStore(store, metrics=metrics) if isinstance(store, str)
            else store
        )
        self._runner = runner if runner is not None else (
            lambda spec: run_job(spec, store=self.store)
        )
        self.journal = (
            JobJournal(self.store.root) if journal else None
        )
        # JobQueue construction replays the journal: terminal jobs are
        # restored, incomplete jobs re-enqueued before any HTTP traffic
        self.queue = JobQueue(
            self._runner, capacity=queue_size, workers=job_workers,
            metrics=metrics, journal=self.journal,
            max_attempts=max_attempts, deadline_s=deadline_s,
        )
        self._quiet = quiet
        self._started_at = time.monotonic()
        self._shutdown_thread: threading.Thread | None = None
        self._serve_thread: threading.Thread | None = None
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binding)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or ^C)."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start(self) -> "AstraServer":
        """Serve on a background thread (the in-process test harness)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="serve-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, optionally finish queued jobs, stop HTTP."""
        self.queue.close(drain=drain)
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)

    def _async_shutdown(self) -> threading.Thread | None:
        """Shutdown triggered over HTTP: the response must go out before
        the server stops, and ``httpd.shutdown()`` deadlocks if called
        from a handler thread, so the actual stop runs on a fresh thread.
        The thread is registered (visible on ``_shutdown_thread``) before
        the caller responds and started only afterwards.  Returns None on
        a repeated shutdown request."""
        if self._shutdown_thread is not None:
            return None
        self._shutdown_thread = threading.Thread(
            target=self.shutdown, name="serve-shutdown", daemon=True
        )
        return self._shutdown_thread

    def __enter__(self) -> "AstraServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=False)

    # -- health --------------------------------------------------------------

    def health(self) -> dict:
        """Liveness document: answering implies alive."""
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def readiness(self) -> tuple[bool, dict]:
        """Readiness verdict + document (the ``/readyz`` body).

        Not ready while draining for shutdown (accepted jobs may still
        be finishing -- ``queue.depth``/``jobs`` show the drain) or when
        the store cannot take a segment."""
        queue_stats = self.queue.stats()
        store_ok = self.store.available()
        reasons = []
        if queue_stats["closed"]:
            reasons.append("queue closed (draining for shutdown)")
        if not store_ok:
            reasons.append("store unavailable (not writable)")
        return not reasons, {
            "ready": not reasons,
            "reasons": reasons,
            "queue": {
                "closed": queue_stats["closed"],
                "depth": queue_stats["depth"],
                "jobs": queue_stats["jobs"],
            },
            "store": {"available": store_ok},
        }

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        self.store.observe_into(self.metrics)
        doc = {
            "store": self.store.stats(),
            "queue": self.queue.stats(),
            "metrics": self.metrics.snapshot(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }
        if self.journal is not None:
            doc["journal"] = self.journal.stats()
        return doc


def _make_handler(server: AstraServer):
    """Bind a request-handler class to one AstraServer instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing -------------------------------------------------------

        def log_message(self, fmt, *args):  # noqa: D102 - http.server hook
            if not server._quiet:
                super().log_message(fmt, *args)

        def _respond(self, status: int, doc: dict) -> None:
            body = json.dumps(doc).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            server.metrics.counter(f"serve.responses.{status}").inc()

        def _error(self, status: int, message: str) -> None:
            self._respond(status, {"error": message})

        def _read_json(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ValueError("missing request body")
            raw = self.rfile.read(length)
            return json.loads(raw.decode("utf-8"))

        # -- routes ---------------------------------------------------------

        def do_POST(self):  # noqa: N802 - http.server naming
            server.metrics.counter("serve.requests.post").inc()
            if self.path == "/jobs":
                return self._post_jobs()
            if self.path == "/shutdown":
                thread = server._async_shutdown()
                self._respond(200, {"status": "draining"})
                if thread is not None:
                    thread.start()
                return
            self._error(404, f"no such route: POST {self.path}")

        def do_GET(self):  # noqa: N802
            server.metrics.counter("serve.requests.get").inc()
            if self.path == "/jobs":
                return self._respond(200, {
                    "jobs": [
                        {"id": j.job_id, "status": j.status}
                        for j in server.queue.jobs()
                    ],
                })
            if self.path.startswith("/jobs/"):
                return self._get_job(self.path[len("/jobs/"):])
            if self.path.startswith("/index/"):
                return self._get_index(self.path[len("/index/"):])
            if self.path == "/healthz":
                return self._respond(200, server.health())
            if self.path == "/readyz":
                ready, doc = server.readiness()
                return self._respond(200 if ready else 503, doc)
            if self.path == "/stats":
                return self._respond(200, server.stats())
            self._error(404, f"no such route: GET {self.path}")

        def do_PUT(self):  # noqa: N802
            server.metrics.counter("serve.requests.put").inc()
            if self.path.startswith("/index/"):
                return self._put_index(self.path[len("/index/"):])
            self._error(404, f"no such route: PUT {self.path}")

        # -- jobs -----------------------------------------------------------

        def _post_jobs(self) -> None:
            try:
                doc = self._read_json()
            except (ValueError, json.JSONDecodeError) as exc:
                return self._error(400, f"bad request body: {exc}")
            key = None
            if isinstance(doc, dict):
                key = doc.pop("key", None)
                if key is not None and (
                    not isinstance(key, str) or not key
                ):
                    return self._error(
                        400, "idempotency 'key' must be a non-empty string"
                    )
            try:
                spec = JobSpec.from_dict(doc)
            except (JobSpecError, TypeError) as exc:
                return self._error(400, str(exc))
            try:
                job = server.queue.submit(spec, key=key)
            except IdempotencyConflictError as exc:
                return self._error(409, str(exc))
            except (QueueFullError, QueueClosedError) as exc:
                return self._error(503, str(exc))
            self._respond(202, job.to_dict())

        def _get_job(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                return self._error(404, f"unknown job {job_id!r}")
            self._respond(200, job.to_dict())

        # -- index ----------------------------------------------------------

        def _get_index(self, digest: str) -> None:
            try:
                index = server.store.load(digest)
            except ValueError as exc:
                return self._error(400, str(exc))
            if index is None:
                return self._error(404, f"no index for job {digest!r}")
            self._respond(200, {
                "digest": digest,
                "schema": server.store.schema,
                "entries": [
                    {"key": list(key), "value": value}
                    for key, value in sorted(
                        index.snapshot().items(), key=lambda kv: repr(kv[0])
                    )
                ],
            })

        def _put_index(self, digest: str) -> None:
            try:
                doc = self._read_json()
            except (ValueError, json.JSONDecodeError) as exc:
                return self._error(400, f"bad request body: {exc}")
            entries = doc.get("entries") if isinstance(doc, dict) else None
            if not isinstance(entries, list):
                return self._error(400, "body must be {'entries': [...]}")
            try:
                pairs = [
                    (tuple(_untuple(e["key"])), e["value"]) for e in entries
                ]
            except (KeyError, TypeError) as exc:
                return self._error(
                    400, f"entries must be [{{'key','value'}}]: {exc}"
                )
            try:
                info = server.store.put(digest, pairs)
            except ValueError as exc:
                return self._error(400, str(exc))
            self._respond(200, {
                "digest": digest,
                "accepted": len(pairs),
                "segment": (
                    os.path.basename(info.path) if info is not None else None
                ),
            })

    return Handler


def _untuple(part):
    from ..core.profile_index import untuple

    return untuple(part)
