"""Job specs, the supervised bounded job queue, and the job runner.

The serve daemon accepts optimization jobs over HTTP and executes them
on a small fleet of worker threads.  The queue is deliberately
*bounded*: a daemon that buffers unbounded work lies to its clients
about capacity -- a full queue answers 503 and the client retries, the
same first-writer-wins backpressure philosophy the store applies to
measurements.

Each job runs a normal :class:`~repro.core.session.AstraSession` wired
to the daemon's shared :class:`~repro.serve.store.ProfileStore`, so
jobs warm-start from -- and publish back to -- the fleet-wide knowledge
base automatically.  A job spec may request ``workers`` measurement
processes; the session then stands up the same
:mod:`repro.parallel.pool` engine the CLI's ``--workers`` uses.

Fault tolerance (see ``docs/serving.md`` "Failure modes and recovery"):

* every state transition is journaled through a
  :class:`~repro.serve.journal.JobJournal` *before* it is acted on, so
  a killed daemon recovers its queue on restart;
* each job attempt is **supervised**: a per-job deadline abandons a
  wedged attempt (:class:`~repro.faults.JobTimeoutError`), transient
  :class:`~repro.faults.FaultError`\\ s are retried with jittered
  exponential backoff, and after ``max_attempts`` the job is
  **dead-lettered** (status ``dead``) -- one poisoned job can never
  wedge a worker thread;
* client-supplied idempotency keys dedupe resubmissions, across
  restarts included, so a nervous client cannot double-run (and
  double-publish) a job.
"""

from __future__ import annotations

import importlib
import queue
import random
import threading
import time
from dataclasses import dataclass, field

from ..faults.events import FaultError, JobTimeoutError

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
#: dead-lettered: still failing transiently after ``max_attempts``
STATUS_DEAD = "dead"

_TERMINAL = (STATUS_DONE, STATUS_FAILED, STATUS_DEAD)

_FEATURES = ("F", "FK", "FKS", "all")


class JobSpecError(ValueError):
    """A submitted job document is malformed (HTTP 400)."""


class IdempotencyConflictError(ValueError):
    """An idempotency key was reused with a different spec (HTTP 409)."""


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity (HTTP 503)."""


class QueueClosedError(RuntimeError):
    """The queue is draining for shutdown and accepts no new jobs (503)."""


def build_model(name: str, batch: int, seq_len: int):
    """Build one zoo model at a requested shape (shared with the CLI)."""
    module = importlib.import_module(f"repro.models.{name}")
    config = module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=seq_len)
    from ..models import MODEL_BUILDERS

    return MODEL_BUILDERS[name](config)


@dataclass(frozen=True)
class JobSpec:
    """One optimization request, as submitted over ``POST /jobs``."""

    model: str
    batch: int = 16
    seq_len: int = 5
    device: str = "P100"
    features: str = "all"
    seed: int = 0
    budget: int = 3000
    workers: int | None = None

    @classmethod
    def from_dict(cls, doc) -> "JobSpec":
        from ..gpu import DEVICES
        from ..models import MODEL_BUILDERS

        if not isinstance(doc, dict):
            raise JobSpecError("job spec must be a JSON object")
        unknown = set(doc) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise JobSpecError(f"unknown job fields: {sorted(unknown)}")
        if "model" not in doc:
            raise JobSpecError("job spec requires a 'model'")
        spec = cls(**doc)
        if spec.model not in MODEL_BUILDERS:
            raise JobSpecError(
                f"unknown model {spec.model!r}; have {sorted(MODEL_BUILDERS)}"
            )
        if spec.device not in DEVICES:
            raise JobSpecError(
                f"unknown device {spec.device!r}; have {sorted(DEVICES)}"
            )
        if spec.features not in _FEATURES:
            raise JobSpecError(
                f"unknown features {spec.features!r}; have {list(_FEATURES)}"
            )
        for name in ("batch", "seq_len", "budget"):
            value = getattr(spec, name)
            if not isinstance(value, int) or value < 1:
                raise JobSpecError(f"{name} must be a positive integer")
        if not isinstance(spec.seed, int) or spec.seed < 0:
            raise JobSpecError("seed must be a non-negative integer")
        if spec.workers is not None and (
            not isinstance(spec.workers, int) or spec.workers < 1
        ):
            raise JobSpecError("workers must be a positive integer or null")
        return spec

    def to_dict(self) -> dict:
        return {
            "model": self.model, "batch": self.batch,
            "seq_len": self.seq_len, "device": self.device,
            "features": self.features, "seed": self.seed,
            "budget": self.budget, "workers": self.workers,
        }


@dataclass
class Job:
    """Queue-side state of one submitted job."""

    job_id: str
    spec: JobSpec
    status: str = STATUS_QUEUED
    result: dict | None = None
    error: str | None = None
    worker: str | None = None
    #: client-supplied idempotency key, when given
    key: str | None = None
    #: attempts begun (1 on the happy path; more after retries)
    attempts: int = 0
    #: True when this job was reconstructed from the journal at startup
    recovered: bool = False
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.job_id,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "result": self.result,
            "error": self.error,
            "key": self.key,
            "attempts": self.attempts,
            "recovered": self.recovered,
        }


def run_job(spec: JobSpec, store=None) -> dict:
    """Execute one job to completion; the daemon's worker-thread body.

    Clean sessions only: the serve surface exposes no fault injection,
    so every job is a deterministic base-clock run whose measurements
    are safe to share through the store.
    """
    from ..core.session import AstraSession
    from ..gpu import DEVICES

    model = build_model(spec.model, spec.batch, spec.seq_len)
    session = AstraSession(
        model, device=DEVICES[spec.device], features=spec.features,
        seed=spec.seed, store=store, workers=spec.workers,
    )
    try:
        report = session.optimize(max_minibatches=spec.budget)
        astra = report.astra
        return {
            "best_time_us": astra.best_time_us,
            "native_time_us": report.native_time_us,
            "speedup_over_native": report.speedup_over_native,
            "configs_explored": report.configs_explored,
            "profile_entries": astra.profile_entries,
            "best_strategy": astra.best_strategy.label,
            "assignment": {k: repr(v) for k, v in astra.assignment.items()},
            "degraded": astra.degraded,
            "warm": dict(astra.warm),
            "job_digest": session.job_digest(),
        }
    finally:
        session.close()


class JobQueue:
    """Bounded FIFO of supervised jobs executed by daemon worker threads.

    ``runner`` is a callable ``(spec) -> result dict``; worker threads
    pull job ids in submission order, so with one worker the daemon is
    strictly serial (deterministic store growth), and with N workers
    concurrent jobs share warm measurements through the store's
    first-writer-wins merge.

    With a ``journal``, the queue is durable: construction replays the
    journal (terminal jobs are restored, incomplete jobs re-enqueued
    ahead of any new submission) and every later transition is journaled
    before it takes effect.
    """

    def __init__(self, runner, capacity: int = 16, workers: int = 1,
                 metrics=None, journal=None, max_attempts: int = 3,
                 deadline_s: float | None = None, backoff_s: float = 0.05):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._runner = runner
        self.capacity = capacity
        self.max_attempts = max_attempts
        self.deadline_s = deadline_s
        self.backoff_s = backoff_s
        # unbounded internally -- capacity is enforced on the count of
        # *jobs* awaiting a worker, so shutdown sentinels and recovered
        # jobs are never blocked by backpressure
        self._queue: queue.Queue = queue.Queue()
        self._pending = 0
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._seq = 0
        self._closed = False
        self._metrics = metrics
        self._journal = journal
        if journal is not None:
            self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild queue state from the journal (before workers start).

        Terminal jobs are restored in place -- their results/errors are
        served without re-running anything.  Incomplete jobs (accepted
        or started, never finished) are re-enqueued in submit order;
        they may exceed ``capacity``, in which case new submissions see
        503 until the backlog drains -- recovery never drops owed work."""
        state = self._journal.recover()
        self._seq = state.max_seq
        restored = requeued = 0
        for entry in state.jobs.values():
            try:
                spec = JobSpec.from_dict(entry.spec)
            except (JobSpecError, TypeError) as exc:
                # the model/device zoo changed under a journaled job:
                # fail it rather than crash recovery or silently drop it
                job = Job(job_id=entry.job_id,
                          spec=JobSpec(model=str(entry.spec.get("model"))),
                          status=STATUS_FAILED,
                          error=f"unrecoverable spec: {exc}",
                          key=entry.key, recovered=True)
                self._jobs[entry.job_id] = job
                if entry.key:
                    self._by_key[entry.key] = entry.job_id
                continue
            job = Job(job_id=entry.job_id, spec=spec, key=entry.key,
                      attempts=entry.attempts, recovered=True)
            self._jobs[entry.job_id] = job
            if entry.key:
                self._by_key[entry.key] = entry.job_id
            if entry.terminal:
                job.status = {
                    "done": STATUS_DONE, "fail": STATUS_FAILED,
                    "dead": STATUS_DEAD,
                }[entry.record]
                job.result = entry.result
                job.error = entry.error
                restored += 1
            else:
                job.status = STATUS_QUEUED
                job.attempts = 0  # a fresh supervisor gets a fresh budget
                self._pending += 1
                self._queue.put(job.job_id)
                requeued += 1
        self._journal.compact(state)
        self._count("serve.recovery.restored", restored)
        self._count("serve.recovery.requeued", requeued)
        self._count("serve.recovery.torn_records", state.torn_records)
        self._count("serve.recovery.orphan_records", state.orphan_records)

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec, key: str | None = None) -> Job:
        with self._lock:
            if self._closed:
                raise QueueClosedError("job queue is shutting down")
            if key is not None:
                existing_id = self._by_key.get(key)
                if existing_id is not None:
                    existing = self._jobs[existing_id]
                    if existing.spec != spec:
                        raise IdempotencyConflictError(
                            f"idempotency key {key!r} already used by "
                            f"{existing_id} with a different spec"
                        )
                    self._count("serve.jobs.deduped")
                    return existing
            if self._pending >= self.capacity:
                raise QueueFullError(
                    f"job queue full ({self.capacity} pending)"
                )
            self._seq += 1
            job = Job(job_id=f"job-{self._seq:06d}", spec=spec, key=key)
            if self._journal is not None:
                # WAL discipline: the acceptance is durable before the
                # client ever sees the 202
                self._journal.submitted(job.job_id, spec.to_dict(), key=key)
            self._jobs[job.job_id] = job
            if key is not None:
                self._by_key[key] = job.job_id
            self._pending += 1
            self._queue.put(job.job_id)
            self._count("serve.jobs.submitted")
            self._gauge_depth()
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            try:
                if job_id is None:  # shutdown sentinel from close()
                    return
                job = self._jobs[job_id]
                with self._lock:
                    self._pending -= 1
                    job.status = STATUS_RUNNING
                    job.worker = threading.current_thread().name
                    self._gauge_depth()
                self._supervise(job)
            finally:
                self._queue.task_done()

    def _supervise(self, job: Job) -> None:
        """Drive one job to a terminal state, whatever it takes.

        Transient faults (the :mod:`repro.faults` taxonomy, deadline
        misses included) retry with jittered exponential backoff up to
        ``max_attempts``, then dead-letter.  Non-transient faults and
        ordinary exceptions fail immediately.  Nothing escapes: a
        poisoned job ends in ``failed`` or ``dead``, never in a wedged
        or dead worker thread."""
        while True:
            with self._lock:
                job.attempts += 1
                attempt = job.attempts
            if self._journal is not None:
                self._journal.started(job.job_id, attempt)
            try:
                result = self._attempt(job)
            except FaultError as exc:
                error = f"{type(exc).__name__}: {exc}"
                if exc.transient and attempt < self.max_attempts:
                    delay = self._backoff(job.job_id, attempt)
                    self._count("serve.retry.attempts")
                    self._observe("serve.retry.backoff_s", delay)
                    time.sleep(delay)
                    continue
                if exc.transient:
                    self._finish(job, STATUS_DEAD,
                                 error=f"dead-lettered after {attempt} "
                                       f"attempts: {error}")
                    self._count("serve.jobs.dead")
                else:
                    self._finish(job, STATUS_FAILED, error=error)
                    self._count("serve.jobs.failed")
                return
            except Exception as exc:  # job failure must not kill the worker
                self._finish(job, STATUS_FAILED,
                             error=f"{type(exc).__name__}: {exc}")
                self._count("serve.jobs.failed")
                return
            else:
                self._finish(job, STATUS_DONE, result=result)
                self._count("serve.jobs.completed")
                return

    def _attempt(self, job: Job):
        """Run one attempt, abandoning it if it outlives the deadline.

        The runner executes on a disposable daemon thread when a
        deadline is set; a wedged attempt is left behind (it dies with
        the process) and surfaced as a transient
        :class:`~repro.faults.JobTimeoutError` so the supervisor can
        retry or dead-letter."""
        if self.deadline_s is None:
            return self._runner(job.spec)
        box: dict = {}
        finished = threading.Event()

        def body():
            try:
                box["result"] = self._runner(job.spec)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc
            finally:
                finished.set()

        thread = threading.Thread(
            target=body, name=f"{job.job_id}-attempt-{job.attempts}",
            daemon=True,
        )
        thread.start()
        if not finished.wait(timeout=self.deadline_s):
            raise JobTimeoutError(job.job_id, self.deadline_s)
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def _backoff(self, job_id: str, attempt: int) -> float:
        """Jittered exponential backoff, deterministic per (job, attempt).

        Deterministic jitter keeps retry schedules reproducible in tests
        and chaos runs while still decorrelating real concurrent
        retries (different job ids => different jitter)."""
        jitter = random.Random(f"{job_id}:{attempt}").random()
        return self.backoff_s * (2 ** (attempt - 1)) * (1.0 + 0.5 * jitter)

    def _finish(self, job: Job, status: str, result: dict | None = None,
                error: str | None = None) -> None:
        """Journal, then apply, one terminal transition."""
        if self._journal is not None:
            if status == STATUS_DONE:
                self._journal.completed(job.job_id, result or {})
            elif status == STATUS_DEAD:
                self._journal.dead(job.job_id, error or "")
            else:
                self._journal.failed(job.job_id, error or "")
        with self._done:
            job.status = status
            job.result = result
            job.error = error
            self._done.notify_all()

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal.

        Purely condition-based -- the worker's ``_finish`` notifies, so
        drain wakes the moment the last job completes (no polling
        sleeps; a regression test pins the promptness).  Returns False
        on timeout.  New submissions are still accepted while draining
        unless :meth:`close` was called first."""
        with self._done:
            return self._done.wait_for(
                lambda: all(
                    j.status in _TERMINAL for j in self._jobs.values()
                ),
                timeout=timeout,
            )

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; optionally finish the ones already queued.

        ``drain=True`` (the graceful path) waits for every accepted job
        to reach a terminal state before the worker threads exit --
        a client that got a 202 gets a result.  Workers are woken by
        sentinels queued *behind* the remaining jobs, so they exit as
        soon as the backlog is gone instead of polling for closure."""
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            for _ in self._threads:
                self._queue.put(None)
        if drain:
            self.drain(timeout=timeout)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- observability -------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self._metrics is not None and n:
            self._metrics.counter(name).inc(n)

    def _observe(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.histogram(name).observe(value)

    def _gauge_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("serve.queue.depth").set(self._pending)

    def stats(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            recovered = 0
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
                recovered += 1 if job.recovered else 0
            return {
                "capacity": self.capacity,
                "depth": self._pending,
                "workers": len(self._threads),
                "jobs": by_status,
                "recovered_jobs": recovered,
                "max_attempts": self.max_attempts,
                "deadline_s": self.deadline_s,
                "closed": self._closed,
            }
