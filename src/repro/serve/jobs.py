"""Job specs, the bounded job queue, and the job runner.

The serve daemon accepts optimization jobs over HTTP and executes them
on a small fleet of worker threads.  The queue is deliberately
*bounded*: a daemon that buffers unbounded work lies to its clients
about capacity -- a full queue answers 503 and the client retries, the
same first-writer-wins backpressure philosophy the store applies to
measurements.

Each job runs a normal :class:`~repro.core.session.AstraSession` wired
to the daemon's shared :class:`~repro.serve.store.ProfileStore`, so
jobs warm-start from -- and publish back to -- the fleet-wide knowledge
base automatically.  A job spec may request ``workers`` measurement
processes; the session then stands up the same
:mod:`repro.parallel.pool` engine the CLI's ``--workers`` uses.
"""

from __future__ import annotations

import importlib
import queue
import threading
from dataclasses import dataclass, field

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

_TERMINAL = (STATUS_DONE, STATUS_FAILED)

_FEATURES = ("F", "FK", "FKS", "all")


class JobSpecError(ValueError):
    """A submitted job document is malformed (HTTP 400)."""


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity (HTTP 503)."""


class QueueClosedError(RuntimeError):
    """The queue is draining for shutdown and accepts no new jobs (503)."""


def build_model(name: str, batch: int, seq_len: int):
    """Build one zoo model at a requested shape (shared with the CLI)."""
    module = importlib.import_module(f"repro.models.{name}")
    config = module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=seq_len)
    from ..models import MODEL_BUILDERS

    return MODEL_BUILDERS[name](config)


@dataclass(frozen=True)
class JobSpec:
    """One optimization request, as submitted over ``POST /jobs``."""

    model: str
    batch: int = 16
    seq_len: int = 5
    device: str = "P100"
    features: str = "all"
    seed: int = 0
    budget: int = 3000
    workers: int | None = None

    @classmethod
    def from_dict(cls, doc) -> "JobSpec":
        from ..gpu import DEVICES
        from ..models import MODEL_BUILDERS

        if not isinstance(doc, dict):
            raise JobSpecError("job spec must be a JSON object")
        unknown = set(doc) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise JobSpecError(f"unknown job fields: {sorted(unknown)}")
        if "model" not in doc:
            raise JobSpecError("job spec requires a 'model'")
        spec = cls(**doc)
        if spec.model not in MODEL_BUILDERS:
            raise JobSpecError(
                f"unknown model {spec.model!r}; have {sorted(MODEL_BUILDERS)}"
            )
        if spec.device not in DEVICES:
            raise JobSpecError(
                f"unknown device {spec.device!r}; have {sorted(DEVICES)}"
            )
        if spec.features not in _FEATURES:
            raise JobSpecError(
                f"unknown features {spec.features!r}; have {list(_FEATURES)}"
            )
        for name in ("batch", "seq_len", "budget"):
            value = getattr(spec, name)
            if not isinstance(value, int) or value < 1:
                raise JobSpecError(f"{name} must be a positive integer")
        if not isinstance(spec.seed, int) or spec.seed < 0:
            raise JobSpecError("seed must be a non-negative integer")
        if spec.workers is not None and (
            not isinstance(spec.workers, int) or spec.workers < 1
        ):
            raise JobSpecError("workers must be a positive integer or null")
        return spec

    def to_dict(self) -> dict:
        return {
            "model": self.model, "batch": self.batch,
            "seq_len": self.seq_len, "device": self.device,
            "features": self.features, "seed": self.seed,
            "budget": self.budget, "workers": self.workers,
        }


@dataclass
class Job:
    """Queue-side state of one submitted job."""

    job_id: str
    spec: JobSpec
    status: str = STATUS_QUEUED
    result: dict | None = None
    error: str | None = None
    worker: str | None = None
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.job_id,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "result": self.result,
            "error": self.error,
        }


def run_job(spec: JobSpec, store=None) -> dict:
    """Execute one job to completion; the daemon's worker-thread body.

    Clean sessions only: the serve surface exposes no fault injection,
    so every job is a deterministic base-clock run whose measurements
    are safe to share through the store.
    """
    from ..core.session import AstraSession
    from ..gpu import DEVICES

    model = build_model(spec.model, spec.batch, spec.seq_len)
    session = AstraSession(
        model, device=DEVICES[spec.device], features=spec.features,
        seed=spec.seed, store=store, workers=spec.workers,
    )
    try:
        report = session.optimize(max_minibatches=spec.budget)
        astra = report.astra
        return {
            "best_time_us": astra.best_time_us,
            "native_time_us": report.native_time_us,
            "speedup_over_native": report.speedup_over_native,
            "configs_explored": report.configs_explored,
            "profile_entries": astra.profile_entries,
            "best_strategy": astra.best_strategy.label,
            "assignment": {k: repr(v) for k, v in astra.assignment.items()},
            "degraded": astra.degraded,
            "warm": dict(astra.warm),
            "job_digest": session.job_digest(),
        }
    finally:
        session.close()


class JobQueue:
    """Bounded FIFO of jobs executed by daemon worker threads.

    ``runner`` is a callable ``(spec) -> result dict``; worker threads
    pull job ids in submission order, so with one worker the daemon is
    strictly serial (deterministic store growth), and with N workers
    concurrent jobs share warm measurements through the store's
    first-writer-wins merge.
    """

    def __init__(self, runner, capacity: int = 16, workers: int = 1,
                 metrics=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._runner = runner
        self.capacity = capacity
        self._queue: queue.Queue[str] = queue.Queue(maxsize=capacity)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._seq = 0
        self._closed = False
        self._metrics = metrics
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        with self._lock:
            if self._closed:
                raise QueueClosedError("job queue is shutting down")
            self._seq += 1
            job = Job(job_id=f"job-{self._seq:06d}", spec=spec)
            try:
                self._queue.put_nowait(job.job_id)
            except queue.Full:
                raise QueueFullError(
                    f"job queue full ({self.capacity} pending)"
                ) from None
            self._jobs[job.job_id] = job
            self._count("serve.jobs.submitted")
            self._gauge_depth()
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    return
                continue
            job = self._jobs[job_id]
            with self._lock:
                job.status = STATUS_RUNNING
                job.worker = threading.current_thread().name
                self._gauge_depth()
            try:
                result = self._runner(job.spec)
            except Exception as exc:  # job failure must not kill the worker
                with self._done:
                    job.status = STATUS_FAILED
                    job.error = f"{type(exc).__name__}: {exc}"
                    self._count("serve.jobs.failed")
                    self._done.notify_all()
            else:
                with self._done:
                    job.status = STATUS_DONE
                    job.result = result
                    self._count("serve.jobs.completed")
                    self._done.notify_all()
            finally:
                self._queue.task_done()

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal.

        Returns False on timeout.  New submissions are still accepted
        while draining unless :meth:`close` was called first."""
        with self._done:
            return self._done.wait_for(
                lambda: all(
                    j.status in _TERMINAL for j in self._jobs.values()
                ),
                timeout=timeout,
            )

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; optionally finish the ones already queued.

        ``drain=True`` (the graceful path) waits for every accepted job
        to reach a terminal state before the worker threads exit --
        a client that got a 202 gets a result."""
        with self._lock:
            self._closed = True
        if drain:
            self.drain(timeout=timeout)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # -- observability -------------------------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _gauge_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("serve.queue.depth").set(self._queue.qsize())

    def stats(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "capacity": self.capacity,
                "depth": self._queue.qsize(),
                "workers": len(self._threads),
                "jobs": by_status,
                "closed": self._closed,
            }
