"""Identity keys for the optimization-as-a-service store.

Two kinds of identity gate what measurements may be shared:

* **job digest** -- *which measurements belong to which job*.  A job is
  keyed by what determines its profile-index contents: the structural
  signature of its traced graph (via
  :func:`repro.perf.signature.plan_signature` over the canonical native
  plan -- exactly the key AutoTVM-style measurement corpora transfer
  on), the device model, the feature set, the base exploration context,
  and the measurement policy.  Two jobs with equal digests explore the
  same key space and measure the same values on the deterministic
  simulator, so one job's index warm-starts the other.  The *seed* is
  deliberately excluded: base-clock measurements are seed-independent,
  and cross-tenant reuse (the "millions of users" scenario) only works
  if tenants with different seeds share a key.

* **schema version** -- *whether stored measurements are still
  meaningful at all*.  Profile values are produced by the simulator and
  priced by the cost model; if either changes, every persisted number
  is stale.  The schema version is a digest of the source text of the
  modules that define measurement semantics, so bumping any of them
  automatically invalidates (evicts) the store -- no manual version
  constant to forget.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json

#: layout version of the job-digest document itself
JOB_KEY_VERSION = 1

#: the modules whose source defines what a stored microsecond *means*:
#: the simulator timeline, the executor's measurement mediation, the
#: kernel cost model, the GEMM library physics, and the measurement
#: policy semantics (robust-min, quarantine sentinel)
SCHEMA_MODULES = (
    "repro.runtime.timeline",
    "repro.runtime.executor",
    "repro.gpu.cost_model",
    "repro.gpu.libraries",
    "repro.gpu.kernels",
    "repro.core.measurement",
)

_SCHEMA_CACHE: str | None = None


def store_schema_version() -> str:
    """Digest of the simulator / cost-model identity (hex, 16 chars).

    Computed once per process from the source text of
    :data:`SCHEMA_MODULES`; any edit to those modules changes the
    version and invalidates persisted profile indexes.
    """
    global _SCHEMA_CACHE
    if _SCHEMA_CACHE is None:
        digest = hashlib.sha256()
        for name in SCHEMA_MODULES:
            module = importlib.import_module(name)
            digest.update(name.encode("utf-8"))
            digest.update(inspect.getsource(module).encode("utf-8"))
        _SCHEMA_CACHE = digest.hexdigest()[:16]
    return _SCHEMA_CACHE


def job_digest(graph, device, features, context=(), policy=None) -> str:
    """Stable identity of one optimization job's measurement space.

    Equal digests => equal profile-index key space *and* equal measured
    values on the deterministic simulator, so indexes may be shared.
    The graph is signed through its canonical native plan: the plan
    signature covers every node, shape, and kernel parameter the
    dispatcher would see, which is exactly what the profile keys are
    derived from.
    """
    from ..baselines.native import native_plan
    from ..perf.signature import plan_signature

    doc = {
        "version": JOB_KEY_VERSION,
        "plan": plan_signature(native_plan(graph)).digest,
        "device": device.name,
        "features": repr(features),
        "context": repr(tuple(context)),
        "policy": repr(policy) if policy is not None else None,
    }
    text = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
