"""Thin stdlib client for the ``repro serve`` daemon.

Used by :class:`~repro.core.session.AstraSession` when ``server=`` is a
URL (``optimize --server``), by the CLI, and by tests.  Transport errors
surface as ``OSError`` subclasses (``urllib.error.URLError`` is one), so
warm-start callers can degrade to a cold run; protocol-level failures
(4xx/5xx with a JSON error body) raise :class:`ServeError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServeError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """JSON-over-HTTP client bound to one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, doc: dict | None = None):
        body = json.dumps(doc).encode("utf-8") if doc is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # a status the daemon chose, not a transport failure
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                message = payload.get("error", exc.reason)
            except Exception:
                message = str(exc.reason)
            raise ServeError(exc.code, message) from None

    # -- jobs ----------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """POST a job spec; returns the accepted job doc (id, status)."""
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final job doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["status"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']} after {timeout}s"
                )
            time.sleep(poll)

    def run(self, spec: dict, timeout: float = 300.0) -> dict:
        """Submit and wait; raises :class:`ServeError` if the job failed."""
        job = self.submit(spec)
        doc = self.wait(job["id"], timeout=timeout)
        if doc["status"] == "failed":
            raise ServeError(500, doc.get("error") or "job failed")
        return doc

    # -- index ---------------------------------------------------------------

    def get_index(self, digest: str) -> list | None:
        """Stored (key, value) pairs for a job digest; None if never seen."""
        from ..core.profile_index import untuple

        try:
            doc = self._request("GET", f"/index/{digest}")
        except ServeError as exc:
            if exc.status == 404:
                return None
            raise
        return [
            (tuple(untuple(entry["key"])), entry["value"])
            for entry in doc["entries"]
        ]

    def put_index(self, digest: str, entries) -> dict:
        """Publish measurement pairs for a job digest."""
        if hasattr(entries, "items"):
            entries = entries.items()
        return self._request("PUT", f"/index/{digest}", {
            "entries": [
                {"key": list(key), "value": value} for key, value in entries
            ],
        })

    # -- misc ----------------------------------------------------------------

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain its queue and exit."""
        return self._request("POST", "/shutdown")
