"""Resilient stdlib client for the ``repro serve`` daemon.

Used by :class:`~repro.core.session.AstraSession` when ``server=`` is a
URL (``optimize --server``), by the CLI, and by tests.  The error
surface is layered so callers can react to *why* a request failed:

* :class:`ServeError` -- the daemon answered with an error status
  (protocol-level; carries status, daemon message, method and URL);
* :class:`ServeTransportError` -- an ``OSError`` subclass (so existing
  degrade-to-cold ``except OSError`` paths keep working) carrying the
  failed method + URL, split into
  :class:`ServeConnectionError` (the daemon was never reached:
  connection refused, DNS failure, connect timeout) and
  :class:`ServeResponseError` (the connection died *mid-response*:
  reset, truncated body, read timeout) -- the distinction matters
  because a refused connection is safe to retry blindly, while a
  mid-response failure on a non-idempotent request may have side
  effects (the daemon dedupes via idempotency keys for exactly this
  case);
* :class:`CircuitOpenError` -- the client's circuit breaker is open and
  the request was not attempted at all.

Every request gets a bounded retry budget with exponential backoff on
transport failures.  After ``breaker_threshold`` *consecutive* transport
failures the breaker trips: requests fail fast (no network) for
``breaker_reset_s`` seconds, then a single half-open probe is allowed.
A tripped breaker produces exactly the documented degradation: warm
start sees an ``OSError``, counts ``warm.server_unreachable``, and runs
cold.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.error
import urllib.request


class ServeError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str,
                 method: str = "", url: str = ""):
        context = f" ({method} {url})" if method or url else ""
        super().__init__(f"HTTP {status}{context}: {message}")
        self.status = status
        self.message = message
        self.method = method
        self.url = url


class ServeTransportError(OSError):
    """A request never produced a complete daemon response.

    Subclasses ``OSError`` so warm-start callers degrade to a cold run
    through the pre-existing ``except OSError`` path."""

    #: which phase failed: "connect" or "response"
    phase = "transport"

    def __init__(self, method: str, url: str, detail: str):
        super().__init__(f"{method} {url}: {detail}")
        self.method = method
        self.url = url
        self.detail = detail


class ServeConnectionError(ServeTransportError):
    """The daemon could not be reached at all (nothing was sent)."""

    phase = "connect"


class ServeResponseError(ServeTransportError):
    """The connection was established but died mid-request/response."""

    phase = "response"


class CircuitOpenError(ServeConnectionError):
    """The circuit breaker is open; the request was not attempted."""


#: connection-phase failures: the request never left this process
_CONNECT_ERRORS = (
    ConnectionRefusedError,
    socket.gaierror,
    socket.timeout,
    TimeoutError,
)


class ServeClient:
    """JSON-over-HTTP client bound to one daemon base URL.

    ``retries`` counts *additional* attempts after the first;
    ``backoff_s`` doubles per retry.  ``breaker_threshold`` consecutive
    transport failures open the circuit for ``breaker_reset_s`` seconds
    (0 or None disables the breaker).  ``sleep``/``clock`` are
    injectable for tests."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 breaker_threshold: int = 5, breaker_reset_s: float = 5.0,
                 sleep=time.sleep, clock=time.monotonic):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.breaker_threshold = breaker_threshold or 0
        self.breaker_reset_s = breaker_reset_s
        self._sleep = sleep
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None

    # -- circuit breaker -----------------------------------------------------

    @property
    def breaker_open(self) -> bool:
        """True while requests would fail fast (ignoring half-open)."""
        return self._opened_at is not None

    def _breaker_gate(self, method: str, url: str) -> None:
        if self._opened_at is None:
            return
        elapsed = self._clock() - self._opened_at
        if elapsed >= self.breaker_reset_s:
            # half-open: let exactly this request probe the daemon; a
            # failure re-trips immediately (failure count is preserved)
            self._opened_at = None
            return
        raise CircuitOpenError(
            method, url,
            f"circuit breaker open after {self._consecutive_failures} "
            f"consecutive transport failures "
            f"(retry in {self.breaker_reset_s - elapsed:.1f}s)",
        )

    def _breaker_record(self, ok: bool) -> None:
        if ok:
            self._consecutive_failures = 0
            self._opened_at = None
            return
        self._consecutive_failures += 1
        if (
            self.breaker_threshold
            and self._consecutive_failures >= self.breaker_threshold
        ):
            self._opened_at = self._clock()

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, doc: dict | None = None):
        """One logical request: breaker gate, bounded retries, backoff."""
        url = f"{self.base_url}{path}"
        last: ServeTransportError | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.backoff_s * (2 ** (attempt - 1)))
            self._breaker_gate(method, url)  # fail fast, not retried here
            try:
                result = self._once(method, url, doc)
            except ServeTransportError as exc:
                self._breaker_record(False)
                last = exc
                continue
            self._breaker_record(True)
            return result
        assert last is not None
        raise last

    def _once(self, method: str, url: str, doc: dict | None):
        body = json.dumps(doc).encode("utf-8") if doc is not None else None
        request = urllib.request.Request(
            url, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            # a status the daemon chose, not a transport failure
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                message = payload.get("error", exc.reason)
            except Exception:
                message = str(exc.reason)
            raise ServeError(exc.code, message, method=method, url=url) \
                from None
        except urllib.error.URLError as exc:
            raise _classify(method, url, exc.reason) from None
        except (OSError, http.client.HTTPException) as exc:
            raise _classify(method, url, exc) from None
        try:
            with response:
                raw = response.read()
            return json.loads(raw.decode("utf-8"))
        except (OSError, http.client.HTTPException, ValueError) as exc:
            # headers arrived but the body did not survive: mid-response
            raise ServeResponseError(
                method, url, f"{type(exc).__name__}: {exc}"
            ) from None

    # -- jobs ----------------------------------------------------------------

    def submit(self, spec: dict, key: str | None = None) -> dict:
        """POST a job spec; returns the accepted job doc (id, status).

        ``key`` is an idempotency key: resubmitting the same (key, spec)
        -- e.g. after a mid-response failure or a daemon restart --
        returns the original job instead of running a duplicate."""
        doc = dict(spec)
        if key is not None:
            doc["key"] = key
        return self._request("POST", "/jobs", doc)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final job doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["status"] in ("done", "failed", "dead"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']} after {timeout}s"
                )
            time.sleep(poll)

    def run(self, spec: dict, timeout: float = 300.0,
            key: str | None = None) -> dict:
        """Submit and wait; raises :class:`ServeError` if the job failed."""
        job = self.submit(spec, key=key)
        doc = self.wait(job["id"], timeout=timeout)
        if doc["status"] in ("failed", "dead"):
            raise ServeError(
                500, doc.get("error") or "job failed",
                method="POST", url=f"{self.base_url}/jobs",
            )
        return doc

    # -- index ---------------------------------------------------------------

    def get_index(self, digest: str) -> list | None:
        """Stored (key, value) pairs for a job digest; None if never seen."""
        from ..core.profile_index import untuple

        try:
            doc = self._request("GET", f"/index/{digest}")
        except ServeError as exc:
            if exc.status == 404:
                return None
            raise
        return [
            (tuple(untuple(entry["key"])), entry["value"])
            for entry in doc["entries"]
        ]

    def put_index(self, digest: str, entries) -> dict:
        """Publish measurement pairs for a job digest."""
        if hasattr(entries, "items"):
            entries = entries.items()
        return self._request("PUT", f"/index/{digest}", {
            "entries": [
                {"key": list(key), "value": value} for key, value in entries
            ],
        })

    # -- misc ----------------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness: the daemon's HTTP loop is answering."""
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness: raises :class:`ServeError` (503) when not ready."""
        return self._request("GET", "/readyz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain its queue and exit."""
        return self._request("POST", "/shutdown")


def _classify(method: str, url: str, reason) -> ServeTransportError:
    """Sort a transport failure into connect-phase vs mid-response.

    ``urllib`` wraps connect *and* some established-connection failures
    in ``URLError``; the wrapped reason tells them apart.  Anything that
    implies bytes were exchanged (reset, truncated read, protocol
    violation) is mid-response; refused/unresolvable/timed-out-connect
    is connection-phase; unknown ``OSError`` s default to connection
    (the safe-to-retry classification)."""
    detail = f"{type(reason).__name__}: {reason}"
    if isinstance(reason, (
        http.client.RemoteDisconnected,
        http.client.IncompleteRead,
        http.client.BadStatusLine,
        ConnectionResetError,
        BrokenPipeError,
    )):
        return ServeResponseError(method, url, detail)
    if isinstance(reason, _CONNECT_ERRORS):
        return ServeConnectionError(method, url, detail)
    if isinstance(reason, http.client.HTTPException):
        return ServeResponseError(method, url, detail)
    return ServeConnectionError(method, url, detail)
