"""Daemon-level chaos: prove the serving stack loses nothing to crashes.

Behind ``repro chaos-serve``: where :mod:`repro.faults.chaos` attacks the
*exploration* (a hostile device under one process), this harness attacks
the *service* -- the real daemon as a subprocess, the real store on real
disk -- with the failure modes operators actually see:

* **kill_recover** -- SIGKILL the daemon mid-job, restart it on the same
  store root, and require that the accepted job completes with the
  **bit-identical** winner an uninterrupted run produces, that a client
  resubmitting its idempotency key gets the original job back, and that
  the resubmission publishes **no duplicate segments**;
* **torn_write** -- a segment torn mid-write (partial JSON on disk) is
  quarantined, counted, and never merged; ``load()`` succeeds on the
  survivors;
* **bit_flip** -- one flipped byte in a committed segment is detected by
  its checksum, quarantined, and the next warm run degrades gracefully
  (runs colder) yet still converges to the reference winner.

Every scenario gates on explicit invariants and the harness exits
non-zero if any is violated: a lost accepted job, a diverging recovered
winner, a duplicate segment, or corruption that went unquarantined.
``--quick`` runs the kill/recover and bit-flip cells only (the CI smoke
configuration).
"""

from __future__ import annotations

import glob
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from .client import ServeClient, ServeError, ServeTransportError
from .jobs import JobSpec, run_job
from .store import ProfileStore

#: how long one daemon subprocess may take to print its URL
_SPAWN_TIMEOUT_S = 30.0
#: how long a recovered job may take to reach a terminal state
_JOB_TIMEOUT_S = 300.0


@dataclass
class ServeCellResult:
    """What happened when one chaos scenario ran."""

    name: str
    ok: bool
    #: problems found by the invariant checks (empty when ok)
    problems: list = field(default_factory=list)
    #: scenario-specific evidence (counts, winners, ids)
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "problems": list(self.problems),
            "details": dict(self.details),
        }


@dataclass
class ServeChaosReport:
    """Resilience report for one serve-chaos sweep."""

    model: str
    quick: bool
    cells: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "model": self.model,
            "quick": self.quick,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self) -> str:
        lines = [
            f"serve chaos sweep: {self.model}"
            + (" (quick)" if self.quick else ""),
            f"{'scenario':<14} {'verdict':<8} notes",
        ]
        for cell in self.cells:
            notes = list(cell.problems)
            if not notes:
                notes = [
                    f"{k}={v}" for k, v in sorted(cell.details.items())
                    if isinstance(v, (int, float, str, bool))
                ]
            lines.append(
                f"{cell.name:<14} {'ok' if cell.ok else 'FAIL':<8} "
                f"{'; '.join(str(n) for n in notes)}"
            )
        lines.append(
            f"chaos-serve {self.model}: {'OK' if self.ok else 'FAILED'}"
        )
        return "\n".join(lines)


# -- daemon subprocess management --------------------------------------------


class ServeDaemon:
    """One real ``repro serve`` daemon subprocess on a store root."""

    def __init__(self, store_root: str, extra_args: tuple = ()):
        env = dict(os.environ)
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--store", store_root, "--port", "0", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        self.url = self._await_url()

    def _await_url(self) -> str:
        """Parse ``serving on <url>`` from the daemon's stdout."""
        deadline = time.monotonic() + _SPAWN_TIMEOUT_S
        seen = []
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break  # daemon exited before announcing
            seen.append(line.rstrip())
            if line.startswith("serving on "):
                return line.split()[-1].strip()
        self.kill()
        raise RuntimeError(
            "daemon never announced its URL; output was: "
            + " | ".join(seen)
        )

    def kill(self) -> None:
        """SIGKILL: the crash under test, no goodbye allowed."""
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()

    def shutdown(self, client: ServeClient) -> None:
        """Graceful exit via ``POST /shutdown``; falls back to kill."""
        try:
            client.shutdown()
            self.proc.wait(timeout=60)
            self.proc.stdout.close()
        except (ServeError, ServeTransportError, OSError,
                subprocess.TimeoutExpired):
            self.kill()


def _segment_files(store_root: str) -> list[str]:
    """Every live segment file under a store root, sorted."""
    return sorted(glob.glob(
        os.path.join(store_root, "index", "*", "seg-*.json")
    ))


def _winner(result: dict) -> dict:
    """The bit-identity gate: everything that defines 'the same answer'."""
    return {
        "best_time_us": result.get("best_time_us"),
        "best_strategy": result.get("best_strategy"),
        "assignment": result.get("assignment"),
    }


# -- scenarios ----------------------------------------------------------------


def _cell_kill_recover(spec: JobSpec, workdir: str) -> ServeCellResult:
    """SIGKILL the daemon mid-job; restart; nothing accepted may be lost."""
    cell = ServeCellResult(name="kill_recover", ok=True)
    problems = cell.problems

    # reference: the winner an uninterrupted run produces on a cold store
    ref_store = ProfileStore(os.path.join(workdir, "reference-store"))
    reference = run_job(spec, store=ref_store)
    cell.details["reference_best_time_us"] = reference["best_time_us"]

    serve_root = os.path.join(workdir, "serve-store")
    key = "chaos-kill-recover"
    daemon = ServeDaemon(serve_root)
    try:
        client = ServeClient(daemon.url, timeout=10.0)
        job = client.submit(spec.to_dict(), key=key)
        job_id = job["id"]
        cell.details["job_id"] = job_id
        # give the job a moment to start; the kill is valid either way
        # (the WAL makes the 202 durable), but mid-run is the hard case
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.status(job_id)["status"] != "queued":
                break
            time.sleep(0.01)
        cell.details["status_at_kill"] = client.status(job_id)["status"]
    finally:
        daemon.kill()

    # restart on the same root: recovery must finish the accepted job
    daemon = ServeDaemon(serve_root)
    try:
        client = ServeClient(daemon.url, timeout=10.0)
        doc = client.wait(job_id, timeout=_JOB_TIMEOUT_S)
        cell.details["status_after_recovery"] = doc["status"]
        if doc["status"] != "done":
            problems.append(
                f"accepted job lost: {doc['status']} ({doc.get('error')})"
            )
        elif _winner(doc["result"]) != _winner(reference):
            problems.append(
                "recovered winner diverged from the uninterrupted run: "
                f"{_winner(doc['result'])} != {_winner(reference)}"
            )
        if not doc.get("recovered"):
            problems.append("job not marked recovered after restart")

        segments_before = _segment_files(serve_root)
        resubmit = client.submit(spec.to_dict(), key=key)
        if resubmit["id"] != job_id:
            problems.append(
                f"idempotent resubmit ran a new job: {resubmit['id']} "
                f"!= {job_id}"
            )
        segments_after = _segment_files(serve_root)
        cell.details["segments"] = len(segments_after)
        if segments_after != segments_before:
            problems.append(
                "idempotent resubmit grew the store: "
                f"{len(segments_before)} -> {len(segments_after)} segments"
            )

        health = client.healthz()
        if health.get("status") != "ok":
            problems.append(f"healthz not ok after recovery: {health}")
        ready = client.readyz()
        if not ready.get("ready"):
            problems.append(f"readyz not ready after recovery: {ready}")
        daemon.shutdown(client)
    except (ServeError, ServeTransportError, TimeoutError,
            RuntimeError) as exc:
        problems.append(f"{type(exc).__name__}: {exc}")
        daemon.kill()
    cell.ok = not problems
    return cell


def _cell_torn_write(spec: JobSpec, workdir: str) -> ServeCellResult:
    """A half-written segment must be quarantined, never merged or fatal."""
    cell = ServeCellResult(name="torn_write", ok=True)
    problems = cell.problems
    root = os.path.join(workdir, "torn-store")
    store = ProfileStore(root)
    digest = "ab12cd34"
    good = [(("op", "torn", i), float(10 * (i + 1))) for i in range(3)]
    info = store.put(digest, good)
    # tear a second segment: valid prefix, no closing brace -- exactly
    # what a crash mid-``write`` leaves if the tmp+rename dance is broken
    torn = os.path.join(
        os.path.dirname(info.path), "seg-99999999999999999999-torn.json"
    )
    with open(torn, "w") as fh:
        fh.write('{"version": 2, "schema": "x", "entr')

    fresh = ProfileStore(root)
    index = fresh.load(digest)
    if index is None:
        problems.append("load() lost the surviving segment")
    elif len(index.snapshot()) != len(good):
        problems.append(
            f"survivor entries wrong: {len(index.snapshot())} != {len(good)}"
        )
    if fresh.corrupt_segments != 1:
        problems.append(
            f"torn segment not counted corrupt ({fresh.corrupt_segments})"
        )
    if len(fresh.quarantined()) != 1:
        problems.append(
            f"quarantine holds {len(fresh.quarantined())} files, wanted 1"
        )
    if os.path.exists(torn):
        problems.append("torn segment still live after load()")
    cell.details.update(
        corrupt=fresh.corrupt_segments, quarantined=len(fresh.quarantined())
    )
    cell.ok = not problems
    return cell


def _cell_bit_flip(spec: JobSpec, workdir: str) -> ServeCellResult:
    """One flipped byte: quarantine + count, and warm start degrades
    gracefully to the same winner."""
    cell = ServeCellResult(name="bit_flip", ok=True)
    problems = cell.problems
    root = os.path.join(workdir, "flip-store")
    store = ProfileStore(root)
    reference = run_job(spec, store=store)
    segments = _segment_files(root)
    if not segments:
        problems.append("reference run published no segments to attack")
        cell.ok = False
        return cell
    victim = segments[0]
    with open(victim, "rb") as fh:
        raw = bytearray(fh.read())
    flip_at = len(raw) // 2
    raw[flip_at] ^= 0xFF
    with open(victim, "wb") as fh:
        fh.write(raw)

    fresh = ProfileStore(root)
    rerun = run_job(spec, store=fresh)
    if fresh.corrupt_segments < 1:
        problems.append("flipped segment not detected as corrupt")
    if fresh.quarantined_segments < 1 or not fresh.quarantined():
        problems.append("flipped segment not quarantined")
    if os.path.exists(victim):
        problems.append("flipped segment still live after warm run")
    if _winner(rerun) != _winner(reference):
        problems.append(
            "warm run over a corrupted store diverged: "
            f"{_winner(rerun)} != {_winner(reference)}"
        )
    cell.details.update(
        corrupt=fresh.corrupt_segments,
        quarantined=fresh.quarantined_segments,
        flipped_byte=flip_at,
    )
    cell.ok = not problems
    return cell


# -- driver -------------------------------------------------------------------


def run_serve_chaos(
    model: str = "scrnn",
    batch: int = 4,
    seq_len: int = 3,
    device: str = "P100",
    features: str = "all",
    seed: int = 0,
    budget: int = 400,
    quick: bool = False,
    workdir: str | None = None,
) -> ServeChaosReport:
    """Run the serve-chaos scenarios; see the module docstring.

    ``quick`` (the CI smoke configuration) runs kill_recover and
    bit_flip only.  ``workdir`` defaults to a temporary directory that
    is removed afterwards."""
    spec = JobSpec.from_dict({
        "model": model, "batch": batch, "seq_len": seq_len,
        "device": device, "features": features, "seed": seed,
        "budget": budget,
    })
    report = ServeChaosReport(model=model, quick=quick)
    cells = [_cell_kill_recover, _cell_bit_flip]
    if not quick:
        cells.insert(1, _cell_torn_write)
    own_workdir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="chaos-serve-")
    try:
        for cell_fn in cells:
            try:
                report.cells.append(cell_fn(spec, workdir))
            except Exception as exc:  # noqa: BLE001 - one cell, one verdict
                report.cells.append(ServeCellResult(
                    name=cell_fn.__name__.replace("_cell_", ""),
                    ok=False,
                    problems=[f"harness error {type(exc).__name__}: {exc}"],
                ))
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return report


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Tiny standalone entry point (the CLI wraps this with flags)."""
    report = run_serve_chaos(quick="--quick" in (argv or []))
    print(json.dumps(report.to_dict(), indent=2))
    return 0 if report.ok else 1
