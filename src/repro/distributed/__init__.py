"""Multi-GPU data parallelism as an adaptive dimension (section 3.4).

The paper's prototype adapts a single GPU; this subpackage implements the
extension it sketches: measuring -- never modelling -- the best degree of
data parallelism given the model's communication cost and the fabric."""

from .data_parallel import (
    ReplicaMeasurement,
    choose_parallelism,
    gradient_bytes,
    measure_degree,
)
from .interconnect import INTERCONNECTS, Interconnect, NVLINK, PCIE

__all__ = [
    "ReplicaMeasurement", "choose_parallelism", "gradient_bytes",
    "measure_degree", "INTERCONNECTS", "Interconnect", "NVLINK", "PCIE",
]

from .pipeline import (
    PartitioningDecision,
    PipelineMeasurement,
    StageMeasurement,
    choose_partitioning,
    measure_pipeline,
    stage_unit_times,
)

__all__ += [
    "PartitioningDecision", "PipelineMeasurement", "StageMeasurement",
    "choose_partitioning", "measure_pipeline", "stage_unit_times",
]
