"""Pipeline (model) parallelism, chosen by measurement (section 6.7).

The paper's discussion extends the deterministic-adaptation idea to
"specifics of model-partitioning and data partitioning in multi-GPU
jobs".  This module implements the model-partitioning half: split the
layer stack across GPUs, stream micro-batches through the pipeline
(GPipe-style), and *measure* the resulting step time -- including the
pipeline bubble and the inter-stage activation transfers -- so the
partitioning choice (and the data-vs-pipeline question) is decided by
numbers, not a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines.native import native_plan
from ..gpu.device import GPUSpec, P100
from ..ir.graph import Graph
from ..models.cells import ModelConfig, TracedModel
from ..runtime.executor import Executor
from .interconnect import Interconnect, PCIE
from .data_parallel import measure_degree


@dataclass
class StageMeasurement:
    """One pipeline stage's measured compute and boundary traffic."""

    stage: int
    scopes: tuple[str, ...]
    compute_us: float
    boundary_bytes: int


@dataclass
class PipelineMeasurement:
    """A fully measured pipeline configuration."""

    num_stages: int
    num_microbatches: int
    stages: list[StageMeasurement]
    #: per-microbatch time of the slowest stage (the pipeline's beat)
    beat_us: float
    transfer_us: float
    step_us: float
    per_sample_us: float


def _layer_scopes(graph: Graph) -> list[str]:
    """Stackable layer provenances in forward order (layer0, layer1, ...).

    Only step-structured scopes are split across stages; the embedding
    goes to the first stage and the head (plus gradient accumulation and
    anything unscoped) to the last -- the way practitioners place them.
    """
    seen: dict[str, int] = {}
    for node in graph.compute_nodes():
        if "/step" not in node.scope:
            continue
        scope = node.scope.split("/")[0]
        if scope in ("embed", "head", "attention"):
            continue
        if scope not in seen:
            seen[scope] = node.node_id
    return [s for s, _ in sorted(seen.items(), key=lambda kv: kv[1])]


def attribute_to_scopes(
    graph: Graph, plan, unit_us: dict, launch_overhead_us: float
) -> dict[str, float]:
    """Charge every schedule unit (its time plus one launch overhead) to
    the layer scope that owns it: the embedding rides with the first
    layer, the head/glue/accumulation with the last -- the way
    practitioners place them.  ``unit_us`` may hold measured unit times
    or analytic kernel costs; the attribution is identical, which is what
    makes the fleet pre-ranker's analytic stage bound comparable to the
    measured stage time.
    """
    ordered = _layer_scopes(graph)
    layer_scopes = set(ordered)
    first_owner = ordered[0] if ordered else "__first__"
    last_owner = ordered[-1] if ordered else "__last__"
    times: dict[str, float] = {scope: 0.0 for scope in ordered}
    for unit in plan.units:
        node_scope = graph.node(unit.node_ids[0]).scope
        top = node_scope.split("/")[0] if node_scope else ""
        if top not in layer_scopes:
            top = first_owner if top == "embed" else last_owner
        cost = unit_us.get(unit.unit_id, 0.0) + launch_overhead_us
        times[top] = times.get(top, 0.0) + cost
    return times


def stage_unit_times(graph: Graph, device: GPUSpec, executor=None) -> dict[str, float]:
    """Per-layer-scope time attribution from ONE executed mini-batch.

    Runs the native plan once and attributes the measured unit times, so
    summing any group of scopes from this dict equals measuring that
    group's stage -- a pipeline split of S stages costs one simulation
    instead of S.
    """
    if executor is None:
        executor = Executor(graph, device)
    plan = native_plan(graph, fuse_elementwise=True)
    result = executor.run(plan)
    return attribute_to_scopes(
        graph, plan, result.unit_times, device.launch_overhead_us
    )


def _stage_compute_us(graph: Graph, scopes: set[str], device: GPUSpec) -> float:
    """Measured time of the subset of the mini-batch in ``scopes``."""
    times = stage_unit_times(graph, device)
    return sum(us for scope, us in times.items() if scope in scopes)


def measure_pipeline(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    num_stages: int,
    num_microbatches: int = 4,
    device: GPUSpec = P100,
    interconnect: Interconnect = PCIE,
) -> PipelineMeasurement:
    """Measure a GPipe-style pipeline split of the layer stack.

    The layer scopes are partitioned into ``num_stages`` contiguous
    groups; each micro-batch of size max(1, B // num_microbatches) flows
    through them.  Step time follows the classic pipeline formula measured
    from per-stage numbers: ``(num_microbatches + num_stages - 1) * beat``,
    where the beat is the slowest stage's per-microbatch time plus the
    boundary transfer.  Boundary traffic and the per-sample division both
    use the samples the pipeline *actually* processes
    (``micro * num_microbatches``), which differs from ``batch_size`` when
    the batch does not divide evenly -- pricing by the nominal batch would
    undercount traffic (to zero, for batches smaller than the micro-batch
    count) and overstate throughput.
    """
    micro = max(1, config.batch_size // num_microbatches)
    samples = micro * num_microbatches
    model = builder(config.scaled(batch_size=micro))
    graph = model.graph
    scopes = _layer_scopes(graph)
    if num_stages > len(scopes):
        raise ValueError(
            f"cannot split {len(scopes)} layer scopes into {num_stages} stages"
        )

    per_stage = max(1, len(scopes) // num_stages)
    groups = [
        tuple(scopes[i * per_stage: (i + 1) * per_stage if i < num_stages - 1 else None])
        for i in range(num_stages)
    ]

    boundary_bytes = micro * config.hidden_size * 4

    unit_times = stage_unit_times(graph, device)
    stages = []
    for i, group in enumerate(groups):
        compute = sum(unit_times.get(scope, 0.0) for scope in group)
        stages.append(
            StageMeasurement(
                stage=i,
                scopes=group,
                compute_us=compute,
                boundary_bytes=boundary_bytes,
            )
        )

    transfer = boundary_bytes / interconnect.link_bw_bytes_per_us + interconnect.latency_us
    beat = max(s.compute_us for s in stages) + (transfer if num_stages > 1 else 0.0)
    step = (num_microbatches + num_stages - 1) * beat
    return PipelineMeasurement(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        stages=stages,
        beat_us=beat,
        transfer_us=transfer if num_stages > 1 else 0.0,
        step_us=step,
        per_sample_us=step / samples,
    )


@dataclass
class PartitioningDecision:
    """Data-parallel vs pipeline-parallel, decided by measurement."""

    kind: str  # "data" or "pipeline"
    world: int
    per_sample_us: float
    detail: object


def choose_partitioning(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    world: int,
    device: GPUSpec = P100,
    interconnect: Interconnect = PCIE,
    num_microbatches: int = 4,
) -> list[PartitioningDecision]:
    """Measure data parallelism and pipeline parallelism at the same world
    size; best (lowest measured us/sample) first.

    This is the section 6.7 extension in miniature: the *kind* of
    partitioning, like every other knob, is picked by running both.
    """
    decisions = []
    data = measure_degree(
        builder, config, world, device=device, interconnect=interconnect
    )
    decisions.append(
        PartitioningDecision(
            kind="data", world=world, per_sample_us=data.per_sample_us, detail=data
        )
    )
    try:
        pipe = measure_pipeline(
            builder, config, num_stages=world,
            num_microbatches=num_microbatches,
            device=device, interconnect=interconnect,
        )
        decisions.append(
            PartitioningDecision(
                kind="pipeline", world=world,
                per_sample_us=pipe.per_sample_us, detail=pipe,
            )
        )
    except ValueError:
        pass  # not enough layers to split this deep
    decisions.sort(key=lambda d: d.per_sample_us)
    return decisions
