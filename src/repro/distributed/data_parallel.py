"""Measured selection of the data-parallel degree (section 3.4).

Astra's stance carries over unchanged: do not *model* whether 4 GPUs beat
2 -- *measure* both.  For each candidate degree N this module

* traces the per-replica graph at batch B/N (strong scaling) or B
  (weak scaling),
* measures the per-replica mini-batch time on the simulated device --
  optionally with the full Astra exploration applied first (the paper's
  note that single-GPU adaptation "will also benefit multi-GPU jobs by
  running each instance faster"),
* prices the gradient all-reduce on the chosen interconnect, overlapping
  it with the backward pass the way bucketed gradient synchronization
  does,

and returns the measured step times, best first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines.native import native_plan
from ..core.session import AstraSession
from ..gpu.device import GPUSpec, P100
from ..models.cells import ModelConfig, TracedModel
from ..runtime.executor import Executor
from .interconnect import Interconnect, PCIE

#: fraction of the all-reduce hidden under the backward pass by bucketed
#: overlap (gradients for early layers are ready while later layers still
#: compute); the residue is exposed at the end of the step
OVERLAP_FRACTION = 0.6


@dataclass
class ReplicaMeasurement:
    """One candidate degree, fully measured."""

    world: int
    per_replica_batch: int
    compute_us: float
    allreduce_us: float
    exposed_comm_us: float
    step_us: float
    per_sample_us: float
    astra_speedup: float = 1.0
    #: throughput gain over world=1 (1.0 = no benefit, N = perfect scaling)
    scaling_efficiency: float = 1.0


def gradient_bytes(graph) -> int:
    """Bytes all-reduced per step: one gradient per parameter."""
    return sum(n.spec.size_bytes for n in graph.params())


def measure_degree(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    world: int,
    device: GPUSpec = P100,
    interconnect: Interconnect = PCIE,
    use_astra: bool = False,
    strong_scaling: bool = True,
    seed: int = 0,
) -> ReplicaMeasurement:
    """Measure one data-parallel degree end to end."""
    if strong_scaling:
        per_replica = max(1, config.batch_size // world)
    else:
        per_replica = config.batch_size
    model = builder(config.scaled(batch_size=per_replica))

    astra_speedup = 1.0
    if use_astra:
        report = AstraSession(model, device=device, features="FK", seed=seed).optimize()
        compute = report.best_time_us
        astra_speedup = report.speedup_over_native
    else:
        compute = Executor(model.graph, device).run(
            native_plan(model.graph, fuse_elementwise=True)
        ).total_time_us

    comm = interconnect.allreduce_us(gradient_bytes(model.graph), world)
    # the backward pass is roughly 2/3 of compute; overlap hides part of
    # the all-reduce under it
    hideable = min(comm * OVERLAP_FRACTION, compute * 2 / 3)
    exposed = comm - hideable
    step = compute + exposed
    samples = per_replica * world
    return ReplicaMeasurement(
        world=world,
        per_replica_batch=per_replica,
        compute_us=compute,
        allreduce_us=comm,
        exposed_comm_us=exposed,
        step_us=step,
        per_sample_us=step / samples,
        astra_speedup=astra_speedup,
    )


def choose_parallelism(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    degrees: tuple[int, ...] = (1, 2, 4, 8),
    device: GPUSpec = P100,
    interconnect: Interconnect = PCIE,
    use_astra: bool = False,
    strong_scaling: bool = True,
    seed: int = 0,
) -> list[ReplicaMeasurement]:
    """Measure every candidate degree; best (lowest us/sample) first.

    The measured curve exposes the paper's cost-benefit dynamic: scaling
    up divides compute but the all-reduce grows with world size, so the
    optimum depends on the model's compute/communication ratio and the
    fabric -- which is why it must be measured, not modelled.
    """
    measurements = [
        measure_degree(
            builder, config, world,
            device=device, interconnect=interconnect,
            use_astra=use_astra, strong_scaling=strong_scaling, seed=seed,
        )
        for world in degrees
        if not strong_scaling or config.batch_size // world >= 1
    ]
    # scaling efficiency is defined relative to world=1; when the caller's
    # degree list skips it, measure the baseline explicitly rather than
    # normalizing against whichever degree happened to come first
    base = next((m for m in measurements if m.world == 1), None)
    if base is None:
        base = measure_degree(
            builder, config, 1,
            device=device, interconnect=interconnect,
            use_astra=use_astra, strong_scaling=strong_scaling, seed=seed,
        )
    for m in measurements:
        m.scaling_efficiency = base.per_sample_us / m.per_sample_us
    measurements.sort(key=lambda m: m.per_sample_us)
    return measurements
