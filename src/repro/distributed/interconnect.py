"""Interconnect models for multi-GPU training (section 3.4).

The paper lists distributed/multi-GPU training as a natural further
dimension of the optimization state space: "depending on the
communication cost of the model and the physical characteristics of the
network, the choice of ideal degree of parallelism ... could be taken in
an automated manner with runtime measurement and adaptation."

This module prices the communication side: ring all-reduce over a PCIe
or NVLink fabric.  Like the GPU cost model, it is deterministic in the
inputs Astra can observe (tensor bytes, fabric, world size), so measured
step times are repeatable and the adaptive choice is sound.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """A GPU-to-GPU fabric."""

    name: str
    #: per-link bandwidth, bytes per microsecond
    link_bw_bytes_per_us: float
    #: per-message latency, microseconds
    latency_us: float
    #: maximum ring size the fabric supports at full bandwidth
    max_world: int = 16

    def allreduce_us(self, bytes_per_replica: int, world: int) -> float:
        """Ring all-reduce: 2(N-1)/N of the data crosses each link, in
        2(N-1) latency-bound steps."""
        if world <= 1:
            return 0.0
        steps = 2 * (world - 1)
        volume = 2.0 * (world - 1) / world * bytes_per_replica
        return steps * self.latency_us + volume / self.link_bw_bytes_per_us

    def broadcast_us(self, nbytes: int, world: int) -> float:
        """Pipeline broadcast (used for initial weight distribution)."""
        if world <= 1:
            return 0.0
        return self.latency_us * (world - 1) + nbytes / self.link_bw_bytes_per_us

    def contended_us(self, nbytes: int, concurrent: int = 1) -> float:
        """One point-to-point transfer while ``concurrent`` transfers share
        the fabric.

        The links are a shared medium: when several boundary transfers
        overlap (every adjacent stage pair of a busy pipeline hands off at
        the same beat), each sees ``1/concurrent`` of the link bandwidth.
        Latency is per-message and does not stretch under contention.
        Monotone in both arguments, and ``contended_us(b, 1)`` is the
        uncontended transfer -- the lower bound the fleet pre-ranker uses.
        """
        if nbytes <= 0:
            return 0.0
        share = self.link_bw_bytes_per_us / max(1, concurrent)
        return self.latency_us + nbytes / share


#: PCIe 3.0 x16-ish fabric: what the paper's Azure VMs had
PCIE = Interconnect(name="pcie", link_bw_bytes_per_us=12e3, latency_us=12.0)

#: NVLink-connected DGX-style fabric
NVLINK = Interconnect(name="nvlink", link_bw_bytes_per_us=45e3, latency_us=6.0)

INTERCONNECTS = {"pcie": PCIE, "nvlink": NVLINK}
