"""The ``repro fleet --bench`` harness: exhaustive-vs-pruned search timing.

The same model is searched twice over the same fleet with the same seed:

* **exhaustive** -- every enumerated strategy measured, no bound
  pruning, no learned cut: the ground-truth sweep;
* **pruned** -- the production path: admissible-bound pruning against
  the measured seed strategy (``docs/distributed.md``).

Throughput is **strategies/sec**: the enumerated strategy count divided
by wall time.  Both legs share the numerator, so the strategies/sec
multiple equals the wall-clock speedup and credits pruning for retiring
strategies without measuring them.

The harness is also the exactness watchdog: ``ok`` is false -- and
``repro fleet --bench`` exits non-zero -- if the pruned leg's winning
strategy or per-sample time differs from the exhaustive leg's, if the
pruned leg measured more than :data:`MEASURED_FRACTION_TARGET` of the
space, if nothing was pruned, or if pruning stood down on a clean run.
On a heterogeneous fleet the exhaustive leg additionally gates the
paper's claim itself: the winner must be a mixed placement that beats
the best homogeneous one.  ``BENCH_fleet_<model>.json`` is the
serialized document; ``--compare`` diffs a fresh document against the
committed one, gating winner identity and the (machine-relative)
strategies/sec multiple.
"""

from __future__ import annotations

import time

from ..models import MODEL_BUILDERS
from .search import run_fleet_search
from .spec import get_fleet

FLEET_BENCH_VERSION = 1

#: maximum fraction of the enumerated strategies the pruned leg may
#: measure (the ISSUE's acceptance gate); deterministic on the
#: simulator, so it applies on every host, quick runs included
MEASURED_FRACTION_TARGET = 0.5

#: maximum tolerated drop in the strategies/sec multiple before
#: ``--compare`` fails; the multiple divides out the host's absolute
#: speed, so it is the machine-stable throughput signal
REGRESSION_THRESHOLD = 0.20


def _model_config(name: str, batch: int, seq_len: int):
    if name not in MODEL_BUILDERS:
        raise ValueError(f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}")
    module = __import__(f"repro.models.{name}", fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=seq_len)
    return MODEL_BUILDERS[name], config


def _timed_leg(builder, config, fleet, *, name, exhaustive, seed, workers,
               microbatches) -> tuple[dict, object]:
    start = time.perf_counter()
    report = run_fleet_search(
        builder, config, fleet, model_name=name, exhaustive=exhaustive,
        seed=seed, workers=workers, microbatches=microbatches,
    )
    wall_s = time.perf_counter() - start
    total = report.strategies_total
    record = {
        "wall_s": wall_s,
        "strategies_total": total,
        "strategies_measured": report.strategies_measured,
        "strategies_pruned": report.strategies_pruned,
        "measured_fraction": report.measured_fraction,
        "strategies_per_sec": (total / wall_s) if wall_s > 0 else 0.0,
        "winner": report.winner.label,
        "winner_per_sample_us": report.winner_per_sample_us,
        "winner_hetero": report.hetero_winner,
        "standdown": report.standdown,
        "best_homogeneous_us": report.best_homogeneous_us,
        "best_homogeneous_label": report.best_homogeneous_label,
        "best_homogeneous_measured": report.best_homogeneous_measured,
    }
    return record, report


def bench_fleet(
    name: str,
    *,
    batch: int = 256,
    seq_len: int = 5,
    fleet_name: str = "hetero",
    seed: int = 0,
    workers: int = 1,
    microbatches: int = 4,
    quick: bool = False,
) -> dict:
    """Run the exhaustive / pruned comparison and assemble the document.

    All gates are deterministic (the simulator is noise-free) and apply
    on every host, quick runs included; ``quick`` only shrinks the
    recommended batch at the CLI layer, never the gates.
    """
    builder, config = _model_config(name, batch, seq_len)
    fleet = get_fleet(fleet_name)

    failures: list[str] = []
    exhaustive_rec, exhaustive_rep = _timed_leg(
        builder, config, fleet, name=name, exhaustive=True, seed=seed,
        workers=workers, microbatches=microbatches,
    )
    pruned_rec, pruned_rep = _timed_leg(
        builder, config, fleet, name=name, exhaustive=False, seed=seed,
        workers=workers, microbatches=microbatches,
    )

    winner_match = (
        pruned_rep.winner.key() == exhaustive_rep.winner.key()
        and pruned_rep.winner_per_sample_us == exhaustive_rep.winner_per_sample_us
    )
    multiple = (
        pruned_rec["strategies_per_sec"] / exhaustive_rec["strategies_per_sec"]
        if exhaustive_rec["strategies_per_sec"] > 0 else 0.0
    )

    if not winner_match:
        failures.append(
            f"pruned winner {pruned_rec['winner']} "
            f"({pruned_rec['winner_per_sample_us']:.3f} us) diverged from "
            f"exhaustive winner {exhaustive_rec['winner']} "
            f"({exhaustive_rec['winner_per_sample_us']:.3f} us)"
        )
    if pruned_rec["standdown"] is not None:
        failures.append(
            f"pruning stood down on a clean run ({pruned_rec['standdown']})"
        )
    if pruned_rec["strategies_pruned"] <= 0:
        failures.append("bound pruning retired 0 strategies")
    if pruned_rec["measured_fraction"] > MEASURED_FRACTION_TARGET:
        failures.append(
            f"pruned leg measured {pruned_rec['strategies_measured']} of "
            f"{pruned_rec['strategies_total']} strategies "
            f"({pruned_rec['measured_fraction'] * 100:.0f}%; target <= "
            f"{MEASURED_FRACTION_TARGET * 100:.0f}%)"
        )
    if multiple <= 0.0:
        failures.append("strategies/sec multiple is zero (a leg was untimed)")

    hetero_gate = "skipped: homogeneous fleet"
    if fleet.heterogeneous and quick:
        # At the quick batch the optimal strategy is legitimately a
        # homogeneous V100 pair (communication dwarfs the P100 compute
        # contribution), so the hetero-beats-homo claim only holds -- and
        # is only gated -- at the full-size batch.
        hetero_gate = "skipped: quick config (hetero advantage needs full batch)"
    elif fleet.heterogeneous:
        hetero_gate = "exhaustive winner is heterogeneous and beats best homogeneous"
        if not exhaustive_rec["winner_hetero"]:
            failures.append(
                f"exhaustive winner {exhaustive_rec['winner']} is homogeneous "
                f"on the {fleet_name} fleet"
            )
        elif (
            exhaustive_rec["best_homogeneous_us"] is not None
            and exhaustive_rec["winner_per_sample_us"]
            >= exhaustive_rec["best_homogeneous_us"]
        ):
            failures.append(
                f"heterogeneous winner {exhaustive_rec['winner']} "
                f"({exhaustive_rec['winner_per_sample_us']:.3f} us) does not "
                f"beat best homogeneous "
                f"{exhaustive_rec['best_homogeneous_label']} "
                f"({exhaustive_rec['best_homogeneous_us']:.3f} us)"
            )

    return {
        "version": FLEET_BENCH_VERSION,
        "model": name,
        "batch": batch,
        "seq_len": seq_len,
        "fleet": fleet_name,
        "seed": seed,
        "workers": workers,
        "microbatches": microbatches,
        "quick": quick,
        "measured_fraction_target": MEASURED_FRACTION_TARGET,
        "legs": {"exhaustive": exhaustive_rec, "pruned": pruned_rec},
        "winner_match": winner_match,
        "strategies_per_sec_multiple": multiple,
        "hetero_gate": hetero_gate,
        "failures": failures,
        "ok": not failures,
    }


def compare_fleet_bench(current: dict, baseline: dict) -> dict:
    """Diff a fresh fleet bench document against a committed baseline.

    Gates what is stable across machines: the documents must describe
    the same search (model, batch, fleet, seed -- a mislabelled
    comparison is refused, not fuzzily accepted), the winning strategy
    must be identical, and the strategies/sec *multiple* (which divides
    out host speed) must not drop by more than
    :data:`REGRESSION_THRESHOLD`.  Absolute strategies/sec is reported
    as an informational delta only.
    """
    failures: list[str] = []
    for key in ("version", "model", "batch", "fleet", "seed"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"document mismatch: {key} is {current.get(key)!r} here, "
                f"{baseline.get(key)!r} in the committed baseline"
            )
    cur_multiple = current.get("strategies_per_sec_multiple", 0.0)
    base_multiple = baseline.get("strategies_per_sec_multiple", 0.0)
    drop = 1.0 - cur_multiple / base_multiple if base_multiple > 0 else 0.0
    cur_winner = (current.get("legs", {}).get("exhaustive", {}) or {}).get("winner")
    base_winner = (baseline.get("legs", {}).get("exhaustive", {}) or {}).get("winner")
    winner_match = cur_winner == base_winner and cur_winner is not None
    if not failures:
        if not winner_match:
            failures.append(
                f"winning strategy changed: {cur_winner!r} here, "
                f"{base_winner!r} in the committed baseline"
            )
        if drop > REGRESSION_THRESHOLD:
            failures.append(
                f"strategies/sec multiple regressed {drop * 100:.1f}% "
                f"({base_multiple:.2f}x -> {cur_multiple:.2f}x; threshold "
                f"{REGRESSION_THRESHOLD * 100:.0f}%)"
            )
        if not current.get("ok", False):
            failures.append("current document carries its own failures")
    return {
        "model": current.get("model"),
        "fleet": current.get("fleet"),
        "threshold": REGRESSION_THRESHOLD,
        "winner_match": winner_match,
        "winner_current": cur_winner,
        "winner_baseline": base_winner,
        "multiple_current": cur_multiple,
        "multiple_baseline": base_multiple,
        "multiple_drop": drop,
        "failures": failures,
        "ok": not failures,
    }


def render_fleet_bench(doc: dict) -> str:
    """Human-readable summary of a fleet bench document."""
    lines = [
        f"fleet bench {doc['model']}  batch={doc['batch']} "
        f"seq={doc['seq_len']} fleet={doc['fleet']} seed={doc['seed']} "
        f"workers={doc['workers']}"
        + ("  [quick]" if doc.get("quick") else ""),
        f"{'leg':>10}  {'wall(s)':>8}  {'measured':>8}  {'pruned':>6}  "
        f"{'frac%':>5}  {'strat/s':>8}  winner",
    ]
    for leg_name, leg in doc["legs"].items():
        lines.append(
            f"{leg_name:>10}  {leg['wall_s']:8.3f}  "
            f"{leg['strategies_measured']:4d}/{leg['strategies_total']:<3d}  "
            f"{leg['strategies_pruned']:6d}  "
            f"{leg['measured_fraction'] * 100:5.1f}  "
            f"{leg['strategies_per_sec']:8.2f}  "
            f"{leg['winner']} ({leg['winner_per_sample_us']:.3f} us/sample)"
        )
    lines.append(
        f"strategies/sec multiple: "
        f"{doc['strategies_per_sec_multiple']:.2f}x  "
        f"winner {'match' if doc['winner_match'] else 'DIVERGED'}  "
        f"hetero gate: {doc['hetero_gate']}"
    )
    if doc["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in doc["failures"])
    else:
        lines.append(
            f"ok: identical winner, measured <= "
            f"{doc['measured_fraction_target'] * 100:.0f}% of the space"
        )
    return "\n".join(lines)


def render_fleet_compare(diff: dict) -> str:
    """Human-readable summary of a :func:`compare_fleet_bench` diff."""
    lines = [
        f"fleet bench compare: {diff.get('model')} on {diff.get('fleet')} "
        f"(gate: winner identity + multiple within "
        f"{diff['threshold'] * 100:.0f}%)",
        f"winner: {diff.get('winner_baseline')!r} -> "
        f"{diff.get('winner_current')!r} "
        f"({'match' if diff.get('winner_match') else 'CHANGED'})",
        f"multiple: {diff.get('multiple_baseline', 0.0):.2f}x -> "
        f"{diff.get('multiple_current', 0.0):.2f}x "
        f"(drop {diff.get('multiple_drop', 0.0) * 100:.1f}%)",
    ]
    if diff["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in diff["failures"])
    else:
        lines.append("ok: winner stable, relative throughput held")
    return "\n".join(lines)
