"""Heterogeneous fleet descriptions: named devices over a shared fabric.

A fleet is a small, fixed set of simulated accelerators
(:class:`~repro.gpu.device.GPUSpec` instances -- mixed P100s and V100s
with their own clocks and memory) connected by one shared
:class:`~repro.distributed.interconnect.Interconnect`.  Placement
strategies name device *classes* (``"P100"``, ``"V100"``); the fleet
supplies how many of each class exist and what the fabric between them
costs, including contention when several boundary transfers overlap
(``Interconnect.contended_us``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributed.interconnect import INTERCONNECTS, Interconnect, NVLINK, PCIE
from ..gpu.device import DEVICES, GPUSpec, P100, V100


@dataclass(frozen=True)
class FleetDevice:
    """One accelerator in the fleet: a stable name plus its spec."""

    name: str  # e.g. "gpu0"
    spec: GPUSpec

    @property
    def device_class(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class FleetSpec:
    """A named fleet: devices plus the fabric that connects them."""

    name: str
    devices: tuple[FleetDevice, ...]
    interconnect: Interconnect

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError(f"fleet {self.name!r} has no devices")
        seen = set()
        for dev in self.devices:
            if dev.name in seen:
                raise ValueError(f"duplicate device name {dev.name!r}")
            seen.add(dev.name)

    @property
    def world(self) -> int:
        return len(self.devices)

    def class_counts(self) -> dict[str, int]:
        """Device-class availability, e.g. ``{"P100": 2, "V100": 2}``."""
        counts: dict[str, int] = {}
        for dev in self.devices:
            counts[dev.device_class] = counts.get(dev.device_class, 0) + 1
        return counts

    def class_specs(self) -> dict[str, GPUSpec]:
        """One representative :class:`GPUSpec` per device class."""
        specs: dict[str, GPUSpec] = {}
        for dev in self.devices:
            specs.setdefault(dev.device_class, dev.spec)
        return specs

    @property
    def heterogeneous(self) -> bool:
        return len(self.class_counts()) > 1

    def clock_modes(self) -> set[str]:
        return {dev.spec.clock_mode for dev in self.devices}

    def assign_devices(self, placement: tuple[str, ...]) -> tuple[str, ...]:
        """Concrete device names for a class placement, first-free order.

        Deterministic: replicas/stages claim devices of their class in
        fleet order, so the same placement always lands on the same
        hardware (trace tracks and keys stay stable across runs).
        """
        free: dict[str, list[str]] = {}
        for dev in self.devices:
            free.setdefault(dev.device_class, []).append(dev.name)
        names = []
        for cls in placement:
            pool = free.get(cls)
            if not pool:
                raise ValueError(
                    f"placement {placement!r} exceeds fleet {self.name!r} "
                    f"availability {self.class_counts()!r}"
                )
            names.append(pool.pop(0))
        return tuple(names)

    def describe(self) -> str:
        counts = self.class_counts()
        mix = "+".join(f"{n}x{cls}" for cls, n in sorted(counts.items()))
        return f"{self.name} ({mix}, {self.interconnect.name})"


def _mixed(name: str, interconnect: Interconnect) -> FleetSpec:
    return FleetSpec(
        name=name,
        devices=(
            FleetDevice("gpu0", P100),
            FleetDevice("gpu1", P100),
            FleetDevice("gpu2", V100),
            FleetDevice("gpu3", V100),
        ),
        interconnect=interconnect,
    )


def _uniform(name: str, spec: GPUSpec, count: int,
             interconnect: Interconnect) -> FleetSpec:
    return FleetSpec(
        name=name,
        devices=tuple(
            FleetDevice(f"gpu{i}", spec) for i in range(count)
        ),
        interconnect=interconnect,
    )


#: the default search fleet: the paper's P100s plus a newer pair of V100s
#: on an NVLink-class fabric, where scaling past the fast homogeneous
#: pair actually pays and the weighted hetero placement can win
DEFAULT_FLEET = _mixed("hetero", NVLINK)

FLEETS: dict[str, FleetSpec] = {
    "hetero": DEFAULT_FLEET,
    "hetero_pcie": _mixed("hetero_pcie", PCIE),
    "p100x4": _uniform("p100x4", P100, 4, PCIE),
    "v100x4": _uniform("v100x4", V100, 4, NVLINK),
}


def get_fleet(name: str) -> FleetSpec:
    try:
        return FLEETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fleet {name!r}; have {sorted(FLEETS)}"
        ) from None


def with_clock(fleet: FleetSpec, mode: str) -> FleetSpec:
    """The same fleet with every device's clock switched to ``mode``."""
    return FleetSpec(
        name=fleet.name,
        devices=tuple(
            FleetDevice(d.name, d.spec.with_clock(mode)) for d in fleet.devices
        ),
        interconnect=fleet.interconnect,
    )


__all__ = [
    "FleetDevice", "FleetSpec", "DEFAULT_FLEET", "FLEETS",
    "get_fleet", "with_clock",
    "DEVICES", "INTERCONNECTS",
]
