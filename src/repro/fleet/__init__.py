"""Heterogeneous multi-GPU fleet strategy search (ROADMAP item 3).

The paper's section 6.7 extends measured adaptation to "model-partitioning
and data partitioning in multi-GPU jobs"; the 2025 hetero-Astra paper
(PAPERS.md) extends the search space to *mixed* device fleets.  This
subpackage makes the partitioning strategy -- data-parallel degree,
contiguous pipeline stage cuts, per-stage/per-replica device placement,
and the batch-split mode -- a first-class adaptive variable explored by
the wave engine, with per-device profile-index mangling so measurements
are shared across every strategy that places the same subgraph on the
same device class.  See ``docs/distributed.md``.
"""

from .spec import DEFAULT_FLEET, FLEETS, FleetDevice, FleetSpec, get_fleet, with_clock
from .strategy import Strategy, enumerate_strategies, resolve_weighted_shards
from .measure import STRATEGY_VAR, FleetMeasurer, StrategyOutcome, strategy_profile_key
from .search import FleetEngine, FleetSearchReport, run_fleet_search
from .bench import (
    FLEET_BENCH_VERSION,
    bench_fleet,
    compare_fleet_bench,
    render_fleet_bench,
    render_fleet_compare,
)

__all__ = [
    "DEFAULT_FLEET", "FLEETS", "FleetDevice", "FleetSpec",
    "get_fleet", "with_clock",
    "Strategy", "enumerate_strategies", "resolve_weighted_shards",
    "STRATEGY_VAR", "FleetMeasurer", "StrategyOutcome", "strategy_profile_key",
    "FleetEngine", "FleetSearchReport", "run_fleet_search",
    "FLEET_BENCH_VERSION", "bench_fleet", "compare_fleet_bench",
    "render_fleet_bench", "render_fleet_compare",
]
