"""The fleet strategy space: partitioning as an adaptive variable.

A :class:`Strategy` is one fully specified way to run a mini-batch on the
fleet:

* ``data``: N replicas (the data-parallel degree), each placed on a
  device class, each processing a shard of the global batch.  Shards are
  either ``even`` (balanced largest-remainder split) or ``weighted``
  (proportional to the device classes' measured full-batch throughput --
  the hetero-Astra move that lets a mixed placement beat the fastest
  homogeneous pair).
* ``pipeline``: the layer stack cut into contiguous stages, each stage
  placed on a device class, micro-batches streamed through GPipe-style.

Strategies are identified **by value** (:meth:`Strategy.key`): the key is
what the adaptive variable carries as a choice, what the profile index
stores the measured step time under, and what worker processes receive to
rebuild the strategy -- nothing crosses a boundary as an object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations_with_replacement, product

from .spec import FleetSpec

SPLIT_EVEN = "even"
SPLIT_WEIGHTED = "weighted"


@dataclass(frozen=True)
class Strategy:
    """One candidate partitioning of the job over the fleet."""

    kind: str  # "data" | "pipeline"
    #: device class per replica (data) or per stage (pipeline)
    placement: tuple[str, ...]
    #: data: per-replica batch shard (same order as ``placement``);
    #: empty until a weighted strategy's shards are resolved
    shards: tuple[int, ...] = ()
    split: str = SPLIT_EVEN
    #: pipeline: layer count per contiguous stage (sums to the stack depth)
    cuts: tuple[int, ...] = ()
    #: pipeline: micro-batches streamed per step
    microbatches: int = 1

    @property
    def world(self) -> int:
        return len(self.placement)

    @property
    def heterogeneous(self) -> bool:
        return len(set(self.placement)) > 1

    def key(self) -> tuple:
        """Value identity: the adaptive-variable choice / profile key."""
        return (
            self.kind, self.placement, self.shards, self.split,
            self.cuts, self.microbatches,
        )

    @classmethod
    def from_key(cls, key: tuple) -> "Strategy":
        kind, placement, shards, split, cuts, microbatches = key
        return cls(
            kind=kind, placement=tuple(placement), shards=tuple(shards),
            split=split, cuts=tuple(cuts), microbatches=int(microbatches),
        )

    @property
    def label(self) -> str:
        devices = ",".join(self.placement)
        if self.kind == "data":
            shards = "/".join(str(s) for s in self.shards) or "?"
            return f"data x{self.world} [{devices}] {self.split} ({shards})"
        stages = "|".join(str(c) for c in self.cuts)
        return f"pipe x{self.world} [{devices}] cuts {stages} m{self.microbatches}"


def balanced_shards(batch_size: int, world: int) -> tuple[int, ...]:
    """Largest-remainder even split; sums to ``batch_size`` exactly."""
    base, extra = divmod(batch_size, world)
    return tuple(base + (1 if i < extra else 0) for i in range(world))


def weighted_shards(
    batch_size: int, placement: tuple[str, ...], speed_us: dict[str, float],
) -> tuple[int, ...]:
    """Throughput-proportional split: faster classes take bigger shards.

    ``speed_us`` maps device class -> a per-batch time proxy (measured
    full-batch compute, or the analytic bound); shares are proportional
    to ``1/speed``.  Deterministic largest-remainder rounding with a
    one-sample floor per replica; sums to ``batch_size`` exactly.
    """
    inv = [1.0 / max(speed_us[cls], 1e-9) for cls in placement]
    total = sum(inv)
    raw = [batch_size * w / total for w in inv]
    shards = [max(1, int(r)) for r in raw]
    remainder = batch_size - sum(shards)
    # hand leftovers (or claw back overshoot) in largest-fraction order,
    # index-ordered on ties -- fully deterministic
    order = sorted(
        range(len(raw)), key=lambda i: (-(raw[i] - int(raw[i])), i)
    )
    i = 0
    while remainder != 0 and i < 10 * len(shards):
        pos = order[i % len(order)]
        if remainder > 0:
            shards[pos] += 1
            remainder -= 1
        elif shards[pos] > 1:
            shards[pos] -= 1
            remainder += 1
        i += 1
    return tuple(shards)


def _compositions(total: int, parts: int):
    """All ordered tuples of positive ints of length ``parts`` summing to
    ``total``, lexicographic -- the contiguous stage cuts of a stack."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def _placements_unordered(classes: list[str], counts: dict[str, int], size: int):
    """Replica placements: class multisets within fleet availability."""
    for combo in combinations_with_replacement(classes, size):
        if all(combo.count(cls) <= counts[cls] for cls in set(combo)):
            yield combo


def _placements_ordered(classes: list[str], counts: dict[str, int], size: int):
    """Stage placements: class sequences within fleet availability."""
    for combo in product(classes, repeat=size):
        if all(combo.count(cls) <= counts[cls] for cls in set(combo)):
            yield combo


def enumerate_strategies(
    fleet: FleetSpec,
    *,
    batch_size: int,
    num_layer_scopes: int,
    microbatches: int = 4,
    max_degree: int | None = None,
) -> list[Strategy]:
    """The full candidate space, in canonical (deterministic) order.

    Data strategies come first (by degree, then placement, even before
    weighted), then pipeline strategies (by stage count, cuts,
    placement).  The order is the exploration order: the adaptive
    variable's finalize breaks measured ties by first position, so
    pruned and exhaustive sweeps agree bit-for-bit only because both see
    the same sequence.

    Weighted splits are only emitted for heterogeneous placements (they
    equal the even split on a uniform one), and their shards stay
    unresolved until :func:`resolve_weighted_shards` fills them from the
    per-class calibration.
    """
    counts = fleet.class_counts()
    classes = sorted(counts)
    limit = min(fleet.world, batch_size)
    if max_degree is not None:
        limit = min(limit, max_degree)

    strategies: list[Strategy] = []
    for degree in range(1, limit + 1):
        for placement in _placements_unordered(classes, counts, degree):
            strategies.append(Strategy(
                kind="data", placement=tuple(placement),
                shards=balanced_shards(batch_size, degree), split=SPLIT_EVEN,
            ))
            if degree > 1 and len(set(placement)) > 1:
                strategies.append(Strategy(
                    kind="data", placement=tuple(placement),
                    shards=(), split=SPLIT_WEIGHTED,
                ))

    max_stages = min(num_layer_scopes, fleet.world)
    micro = max(1, min(microbatches, batch_size))
    for stages in range(2, max_stages + 1):
        for cuts in _compositions(num_layer_scopes, stages):
            for placement in _placements_ordered(classes, counts, stages):
                strategies.append(Strategy(
                    kind="pipeline", placement=tuple(placement),
                    cuts=cuts, microbatches=micro,
                ))
    return strategies


def resolve_weighted_shards(
    strategies: list[Strategy],
    batch_size: int,
    speed_us: dict[str, float],
) -> list[Strategy]:
    """Fill every weighted strategy's shards from the class calibration.

    ``speed_us`` is the measured (or analytic) full-batch compute time
    per device class; the same calibration must feed the bound and the
    measurement so the strategy's identity is fixed before exploration
    starts.  Returns a new list in the same order.
    """
    resolved = []
    for s in strategies:
        if s.kind == "data" and s.split == SPLIT_WEIGHTED and not s.shards:
            s = replace(
                s, shards=weighted_shards(batch_size, s.placement, speed_us)
            )
        resolved.append(s)
    return resolved
