"""Worker pools for the fleet strategy wave (mirrors ``parallel/pool.py``).

The fleet engine dispatches :class:`FleetTask` shards -- (ordinal,
strategy key) pairs -- to workers that rebuild the whole measurement
stack from a pickled :class:`FleetWorkerSpec` and return
:class:`FleetOutcome` rows in ordinal order.  Strategies cross the
process boundary **by value** (:meth:`Strategy.key`), never as objects,
and the spec carries the parent's calibration snapshot so workers start
from the same primitives the pre-ranker priced.

Determinism is the same contract the parallel engine's pool has: a
worker's measurements depend only on (spec, strategy key) -- fault
sub-states are keyed by primitive, not by worker or order -- so the
merged index is byte-identical for any worker count, including the
inline pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from .measure import FleetMeasurer
from .spec import FleetSpec
from .strategy import Strategy


@dataclass(frozen=True)
class FleetWorkerSpec:
    """Everything a worker needs to rebuild the measurer, picklable."""

    builder: object  # module-level model builder (pickled by reference)
    config: object
    fleet: FleetSpec
    use_astra: bool = False
    features: str = "FK"
    seed: int = 0
    faults: object = None
    #: parent-measured primitives (calibration + seed strategy), merged
    #: into each worker's index before its first task
    seed_entries: tuple = ()


@dataclass
class FleetTask:
    """One planned strategy measurement (canonical ordinal order)."""

    ordinal: int
    key: tuple  # Strategy.key()


@dataclass
class FleetOutcome:
    """One measured strategy plus the index delta it produced."""

    ordinal: int
    key: tuple
    per_sample_us: float
    step_us: float
    samples: int
    detail: dict = field(default_factory=dict)
    #: every (key, value) the measurement added -- primitives first,
    #: then the strategy entry -- merged first-writer-wins by the parent
    records: tuple = ()
    busy_s: float = 0.0
    worker_pid: int = 0
    spans: tuple = ()


class FleetWorkerState:
    """A live measurer inside one worker (or the caller, inline)."""

    def __init__(self, spec: FleetWorkerSpec):
        self.spec = spec
        self.measurer = FleetMeasurer(
            spec.builder, spec.config, spec.fleet,
            use_astra=spec.use_astra, features=spec.features,
            seed=spec.seed, faults=spec.faults,
        )
        self.measurer.index.merge(spec.seed_entries)


def run_shard(state: FleetWorkerState, tasks) -> list[FleetOutcome]:
    outcomes = []
    for task in tasks:
        start = time.perf_counter()
        before = set(state.measurer.index.snapshot())
        outcome = state.measurer.measure_strategy(Strategy.from_key(task.key))
        snapshot = state.measurer.index.snapshot()
        records = tuple(
            (key, value) for key, value in snapshot.items()
            if key not in before
        )
        outcomes.append(FleetOutcome(
            ordinal=task.ordinal,
            key=task.key,
            per_sample_us=outcome.per_sample_us,
            step_us=outcome.step_us,
            samples=outcome.samples,
            detail=outcome.detail,
            records=records,
            busy_s=time.perf_counter() - start,
            worker_pid=os.getpid(),
        ))
    return outcomes


class InlineFleetPool:
    """Single-process fallback executing shards in the caller."""

    kind = "inline"
    workers = 1

    def __init__(self, spec: FleetWorkerSpec):
        self._spec = spec
        self._state: FleetWorkerState | None = None

    def _ensure(self) -> FleetWorkerState:
        if self._state is None:
            self._state = FleetWorkerState(self._spec)
        return self._state

    def prewarm(self) -> None:
        return None

    def run_shard(self, tasks) -> Future:
        future: Future = Future()
        try:
            future.set_result(run_shard(self._ensure(), tasks))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def close(self) -> None:
        self._state = None


_STATE: FleetWorkerState | None = None


def _pool_init(payload: bytes) -> None:
    global _STATE
    _STATE = FleetWorkerState(pickle.loads(payload))


def _pool_warmup() -> bool:
    return _STATE is not None


def _pool_run_shard(tasks) -> list[FleetOutcome]:
    assert _STATE is not None, "worker used before initialization"
    return run_shard(_STATE, tasks)


class FleetProcessPool:
    """``ProcessPoolExecutor`` wrapper with spec-initialized workers."""

    kind = "process"

    def __init__(self, spec: FleetWorkerSpec, workers: int,
                 start_method: str | None = None):
        self.workers = workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        payload = pickle.dumps(spec)
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_pool_init,
            initargs=(payload,),
        )
        self._warmup: list[Future] = []

    def prewarm(self) -> None:
        self._warmup = [
            self._executor.submit(_pool_warmup) for _ in range(self.workers)
        ]

    def run_shard(self, tasks) -> Future:
        return self._executor.submit(_pool_run_shard, list(tasks))

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


def make_fleet_pool(spec: FleetWorkerSpec, workers: int,
                    start_method: str | None = None):
    """Best available pool; any process-pool failure degrades inline."""
    if workers <= 1:
        return InlineFleetPool(spec)
    try:
        return FleetProcessPool(spec, workers, start_method)
    except Exception:
        return InlineFleetPool(spec)
