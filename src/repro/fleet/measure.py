"""Measuring fleet strategies from shared, device-mangled primitives.

The measurer decomposes every strategy's step time into *primitives* --
per-device-class compute at a given shard size, per-scope stage times at
a given micro-batch -- and stores each primitive in the shared
:class:`~repro.core.profile_index.ProfileIndex` under a key that folds
the device class in (the per-device mangling of ``docs/performance.md``
lifted to fleets).  Two strategies that place the same subgraph on the
same device class share the measurement: the second one is free.

Everything is deterministic in (model, fleet, seed, fault plan).  Under
fault injection each primitive gets its own injector sub-state keyed by
a stable hash of the primitive key -- not by measurement order or worker
identity -- so a chaos search injects the same faults whether it runs
pruned or exhaustive, on one worker or eight.  That is what makes the
chaos stand-down test exact: same faulted primitives, same faulted
winner.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..baselines.native import native_plan
from ..core.measurement import QUARANTINED_US
from ..core.profile_index import ProfileIndex, mangle
from ..distributed.data_parallel import OVERLAP_FRACTION, gradient_bytes
from ..distributed.pipeline import _layer_scopes, attribute_to_scopes
from ..gpu.cost_model import unit_cost_us, units_cost_us
from ..obs.metrics import NULL_REGISTRY
from ..perf.signature import plan_signature
from ..runtime.executor import Executor
from .spec import FleetSpec
from .strategy import Strategy

#: the adaptive variable the wave engine explores
STRATEGY_VAR = "fleet.strategy"


def strategy_profile_key(context: tuple, strategy: Strategy) -> tuple:
    """The index key of one strategy's measured per-sample time -- the
    same key :class:`~repro.core.adaptive.AdaptiveVariable` derives for
    the choice, so the wave planner's index lookups and the measurer's
    records meet."""
    return mangle(context, (STRATEGY_VAR, strategy.key()))


@dataclass
class StrategyOutcome:
    """One fully measured (or index-hit) strategy."""

    strategy: Strategy
    step_us: float
    per_sample_us: float
    samples: int
    detail: dict = field(default_factory=dict)
    cached: bool = False


class FleetMeasurer:
    """Prices and measures strategies for one (model, fleet) pair."""

    def __init__(
        self,
        builder,
        config,
        fleet: FleetSpec,
        *,
        index: ProfileIndex | None = None,
        use_astra: bool = False,
        features: str = "FK",
        seed: int = 0,
        faults=None,
        metrics=None,
        inner_budget: int = 2000,
    ):
        if use_astra and faults is not None:
            raise ValueError(
                "inner-Astra compute and fleet fault injection are separate "
                "hardening paths; arm one at a time"
            )
        self.builder = builder
        self.config = config
        self.fleet = fleet
        self.index = index if index is not None else ProfileIndex()
        self.use_astra = use_astra
        self.features = features
        self.seed = seed
        self.faults = faults
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.inner_budget = inner_budget
        self.class_specs = fleet.class_specs()
        self._models: dict[int, object] = {}
        self._analytic_compute: dict[tuple, tuple[float, float]] = {}
        self._analytic_stage: dict[tuple, dict[str, float]] = {}

        full = self._model(config.batch_size)
        self.grad_bytes = gradient_bytes(full.graph)
        self.scopes: tuple[str, ...] = tuple(_layer_scopes(full.graph))
        digest = plan_signature(
            native_plan(full.graph, fuse_elementwise=True)
        ).digest[:12]
        #: every fleet key hangs off the job identity: the model's native
        #: plan signature plus the global batch -- jobs never collide
        self.context: tuple = ("fleet", digest, config.batch_size)

    # -- model / plan caches ------------------------------------------------

    def _model(self, batch: int):
        model = self._models.get(batch)
        if model is None:
            model = self.builder(self.config.scaled(batch_size=batch))
            self._models[batch] = model
        return model

    def profile_key(self, local: tuple) -> tuple:
        return mangle(self.context, local)

    # -- the analytic price sheet (feeds the perf pre-ranker) ---------------

    def analytic_compute_lo(self, cls: str, batch: int) -> float:
        """max(summed kernel durations, serialized launch overheads):
        both are walls the measured mini-batch cannot beat at base clock."""
        entry = self._analytic_compute.get((cls, batch))
        if entry is None:
            spec = self.class_specs[cls]
            plan = native_plan(self._model(batch).graph, fuse_elementwise=True)
            gpu = units_cost_us(plan.units, spec)
            cpu = units_cost_us(plan.units, spec, include_dispatch=True) - gpu
            entry = (gpu, cpu)
            self._analytic_compute[(cls, batch)] = entry
        gpu, cpu = entry
        return max(gpu, cpu)

    def analytic_stage_lo(self, cls: str, micro: int) -> dict[str, float]:
        """Per-scope analytic stage costs at ``micro``, attributed exactly
        like the measured :func:`stage_unit_times` -- equal at base clock."""
        sheet = self._analytic_stage.get((cls, micro))
        if sheet is None:
            spec = self.class_specs[cls]
            graph = self._model(micro).graph
            plan = native_plan(graph, fuse_elementwise=True)
            unit_us = {u.unit_id: unit_cost_us(u, spec) for u in plan.units}
            sheet = attribute_to_scopes(
                graph, plan, unit_us, spec.launch_overhead_us
            )
            self._analytic_stage[(cls, micro)] = sheet
        return sheet

    # -- fault sub-states ---------------------------------------------------

    def _injector(self, primitive: tuple):
        """A per-primitive injector sub-state, keyed by a stable hash of
        the primitive key.  Scheduled preemption is pre-discharged
        (``preempted=True``): fleet primitives model steady-state step
        measurement, and an aborted primitive would make the measured
        space depend on visit order."""
        if self.faults is None:
            return None
        from ..faults.injector import FaultInjector

        digest = hashlib.sha256(repr(primitive).encode()).digest()
        slot = int.from_bytes(digest[:4], "big") % 4096
        return FaultInjector.for_candidate(
            self.faults, base_minibatch=slot, preempted=True
        )

    # -- measured primitives ------------------------------------------------

    @property
    def _mode(self) -> str:
        return "astra" if self.use_astra else "native"

    def compute_us(self, cls: str, batch: int) -> float:
        """Measured mini-batch compute of the whole model on ``cls`` at
        ``batch`` -- the per-replica primitive of every data strategy."""
        key = self.profile_key(("compute", cls, batch, self._mode))
        cached = self.index.get(key)
        if cached is not None:
            return cached
        spec = self.class_specs[cls]
        model = self._model(batch)
        if self.use_astra:
            value = self._inner_astra(model, cls, batch)
        else:
            value = self._run_native(
                model.graph, spec, ("compute", cls, batch)
            )
        self.index.record(key, value)
        self.metrics.counter("fleet.measure.compute").inc()
        return value

    def _inner_astra(self, model, cls: str, batch: int) -> float:
        """Per-device inner Astra optimization: the full single-GPU
        exploration runs against the *shared* index under a device-mangled
        context, so every strategy placing this subgraph on this device
        class reuses the same fk measurements."""
        from ..core.session import AstraSession

        session = AstraSession(
            model, device=self.class_specs[cls], features=self.features,
            seed=self.seed, index=self.index,
            context=self.profile_key(("inner", cls, batch)),
        )
        try:
            report = session.optimize(
                max_minibatches=self.inner_budget, measure_native=False
            )
            return report.best_time_us
        finally:
            session.close()

    def _run_native(self, graph, spec, primitive: tuple) -> float:
        from ..faults.events import DeviceOOMError, KernelLaunchError

        executor = Executor(
            graph, spec, seed=self.seed, injector=self._injector(primitive)
        )
        try:
            return executor.run(
                native_plan(graph, fuse_elementwise=True)
            ).total_time_us
        except (DeviceOOMError, KernelLaunchError):
            self.metrics.counter("fleet.measure.quarantined").inc()
            return QUARANTINED_US

    def stage_us(self, cls: str, micro: int) -> dict[str, float]:
        """Measured per-scope stage times on ``cls`` at ``micro``, from a
        single executed mini-batch; shared across every cut that places
        any stage on this class."""
        keys = {
            scope: self.profile_key(("stage", cls, micro, scope))
            for scope in self.scopes
        }
        if all(key in self.index for key in keys.values()):
            return {scope: self.index.get(key) for scope, key in keys.items()}
        from ..faults.events import DeviceOOMError, KernelLaunchError
        from ..distributed.pipeline import stage_unit_times

        spec = self.class_specs[cls]
        graph = self._model(micro).graph
        executor = Executor(
            graph, spec, seed=self.seed,
            injector=self._injector(("stage", cls, micro)),
        )
        try:
            times = stage_unit_times(graph, spec, executor=executor)
        except (DeviceOOMError, KernelLaunchError):
            self.metrics.counter("fleet.measure.quarantined").inc()
            times = dict.fromkeys(self.scopes, QUARANTINED_US)
        for scope, key in keys.items():
            self.index.record(key, times.get(scope, 0.0))
        self.metrics.counter("fleet.measure.stage").inc()
        return {scope: times.get(scope, 0.0) for scope in self.scopes}

    def calibrate(self) -> dict[str, float]:
        """Full-batch compute per device class: the speed proxy weighted
        shards resolve against, and the d=1 strategies' own measurement
        (the calibration is never wasted work)."""
        return {
            cls: self.compute_us(cls, self.config.batch_size)
            for cls in sorted(self.class_specs)
        }

    # -- strategies ---------------------------------------------------------

    def measure_strategy(self, strategy: Strategy) -> StrategyOutcome:
        """Compose one strategy's step time from its primitives.

        The composition is closed-form; every measured quantity in it is
        a shared primitive.  The strategy's per-sample time is recorded
        under its adaptive-variable key so the wave planner sees it as
        measured.
        """
        key = strategy_profile_key(self.context, strategy)
        cached = key in self.index
        if strategy.kind == "data":
            outcome = self._measure_data(strategy)
        else:
            outcome = self._measure_pipeline(strategy)
        outcome.cached = cached
        if not cached:
            self.index.record(key, outcome.per_sample_us)
            self.metrics.counter("fleet.measure.strategies").inc()
        return outcome

    def _measure_data(self, strategy: Strategy) -> StrategyOutcome:
        devices = self.fleet.assign_devices(strategy.placement)
        replicas = []
        for cls, name, shard in zip(strategy.placement, devices, strategy.shards):
            replicas.append({
                "device": name,
                "device_class": cls,
                "shard": shard,
                "compute_us": self.compute_us(cls, shard),
            })
        beat = max(r["compute_us"] for r in replicas)
        world = strategy.world
        comm = exposed = 0.0
        if world > 1:
            comm = self.fleet.interconnect.allreduce_us(self.grad_bytes, world)
            hideable = min(comm * OVERLAP_FRACTION, beat * 2 / 3)
            exposed = comm - hideable
        step = beat + exposed
        samples = sum(strategy.shards)
        return StrategyOutcome(
            strategy=strategy,
            step_us=step,
            per_sample_us=step / samples,
            samples=samples,
            detail={
                "kind": "data",
                "replicas": replicas,
                "allreduce_us": comm,
                "exposed_comm_us": exposed,
                "beat_us": beat,
            },
        )

    def _measure_pipeline(self, strategy: Strategy) -> StrategyOutcome:
        micro = max(1, self.config.batch_size // strategy.microbatches)
        samples = micro * strategy.microbatches
        devices = self.fleet.assign_devices(strategy.placement)
        num_stages = len(strategy.cuts)
        stages = []
        start = 0
        for cls, name, width in zip(strategy.placement, devices, strategy.cuts):
            scopes = self.scopes[start:start + width]
            per_scope = self.stage_us(cls, micro)
            stages.append({
                "device": name,
                "device_class": cls,
                "scopes": scopes,
                "compute_us": sum(per_scope[s] for s in scopes),
            })
            start += width
        boundary = micro * self.config.hidden_size * 4
        transfer = 0.0
        if num_stages > 1:
            # every adjacent stage pair hands off on the same beat of a
            # full pipeline: the fabric carries S-1 concurrent transfers
            transfer = self.fleet.interconnect.contended_us(
                boundary, num_stages - 1
            )
        beat = max(s["compute_us"] for s in stages) + transfer
        step = (strategy.microbatches + num_stages - 1) * beat
        return StrategyOutcome(
            strategy=strategy,
            step_us=step,
            per_sample_us=step / samples,
            samples=samples,
            detail={
                "kind": "pipeline",
                "stages": stages,
                "microbatch": micro,
                "boundary_bytes": boundary,
                "transfer_us": transfer,
                "beat_us": beat,
            },
        )
