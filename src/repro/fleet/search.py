"""The fleet strategy search: partitioning as a wave-explored variable.

The partitioning strategy -- data-parallel degree, contiguous pipeline
cuts, per-stage device placement, batch-split mode -- becomes one
``parallel``-mode :class:`~repro.core.adaptive.AdaptiveVariable` whose
choices are :meth:`Strategy.key` values, explored by the same
:func:`~repro.parallel.engine.plan_wave` machinery that drives fk
exploration, against the same shared profile index.

Tractability comes in two gated layers before any strategy mini-batch is
spent:

1. the **admissible analytic bound** (``perf/ranker.py``): strategies
   whose closed-form lower bound exceeds the seed strategy's *measured*
   per-sample time are pruned -- provably winner-preserving, and stood
   down entirely whenever the bound's exactness preconditions fail
   (fault injector, autoboost clocks, inner-Astra compute);
2. an optional **learned top-k cut** (``learn/ranker.py``): a calibrated
   :class:`~repro.learn.model.FleetStrategyModel` keeps only the top-k
   predicted survivors plus the uncertainty band, standing down when
   unconfident, untrained for this fleet, or when layer 1 already stood
   down.

The seed strategy (best analytic bound) is measured first and is always
a survivor, so the search measures ``1 + |survivors|`` strategies out of
the full space; ``repro fleet --exhaustive`` disables both layers and
the equivalence tests pin bit-identical winners between the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.adaptive import MODE_PARALLEL, AdaptiveVariable, UpdateNode
from ..distributed.data_parallel import OVERLAP_FRACTION
from ..obs.metrics import NULL_REGISTRY
from ..parallel.engine import STATUS_EXHAUSTED, ParallelEngine, plan_wave
from ..perf.ranker import fleet_strategy_lo, prune_fleet_strategies
from .measure import STRATEGY_VAR, FleetMeasurer, strategy_profile_key
from .pool import FleetTask, FleetWorkerSpec, InlineFleetPool, make_fleet_pool
from .spec import DEFAULT_FLEET, FleetSpec
from .strategy import Strategy, enumerate_strategies, resolve_weighted_shards


class FleetEngine(ParallelEngine):
    """The wave engine re-pointed at strategy tasks.

    Dispatch, sharding, ordinal-order collection, telemetry and the
    degrade-to-inline fallback are all inherited; only the fallback
    pool's task shape differs.
    """

    def make_inline_pool(self, spec):
        return InlineFleetPool(spec)


@dataclass
class FleetSearchReport:
    """Everything one fleet search decided, measured, and skipped."""

    model: str
    fleet: str
    batch_size: int
    winner: Strategy
    winner_per_sample_us: float
    winner_step_us: float
    winner_detail: dict
    strategies_total: int
    strategies_measured: int
    strategies_pruned: int
    strategies_cut_learned: int
    measured_fraction: float
    #: why bound pruning stood down (None = it ran)
    standdown: str | None
    learned_standdown: str | None
    hetero_winner: bool
    best_homogeneous_us: float | None
    best_homogeneous_label: str | None
    #: True when the best-homogeneous figure is a measured time rather
    #: than an (admissible) analytic bound
    best_homogeneous_measured: bool = False
    calibration: dict = field(default_factory=dict)
    table: list = field(default_factory=list)
    engine: dict = field(default_factory=dict)
    workers: int = 1
    use_astra: bool = False
    exhaustive: bool = False

    def to_dict(self) -> dict:
        """JSON-safe form (strategy keys become nested lists)."""
        return {
            "model": self.model,
            "fleet": self.fleet,
            "batch_size": self.batch_size,
            "winner": {
                "label": self.winner.label,
                "key": _json_key(self.winner.key()),
                "per_sample_us": self.winner_per_sample_us,
                "step_us": self.winner_step_us,
                "heterogeneous": self.hetero_winner,
            },
            "strategies": {
                "total": self.strategies_total,
                "measured": self.strategies_measured,
                "pruned": self.strategies_pruned,
                "cut_learned": self.strategies_cut_learned,
                "measured_fraction": self.measured_fraction,
            },
            "standdown": self.standdown,
            "learned_standdown": self.learned_standdown,
            "best_homogeneous": {
                "label": self.best_homogeneous_label,
                "per_sample_us": self.best_homogeneous_us,
                "measured": self.best_homogeneous_measured,
            },
            "calibration": dict(self.calibration),
            "table": [
                {k: v for k, v in row.items() if k != "features"}
                for row in self.table
            ],
            "engine": dict(self.engine),
            "workers": self.workers,
            "use_astra": self.use_astra,
            "exhaustive": self.exhaustive,
        }


def _json_key(key) -> list:
    return [list(_json_key(k)) if isinstance(k, tuple) else k for k in key]


def run_fleet_search(
    builder,
    config,
    fleet: FleetSpec = DEFAULT_FLEET,
    *,
    model_name: str = "",
    workers: int = 1,
    exhaustive: bool = False,
    use_astra: bool = False,
    learned=None,
    faults=None,
    seed: int = 0,
    microbatches: int = 4,
    max_degree: int | None = None,
    metrics=None,
    tracer=None,
) -> FleetSearchReport:
    """Search the full strategy space for one (model, fleet) pair.

    Deterministic in every argument; ``workers`` changes wall-clock
    only, never the winner (the equivalence tests pin this).
    """
    metrics = metrics if metrics is not None else NULL_REGISTRY
    measurer = FleetMeasurer(
        builder, config, fleet,
        use_astra=use_astra, seed=seed, faults=faults, metrics=metrics,
    )
    batch = config.batch_size
    strategies = enumerate_strategies(
        fleet, batch_size=batch, num_layer_scopes=len(measurer.scopes),
        microbatches=microbatches, max_degree=max_degree,
    )

    # calibration: full-batch compute per class -- resolves the weighted
    # shards and doubles as the d=1 strategies' compute primitive
    calibration = measurer.calibrate()
    strategies = resolve_weighted_shards(strategies, batch, calibration)

    bounds = [
        fleet_strategy_lo(
            s,
            batch_size=batch,
            grad_bytes=measurer.grad_bytes,
            hidden_size=config.hidden_size,
            interconnect=fleet.interconnect,
            scopes=measurer.scopes,
            compute_lo=measurer.analytic_compute_lo,
            stage_lo=measurer.analytic_stage_lo,
            overlap_fraction=OVERLAP_FRACTION,
        )
        for s in strategies
    ]

    # seed: the best-bound strategy, measured up front -- its measured
    # per-sample time is the cut line every other bound must beat
    seed_idx = min(range(len(strategies)), key=lambda i: (bounds[i], i))
    seed_outcome = measurer.measure_strategy(strategies[seed_idx])
    best0 = seed_outcome.per_sample_us

    standdown = None
    pruned = 0
    if exhaustive:
        survivors = list(range(len(strategies)))
    else:
        survivors, standdown = prune_fleet_strategies(
            strategies, bounds, best0,
            metrics=metrics, injector=faults,
            clock_modes=fleet.clock_modes(), use_astra=use_astra,
        )
        pruned = len(strategies) - len(survivors)

    feature_rows = _feature_rows(measurer, strategies, bounds, fleet)

    learned_standdown = None
    cut_learned = 0
    if learned is not None and not exhaustive:
        ranker = _bind_fleet_ranker(learned, metrics)
        local_rows = [feature_rows[i] for i in survivors]
        kept_local, learned_standdown = ranker.cut(
            local_rows, fleet_name=fleet.name, exact=standdown is None,
        )
        kept = [survivors[j] for j in kept_local]
        if seed_idx not in kept:
            # the seed is already measured: keeping it is free and makes
            # the cut line's own strategy un-droppable
            kept = sorted(set(kept) | {seed_idx})
        cut_learned = len(survivors) - len(kept)
        survivors = kept

    # -- the wave: one adaptive variable over the surviving keys ------------
    engine_summary: dict = {}
    if len(survivors) > 1:
        var = AdaptiveVariable(
            STRATEGY_VAR,
            choices=[strategies[i].key() for i in survivors],
            metric_kind="end_to_end",
        )
        tree = UpdateNode(name="fleet", mode=MODE_PARALLEL, children=[var])
        tree.initialize()
        spec = FleetWorkerSpec(
            builder=builder, config=config, fleet=fleet,
            use_astra=use_astra, seed=seed, faults=faults,
            seed_entries=tuple(measurer.index.snapshot().items()),
        )
        pool = make_fleet_pool(spec, workers)
        engine = FleetEngine(pool, metrics=metrics, tracer=tracer)
        engine.pool_spec = spec
        engine.prewarm()
        try:
            advance_first = False
            while True:
                entries, status = plan_wave(
                    tree, measurer.index, measurer.context,
                    samples=1, spent=0, budget=1 << 30, limit=1 << 30,
                    advance_first=advance_first,
                )
                tasks = [
                    FleetTask(ordinal=n, key=e.assignment[STRATEGY_VAR])
                    for n, e in enumerate(entries) if e.kind == "measure"
                ]
                if tasks:
                    for outcome in engine.measure_wave(tasks):
                        measurer.index.merge(outcome.records)
                if status == STATUS_EXHAUSTED:
                    break
                advance_first = True
        finally:
            engine.close()
        var.finalize(measurer.index, measurer.context)
        winner = Strategy.from_key(var.value)
        engine_summary = engine.summary()
    else:
        winner = strategies[seed_idx]

    # all primitives are cached now: recomposing the winner is free and
    # yields the canonical detail dict whichever worker measured it
    winner_outcome = measurer.measure_strategy(winner)

    measured = metrics_safe_count(measurer, strategies)
    table = []
    for i, strategy in enumerate(strategies):
        value = measurer.index.get(
            strategy_profile_key(measurer.context, strategy)
        )
        table.append({
            "label": strategy.label,
            "kind": strategy.kind,
            "heterogeneous": strategy.heterogeneous,
            "bound_us": bounds[i],
            "per_sample_us": value,
            "pruned": i not in survivors and value is None,
            "features": feature_rows[i],
        })

    homo_label = homo_us = None
    homo_measured = False
    homo_rows = [r for r in table if not r["heterogeneous"]]
    measured_homo = [r for r in homo_rows if r["per_sample_us"] is not None]
    if measured_homo:
        best = min(measured_homo, key=lambda r: r["per_sample_us"])
        homo_label, homo_us, homo_measured = (
            best["label"], best["per_sample_us"], True,
        )
    elif homo_rows:
        best = min(homo_rows, key=lambda r: r["bound_us"])
        homo_label, homo_us = best["label"], best["bound_us"]

    metrics.gauge("fleet.strategies.total").set(len(strategies))
    metrics.gauge("fleet.strategies.measured").set(measured)
    metrics.gauge("fleet.strategies.pruned").set(pruned)
    metrics.gauge("fleet.strategies.cut_learned").set(cut_learned)
    metrics.gauge("fleet.search.winner_hetero").set(
        1 if winner.heterogeneous else 0
    )
    metrics.gauge("fleet.search.best_per_sample_us").set(
        winner_outcome.per_sample_us
    )
    if tracer is not None:
        tracer.instant(
            "fleet/winner",
            strategy=winner.label,
            per_sample_us=winner_outcome.per_sample_us,
            measured=measured, total=len(strategies),
        )

    return FleetSearchReport(
        model=model_name,
        fleet=fleet.name,
        batch_size=batch,
        winner=winner,
        winner_per_sample_us=winner_outcome.per_sample_us,
        winner_step_us=winner_outcome.step_us,
        winner_detail=winner_outcome.detail,
        strategies_total=len(strategies),
        strategies_measured=measured,
        strategies_pruned=pruned,
        strategies_cut_learned=cut_learned,
        measured_fraction=measured / len(strategies) if strategies else 0.0,
        standdown=standdown,
        learned_standdown=learned_standdown,
        hetero_winner=winner.heterogeneous,
        best_homogeneous_us=homo_us,
        best_homogeneous_label=homo_label,
        best_homogeneous_measured=homo_measured,
        calibration=calibration,
        table=table,
        engine=engine_summary,
        workers=workers,
        use_astra=use_astra,
        exhaustive=exhaustive,
    )


def metrics_safe_count(measurer: FleetMeasurer, strategies: list[Strategy]) -> int:
    """How many strategies ended up with a measured per-sample entry."""
    return sum(
        1 for s in strategies
        if strategy_profile_key(measurer.context, s) in measurer.index
    )


def _feature_rows(measurer, strategies, bounds, fleet) -> list[list[float]]:
    """Analytic feature vectors for the learned fleet ranker -- free."""
    from ..learn.features import fleet_strategy_features

    rows = []
    for strategy, bound in zip(strategies, bounds):
        if strategy.kind == "data":
            world = strategy.world
            comm_bytes = (
                measurer.grad_bytes * 2.0 * (world - 1) / world
                if world > 1 else 0.0
            )
            exposed_lo = (
                fleet.interconnect.allreduce_us(measurer.grad_bytes, world)
                * (1.0 - OVERLAP_FRACTION) if world > 1 else 0.0
            )
            boundary = 0.0
            shares = [
                measurer.analytic_compute_lo(cls, shard)
                for cls, shard in zip(strategy.placement, strategy.shards)
            ]
        else:
            micro = max(1, measurer.config.batch_size // strategy.microbatches)
            boundary = micro * measurer.config.hidden_size * 4
            comm_bytes = boundary * (len(strategy.cuts) - 1)
            exposed_lo = fleet.interconnect.contended_us(int(boundary), 1)
            shares = []
            start = 0
            for cls, width in zip(strategy.placement, strategy.cuts):
                sheet = measurer.analytic_stage_lo(cls, micro)
                shares.append(sum(
                    sheet.get(s, 0.0)
                    for s in measurer.scopes[start:start + width]
                ))
                start += width
        rows.append(fleet_strategy_features(
            strategy,
            bound_us=bound,
            exposed_lo_us=exposed_lo,
            comm_bytes=comm_bytes,
            boundary_bytes=boundary,
            stage_shares=shares,
            class_specs=measurer.class_specs,
        ))
    return rows


def _bind_fleet_ranker(learned, metrics):
    """Materialize whatever the caller configured into a ranker."""
    from ..learn.model import FleetStrategyModel
    from ..learn.ranker import FleetStrategyRanker

    if isinstance(learned, FleetStrategyRanker):
        learned.metrics = metrics
        return learned
    if isinstance(learned, FleetStrategyModel):
        return FleetStrategyRanker(learned, metrics=metrics)
    if isinstance(learned, str):
        text = learned.lstrip()
        if text.startswith("{"):
            return FleetStrategyRanker(
                FleetStrategyModel.loads(learned), metrics=metrics
            )
        return FleetStrategyRanker(
            FleetStrategyModel.load_path(learned), metrics=metrics
        )
    raise TypeError(
        f"cannot bind a fleet ranker from {type(learned).__name__}"
    )
