"""Profile index: measurement store with context-mangled keys.

Section 4.6: "the mechanism that Astra uses to manage different forms of
exploration is intelligent indexing of profile data, and mangling the key
to this index helps dynamically control whether to re-run an instance of
the exploration or not."

A key is a tuple ``context + local``: the local part identifies the
adaptive variable and its choice (e.g. ``("fusion", group_id, chunk)``),
and the context prefix carries every higher-level binding the measurement
depends on (allocation strategy, stream mapping, input bucket).  Exploring
under a new context misses in the index and triggers re-measurement;
returning to an old context hits and costs nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

Key = tuple


def mangle(context: Key, local: Key) -> Key:
    """Prefix a local profile key with its context (section 4.6)."""
    return tuple(context) + tuple(local)


@dataclass
class ProfileEntry:
    value: float
    hits: int = 1


class ProfileIndex:
    """Measurement store.  Values are microseconds; smaller is better."""

    def __init__(self) -> None:
        self._store: dict[Key, ProfileEntry] = {}
        self.lookups = 0
        self.misses = 0

    def record(self, key: Key, value: float) -> None:
        entry = self._store.get(key)
        if entry is None:
            self._store[key] = ProfileEntry(value)
        else:
            # deterministic hardware: repeated measurements agree; keep the
            # latest (identical in base-clock mode, jittery under autoboost)
            entry.value = value
            entry.hits += 1

    def merge(self, measurements) -> dict:
        """Merge ``(key, value)`` pairs, in the order given, into the store.

        This is the canonical write path for worker-produced measurements
        (and for the wirer's own recording): iteration order is insertion
        order, so merging in candidate order reproduces a serial run's
        store byte for byte.  Semantics differ from :meth:`record` in two
        deliberate ways:

        * **dedupe** -- a key that is already present is skipped
          (first-writer-wins), never re-recorded: two workers measuring
          the same configuration must not bump its hit count twice;
        * **quarantine is sticky** -- an entry holding the quarantine
          sentinel (``QUARANTINED_US``) is never overwritten by a fresh
          sample: the sentinel means *this configuration kept faulting
          under the active policy*, and a worker that happened to get a
          clean sample later must not resurrect it behind the wirer's
          back.

        Returns ``{"merged", "duplicates", "quarantine_protected"}``
        counts for the engine's merge metrics.
        """
        from .measurement import QUARANTINED_US

        merged = duplicates = protected = 0
        items = (
            measurements.items()
            if hasattr(measurements, "items") else measurements
        )
        for key, value in items:
            existing = self._store.get(key)
            if existing is not None:
                if existing.value == QUARANTINED_US and value != QUARANTINED_US:
                    protected += 1
                else:
                    duplicates += 1
                continue
            self._store[key] = ProfileEntry(value)
            merged += 1
        return {
            "merged": merged,
            "duplicates": duplicates,
            "quarantine_protected": protected,
        }

    def get(self, key: Key) -> float | None:
        self.lookups += 1
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        return entry.value

    def __contains__(self, key: Key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    # -- observability -------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.lookups - self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`get` calls answered from the store."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._store),
            "lookups": self.lookups,
            "misses": self.misses,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
        }

    def observe_into(self, registry) -> None:
        """Publish entry count and hit rate as gauges into a
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        for name, value in self.stats().items():
            registry.gauge(f"profile_index.{name}").set(value)

    def best_under(self, prefix: Key) -> tuple[Key, float] | None:
        """Smallest value among keys sharing ``prefix`` (diagnostics)."""
        best: tuple[Key, float] | None = None
        plen = len(prefix)
        for key, entry in self._store.items():
            if key[:plen] == tuple(prefix):
                if best is None or entry.value < best[1]:
                    best = (key, entry.value)
        return best

    def snapshot(self) -> dict[Key, float]:
        return {k: e.value for k, e in self._store.items()}

    # -- persistence --------------------------------------------------------
    #
    # A training job that restarts (preemption, checkpoint/resume) should
    # not pay for exploration twice: persisting the index lets the next run
    # re-wire from measurements alone.  Keys are tuples of primitives, so a
    # JSON list encoding round-trips exactly.

    def dumps(self) -> str:
        entries = [
            {"key": list(key), "value": entry.value, "hits": entry.hits}
            for key, entry in self._store.items()
        ]
        return json.dumps({"version": 1, "entries": entries})

    @classmethod
    def loads(cls, text: str) -> "ProfileIndex":
        data = json.loads(text)
        if data.get("version") != 1:
            raise ValueError(f"unsupported profile-index version {data.get('version')}")
        index = cls()
        for entry in data["entries"]:
            index._store[untuple(entry["key"])] = ProfileEntry(
                entry["value"], entry["hits"]
            )
        return index


def untuple(part):
    """Invert JSON's tuple->list coercion at every nesting level.

    Mangled keys nest arbitrarily deep (a context may itself embed mangled
    keys, e.g. a strategy key holding contiguity-group tuples), so a
    single-level conversion silently produces keys that never match again.
    """
    if isinstance(part, list):
        return tuple(untuple(item) for item in part)
    return part
