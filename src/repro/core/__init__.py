"""Astra core: the paper's contribution.

Enumerator (static analysis -> update tree of adaptive variables),
custom-wirer (one configuration per training mini-batch, fine-grained
profiling, profile-index-driven pruning), and the public AstraSession API.
"""

from .adaptive import (
    AdaptiveVariable,
    MODE_EXHAUSTIVE,
    MODE_PARALLEL,
    MODE_PREFIX,
    UpdateNode,
    count_configurations,
)
from .allocation import AllocationStrategy, enumerate_strategies, build_arena_plan
from .enumerator import AstraFeatures, BuiltPlan, Enumerator
from .epochs import Epoch, EpochPartition, partition_epochs
from .fusion import (
    FusionAnalysis,
    FusionGroup,
    FusionMember,
    Requirement,
    analyse_fusion,
    detect_ladders,
    provenance,
)
from .profile_index import ProfileIndex, mangle
from .session import AstraSession, SessionReport
from .wirer import AstraReport, CustomWirer, PhaseStats

__all__ = [
    "AdaptiveVariable", "MODE_EXHAUSTIVE", "MODE_PARALLEL", "MODE_PREFIX",
    "UpdateNode", "count_configurations",
    "AllocationStrategy", "enumerate_strategies", "build_arena_plan",
    "AstraFeatures", "BuiltPlan", "Enumerator",
    "Epoch", "EpochPartition", "partition_epochs",
    "FusionAnalysis", "FusionGroup", "FusionMember", "Requirement",
    "analyse_fusion", "detect_ladders", "provenance",
    "ProfileIndex", "mangle",
    "AstraSession", "SessionReport",
    "AstraReport", "CustomWirer", "PhaseStats",
]

from .bucketing import BucketedReport, run_bucketed

__all__ += ["BucketedReport", "run_bucketed"]

from .recompute import (
    BatchDecision,
    RecomputePlan,
    RecomputePlanner,
    Segment,
    best_batch_under_budget,
    estimate_memory,
)

__all__ += [
    "BatchDecision", "RecomputePlan", "RecomputePlanner", "Segment",
    "best_batch_under_budget", "estimate_memory",
]

from .wirer import Amortization

__all__ += ["Amortization"]

from .measurement import (
    QUARANTINED_US,
    ROBUST,
    TRUSTING,
    MeasurementPolicy,
    mad,
    median,
    reject_outliers,
    robust_min,
)

__all__ += [
    "MeasurementPolicy", "TRUSTING", "ROBUST", "QUARANTINED_US",
    "median", "mad", "reject_outliers", "robust_min",
]
