"""The custom-wirer: Astra's runtime half.

Section 4.7: takes the enumerator's templated schedules, runs one
configuration per training mini-batch (work-conserving exploration:
every exploration mini-batch still advances training), feeds fine-grained
measurements into the profile index, drives the update tree, and finally
custom-wires the job to the best configuration found.

Exploration proceeds per allocation strategy (the hierarchical fork of
section 4.5.2): within each strategy, a fusion/kernel phase (parallel
exploration over independent variables), then a stream phase (barrier +
prefix exploration), then the per-strategy best configurations are
compared end to end.

The wirer is hardened against the fault classes in :mod:`repro.faults`:
measurements can be taken min-of-k with MAD outlier rejection
(:class:`~repro.core.measurement.MeasurementPolicy`), mini-batches
aborted by transient faults are retried with bounded backoff (and the
re-executed schedule is re-validated by :mod:`repro.check`),
configurations that keep faulting are quarantined out of the search
space, allocation strategies whose arenas cannot fit usable device
memory are pruned, a run that cannot make progress degrades gracefully
to the native plan, and a preempted run checkpoints its exploration
state (see :mod:`repro.faults.checkpoint`) so a restart resumes instead
of re-exploring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.checkpoint import ExplorationCheckpoint
from ..faults.events import (
    DeviceOOMError,
    FaultError,
    PreemptionError,
)
from ..gpu.device import GPUSpec
from ..ir.graph import Graph
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from ..obs.provenance import NULL_PROVENANCE
from ..obs.report import KIND_COMPARE, KIND_EXPLORE, KIND_PRODUCTION, NULL_REPORTER, RunReporter
from ..obs.trace import NULL_TRACER
from ..perf.cache import LoweringCache
from ..perf.ranker import FastPath, prune_fk_tree
from ..perf.timers import NULL_CLOCK
from ..runtime.executor import Executor, MiniBatchResult
from ..runtime.plan import ExecutionPlan
from .adaptive import AdaptiveVariable, UpdateNode
from .allocation import AllocationStrategy
from .enumerator import AstraFeatures, BuiltPlan, Enumerator
from .epochs import EpochPartition
from .measurement import QUARANTINED_US, TRUSTING, MeasurementPolicy, robust_min
from .profile_index import ProfileIndex, mangle

#: sentinel distinguishing "variable never assigned" from any real choice
_UNSET = object()


@dataclass
class PhaseStats:
    name: str
    minibatches: int = 0
    index_hits: int = 0

    @property
    def index_hit_rate(self) -> float:
        """Fraction of this phase's configurations answered from the
        profile index instead of spending a training mini-batch."""
        total = self.minibatches + self.index_hits
        return self.index_hits / total if total else 0.0


@dataclass
class AstraReport:
    """Outcome of one optimization run."""

    best_plan: ExecutionPlan
    best_time_us: float
    best_strategy: AllocationStrategy
    configs_explored: int
    exploration_time_us: float
    phases: list[PhaseStats]
    profile_entries: int
    #: mean fraction of mini-batch time spent on profiling events
    profiling_overhead: float
    #: per-strategy best end-to-end times
    strategy_times: dict[int, float]
    #: chosen assignment of every adaptive variable
    assignment: dict[str, object] = field(default_factory=dict)
    #: per exploration mini-batch: (phase name, mini-batch time in us);
    #: the work-conservation record -- every entry was real training work
    timeline: list[tuple[str, float]] = field(default_factory=list)
    #: True when the wirer fell back to the native plan because no
    #: explored strategy could make progress (see docs/robustness.md)
    degraded: bool = False
    #: injected-fault accounting from the fault injector's ledger
    fault_summary: dict = field(default_factory=dict)
    #: arena footprint of the chosen plan vs device capacity
    memory: dict = field(default_factory=dict)
    #: fast-path accounting: compilation-cache stats, pruning counts
    #: (see docs/performance.md)
    fast_path: dict = field(default_factory=dict)
    #: warm-start accounting: entries seeded from a ProfileStore or a
    #: serve daemon before exploration began (see docs/serving.md)
    warm: dict = field(default_factory=dict)
    #: exploration decision history (candidates, decisive measurements,
    #: prune verdicts, quarantines); NULL_PROVENANCE unless requested
    provenance: object = NULL_PROVENANCE

    def amortization(self, native_time_us: float) -> "Amortization":
        """How quickly the exploration pays for itself.

        Exploration mini-batches are slower than the final custom-wired
        plan but still do real training work; relative to running native
        forever, the extra cost is recouped after a number of
        steady-state mini-batches (the paper runs "a few thousand out of
        millions", section 4.2).
        """
        explored = sum(t for _phase, t in self.timeline)
        native_equivalent = native_time_us * len(self.timeline)
        overhead_vs_native = explored - native_equivalent
        gain_per_batch = native_time_us - self.best_time_us
        breakeven = (
            overhead_vs_native / gain_per_batch if gain_per_batch > 0 else float("inf")
        )
        return Amortization(
            exploration_minibatches=len(self.timeline),
            exploration_time_us=explored,
            overhead_vs_native_us=max(0.0, overhead_vs_native),
            breakeven_minibatches=max(0.0, breakeven),
        )


@dataclass
class Amortization:
    """Cost/benefit of the online exploration vs running native."""

    exploration_minibatches: int
    exploration_time_us: float
    overhead_vs_native_us: float
    #: steady-state mini-batches until the exploration overhead is repaid
    breakeven_minibatches: float


class CustomWirer:
    """Runs the online exploration for one traced graph on one device."""

    def __init__(
        self,
        graph: Graph,
        device: GPUSpec,
        features: AstraFeatures,
        seed: int = 0,
        context: tuple = (),
        index: ProfileIndex | None = None,
        metrics: MetricsRegistry | None = None,
        reporter: RunReporter | None = None,
        tracer=None,
        validate: bool = False,
        policy: MeasurementPolicy | None = None,
        faults=None,
        checkpoint_path: str | None = None,
        fast: FastPath | None = None,
        clock=None,
        workers: int | None = None,
        parallel=None,
        provenance=None,
        learned=None,
    ):
        self.graph = graph
        self.device = device
        self.features = features
        self.seed = seed
        self.index = index if index is not None else ProfileIndex()
        self.base_context = context
        # observability hooks; null objects when not requested, so the
        # instrumented paths cost nothing and change nothing when disabled
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.reporter = reporter if reporter is not None else NULL_REPORTER
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.provenance = provenance if provenance is not None else NULL_PROVENANCE
        # fast path (docs/performance.md): compilation caching is on by
        # default (bit-identical lowering by construction); cost-model
        # pruning is opt-in at this layer, the CLI flips it on
        self.fast = fast if fast is not None else FastPath()
        self.clock = clock if clock is not None else NULL_CLOCK
        # learned fast path (docs/learning.md): a trained cost-model
        # artifact (path, JSON text, model, or pre-bound ranker) prunes
        # the fk space down to its top-k + uncertainty band.  A corrupt
        # or stale artifact is refused here -- counted, recorded in the
        # report, and the run falls back to the exact paths above
        self.learned = None
        self._learned_rejected: str | None = None
        if learned is not None:
            from ..learn.model import ModelArtifactError, StaleModelError
            from ..learn.ranker import LearnedRanker

            try:
                self.learned = LearnedRanker.bind(learned, metrics=self.metrics)
            except StaleModelError as exc:
                self._learned_rejected = str(exc)
                self.metrics.counter("learn.artifact_stale").inc()
                self.metrics.counter("learn.artifact_rejected").inc()
            except ModelArtifactError as exc:
                self._learned_rejected = str(exc)
                self.metrics.counter("learn.artifact_rejected").inc()
        # validated execution: every explored configuration is statically
        # checked (repro.check) before it runs; violations surface as
        # metrics counters and run-report records, then abort the run
        self.validate = validate
        # measurement policy + fault injection (docs/robustness.md); the
        # defaults -- single trusting sample, no injector -- reproduce the
        # paper's base-clock behavior exactly
        self.policy = policy if policy is not None else TRUSTING
        self.faults = faults
        self.injector = (
            faults.injector() if faults is not None and faults.specs else None
        )
        self.checkpoint_path = checkpoint_path
        # parallel engine (docs/performance.md): stood up before the
        # enumerator so worker-process startup overlaps the parent's own
        # static analysis; workers=None keeps the serial path untouched
        self.parallel_config = None
        self.engine = None
        if workers is not None or parallel is not None:
            from ..parallel import ParallelConfig, ParallelEngine, make_pool
            from ..parallel.wire import WorkerSpec

            self.parallel_config = (
                parallel if parallel is not None
                else ParallelConfig(workers=max(1, workers))
            )
            spec = WorkerSpec(
                graph=graph, device=device, features=features, seed=seed,
                validate=validate, policy=self.policy, fast=self.fast,
                fault_plan=faults, trace=self.tracer.enabled,
            )
            pool = make_pool(
                spec, self.parallel_config.workers,
                self.parallel_config.start_method,
            )
            self.engine = ParallelEngine(
                pool, metrics=self.metrics, tracer=self.tracer
            )
            self.engine.pool_spec = spec
            self.engine.prewarm()
        with self.clock.phase("enumerate"):
            self.enumerator = Enumerator(
                graph, device, features,
                metrics=self.metrics, cache_units=self.fast.cache,
            )
        self.cache = (
            LoweringCache(metrics=self.metrics) if self.fast.cache else None
        )
        self.executor = Executor(
            graph, device, seed=seed, validate=validate, metrics=self.metrics,
            injector=self.injector, cache=self.cache, clock=self.clock,
        )
        self._choices_total = 0
        self._choices_pruned = 0
        self._overhead_samples: list[float] = []
        self._timeline: list[tuple[str, float]] = []
        self._last_assignment: dict[str, object] = {}
        self._best_so_far = float("inf")
        #: mini-batches spent by a prior (checkpointed) incarnation
        self._prior_spent = 0
        self._phase_carry: dict[str, tuple[int, int]] = {}
        #: full-measurement failures per configuration key (quarantine)
        self._fault_strikes: dict[tuple, int] = {}
        self._preempted_at: int | None = None
        self._spent_this_run = 0
        self._all_phases: list[PhaseStats] = []
        #: warm-start accounting (filled by :meth:`warm_start`)
        self._warm: dict = {}

    # -- warm start ---------------------------------------------------------

    def warm_start(self, measurements, source: str, digest: str | None = None) -> int:
        """Seed the profile index with another run's measurements.

        Must be called before :meth:`optimize`.  Goes through
        :meth:`ProfileIndex.merge`, so seeding is first-writer-wins and
        idempotent: keys this wirer already holds (a restored
        checkpoint, an earlier warm source) keep their values.  Every
        phase consults the index before spending a mini-batch, so a
        fully seeded exploration converges to the identical winner with
        index hits instead of measurements -- the cross-job counterpart
        of checkpoint resume (see docs/serving.md).

        Returns the number of entries actually seeded and records the
        event in the metrics registry and the provenance log.
        """
        counts = self.index.merge(measurements)
        seeded = counts["merged"]
        self._warm["digest"] = digest
        self._warm.setdefault("sources", []).append({
            "source": source,
            "seeded_entries": seeded,
            "duplicates": counts["duplicates"],
        })
        self._warm["seeded_entries"] = (
            self._warm.get("seeded_entries", 0) + seeded
        )
        if seeded:
            self.metrics.counter("warm.seeded_entries").inc(seeded)
            self.metrics.counter(f"warm.hits.{source}").inc()
            self.provenance.warm_seeded(source, seeded, digest)
            self.tracer.instant("warm-start", entries=seeded, source=source)
        else:
            self.metrics.counter(f"warm.misses.{source}").inc()
        return seeded

    # -- checkpointing ------------------------------------------------------

    def signature(self) -> dict:
        """Fingerprint of (graph, device, features, seed): what must match
        for a checkpoint's index keys to be meaningful here."""
        return {
            "graph_nodes": len(self.graph.nodes),
            "graph_flops": float(self.graph.total_flops()),
            "device": self.device.name,
            "features": repr(self.features),
            "seed": self.seed,
            "context": repr(self.base_context),
            # pruning reshapes the explored space; a checkpoint from a
            # pruned run must not resume into an exhaustive one (or vice
            # versa) -- the tree indices would mean different choices
            "fast": repr(self.fast),
            # same argument for the learned ranker: present only when a
            # model is bound, so learned and unlearned checkpoints never
            # resume each other, and neither do two different artifacts
            **(
                {"learned": self.learned.model.fingerprint}
                if self.learned is not None else {}
            ),
            # with a fault injector, parallel runs draw per-candidate RNG
            # substreams instead of the serial run-level stream, so a
            # checkpoint must not cross the serial/parallel boundary.
            # Worker *count* is deliberately absent: results are
            # worker-count independent by construction, so any parallel
            # run may resume any other parallel run's checkpoint.
            "workers": "parallel" if self.engine is not None else "serial",
        }

    def checkpoint_state(
        self, preempted_at: int | None = None, completed: bool = False
    ) -> ExplorationCheckpoint:
        import json as _json

        best = self._best_so_far
        return ExplorationCheckpoint(
            signature=self.signature(),
            index_doc=_json.loads(self.index.dumps()),
            total_spent=self._prior_spent + self._spent_this_run,
            timeline=list(self._timeline),
            overhead_samples=list(self._overhead_samples),
            best_so_far=None if best == float("inf") else best,
            phase_carry={
                stats.name: (stats.minibatches, stats.index_hits)
                for stats in self._all_phases
            },
            simulator_rng=self.executor._simulator.rng_state(),
            injector_state=(
                self.injector.state() if self.injector is not None else None
            ),
            preempted_at=preempted_at,
            completed=completed,
        )

    def restore(self, checkpoint: ExplorationCheckpoint) -> None:
        """Adopt a prior incarnation's exploration state.

        Must be called before :meth:`optimize`.  The profile index, spent
        budget, work-conservation timeline, and RNG streams all continue
        where the preempted run stopped."""
        checkpoint.check_signature(self.signature())
        self.index = checkpoint.profile_index()
        self._prior_spent = checkpoint.total_spent
        self._timeline = list(checkpoint.timeline)
        self._overhead_samples = list(checkpoint.overhead_samples)
        if checkpoint.best_so_far is not None:
            self._best_so_far = checkpoint.best_so_far
        self._phase_carry = dict(checkpoint.phase_carry)
        if checkpoint.simulator_rng is not None:
            self.executor._simulator.set_rng_state(checkpoint.simulator_rng)
        if checkpoint.injector_state is not None and self.injector is not None:
            self.injector.restore(checkpoint.injector_state)
        self.metrics.counter("recovery.resumed").inc()
        self.tracer.instant(
            "checkpoint/restored", minibatches=checkpoint.total_spent
        )

    def _save_checkpoint(
        self, preempted_at: int | None = None, completed: bool = False
    ) -> str | None:
        if self.checkpoint_path is None:
            return None
        self.checkpoint_state(preempted_at, completed).save(self.checkpoint_path)
        self.metrics.counter("recovery.checkpoint_saves").inc()
        return self.checkpoint_path

    def _phase_stats(self, name: str) -> PhaseStats:
        """Fresh per-phase stats, seeded with any checkpointed progress so
        a resumed run reports cumulative counts."""
        carried = self._phase_carry.get(name, (0, 0))
        stats = PhaseStats(
            name=name, minibatches=carried[0], index_hits=carried[1]
        )
        self._all_phases.append(stats)
        return stats

    # -- observability plumbing -------------------------------------------

    def _log_minibatch(
        self,
        phase: str,
        time_us: float,
        context: tuple,
        assignment: dict[str, object] | None = None,
        kind: str = KIND_EXPLORE,
    ) -> None:
        """One executed mini-batch: timeline entry + metrics + run report.

        Production-mode measurements (``kind == KIND_PRODUCTION``) are
        logged but excluded from the work-conservation timeline and the
        configs-explored count -- they happen after exploration ends.
        """
        delta: dict[str, object] = {}
        if assignment:
            delta = {
                name: choice for name, choice in assignment.items()
                if self._last_assignment.get(name, _UNSET) != choice
            }
            self._last_assignment.update(assignment)
        if kind != KIND_PRODUCTION:
            self._timeline.append((phase, time_us))
            self._best_so_far = min(self._best_so_far, time_us)
            self.metrics.counter("astra.configs_explored").inc()
            self.metrics.series("astra.best_so_far_us").append(self._best_so_far)
        self.metrics.histogram(f"astra.minibatch_us.{phase}").observe(time_us)
        self.reporter.minibatch(
            phase, time_us, context=context, assignment_delta=delta, kind=kind
        )

    def _log_fault(self, kind: str, message: str, context: tuple, phase: str) -> None:
        """One fault surfaced to the wirer: counter + run-report record +
        trace annotation."""
        self.metrics.counter(f"fault.surfaced.{kind}").inc()
        self.reporter.fault(phase, kind, message, context=context)
        self.tracer.instant(f"fault/{kind}", detail=message)

    def _execute(
        self, plan: ExecutionPlan, context: tuple, validate: bool | None = None
    ) -> MiniBatchResult:
        """Run one configuration, surfacing validation failures.

        In validated mode a defective schedule is recorded in the run
        report (one record per violation) before the error propagates --
        a wirer that silently explored unsound schedules would be
        exactly the bug this subsystem exists to catch.
        """
        from ..check import ScheduleValidationError

        try:
            return self.executor.run(plan, validate=validate)
        except ScheduleValidationError as exc:
            for violation in exc.report.violations:
                self.reporter.violation(
                    plan.label, violation.kind, str(violation), context=context
                )
            raise

    # -- measurement plumbing ---------------------------------------------

    def _measure(
        self, plan: ExecutionPlan, context: tuple, phase: str
    ) -> MiniBatchResult | None:
        """Obtain one measurement sample, retrying transient aborts.

        Returns None when the sample could not be obtained within the
        policy's attempt budget.  Each retry re-validates the schedule
        through :mod:`repro.check` before re-execution: recovery must
        never re-run a plan with ordering or memory violations."""
        attempts = 0
        while True:
            try:
                # a plan re-executed after a fault is statically
                # re-validated, even when validated mode is off
                validate = True if attempts > 0 and not self.validate else None
                if validate:
                    self.metrics.counter("recovery.revalidated").inc()
                result = self._execute(plan, context, validate=validate)
            except FaultError as exc:
                if not exc.transient:
                    raise
                attempts += 1
                self._log_fault(exc.kind, str(exc), context, phase)
                if attempts >= self.policy.max_attempts:
                    self.metrics.counter("recovery.measurements_failed").inc()
                    return None
                backoff = self.policy.backoff_for(attempts)
                self.metrics.counter("recovery.retries").inc()
                self.metrics.counter("recovery.backoff_minibatches").inc(backoff)
                continue
            if attempts > 0:
                self.metrics.counter("recovery.retries_succeeded").inc()
            for fault in result.faults:
                self._log_fault(fault.kind, fault.detail, context, phase)
            return result

    def _measure_config(
        self,
        plan: ExecutionPlan,
        context: tuple,
        stats: PhaseStats,
        assignment: dict[str, object] | None,
        kind: str = KIND_EXPLORE,
    ) -> tuple[list[MiniBatchResult], int]:
        """Measure one configuration under the policy: up to ``samples``
        mini-batches (min-of-k), each retried per :meth:`_measure`.

        Returns (successful samples, mini-batches charged).  Failed
        measurements still charge one mini-batch of budget -- their work
        was dispatched and lost."""
        results: list[MiniBatchResult] = []
        charged = 0
        for _ in range(self.policy.samples):
            result = self._measure(plan, context, stats.name)
            charged += 1
            self._spent_this_run += 1
            if result is None:
                continue
            results.append(result)
            self._overhead_samples.append(result.profiling_overhead_fraction)
            self._log_minibatch(
                stats.name, result.total_time_us, context, assignment, kind=kind
            )
            stats.minibatches += 1
        return results, charged

    def _record_measurements(
        self,
        tree: UpdateNode,
        var_units: dict[str, list[int]],
        results: list[MiniBatchResult],
        context: tuple,
    ) -> None:
        """Feed this configuration's fine-grained profiles into the index
        under context-mangled keys (sections 4.6, 4.7).  With several
        samples per configuration, each variable's metric is the robust
        minimum (MAD rejection first) across samples.

        Goes through :meth:`ProfileIndex.merge`, which enforces the
        merge invariants (already-measured keys keep their first value;
        quarantine sentinels are never overwritten) for the serial and
        parallel paths alike.
        """
        measurements: dict = {}
        for var in tree.variables():
            key = var.profile_key(context)
            if key in self.index or key in measurements:
                continue
            values = []
            for result in results:
                metric = self._metric_for(var, var_units, result)
                if metric is not None:
                    values.append(metric)
            if values:
                measurements[key] = robust_min(
                    values, self.policy.mad_threshold
                )
                # the first-merged value is the decisive one: merge() is
                # first-writer-wins and the `key in self.index` guard above
                # filters re-measurements, so this hook sees exactly the
                # numbers finalize() will read -- in canonical order for
                # the serial loop and the parallel merge alike
                self.provenance.measured(context, var.name, var.value, measurements[key])
        self.index.merge(measurements)

    def _metric_for(
        self,
        var: AdaptiveVariable,
        var_units: dict[str, list[int]],
        result: MiniBatchResult,
    ) -> float | None:
        if var.metric_kind == "units":
            unit_ids = var_units.get(var.name, [])
            if not unit_ids:
                return None
            tainted = {f.unit_id for f in result.faults}
            total = 0.0
            for uid in unit_ids:
                time = result.unit_times.get(uid)
                if time is None:
                    if uid in tainted:
                        # this variable's measurement was withheld (lost
                        # or implausible timestamp): no number at all
                        # beats a silently-wrong one
                        return None
                    time = 0.0  # host-only unit: no kernel to time
                total += time
            return total
        if var.metric_kind == "epoch":
            _ordinal, epoch = var.payload  # type: ignore[misc]
            return result.epoch_metrics.get((epoch.super_epoch, epoch.index))
        if var.metric_kind == "end_to_end":
            return result.total_time_us
        raise ValueError(f"unknown metric kind {var.metric_kind!r}")

    def _quarantine(
        self,
        live_vars: list[AdaptiveVariable],
        context: tuple,
        phase: str,
    ) -> None:
        """Write the quarantine sentinel for every live, unmeasured choice
        of this configuration so exploration moves past it; finalize()
        can never prefer it over a real measurement."""
        names = []
        for var in live_vars:
            key = var.profile_key(context)
            if key not in self.index:
                self.index.record(key, QUARANTINED_US)
                self.provenance.quarantined(context, var.name, var.value)
                names.append(f"{var.name}={var.value!r}")
        self.metrics.counter("recovery.quarantined").inc()
        self._log_fault(
            "quarantine", f"configuration quarantined: {', '.join(names)}",
            context, phase,
        )

    # -- exploration phases ---------------------------------------------------

    def _explore_tree(
        self,
        tree: UpdateNode,
        context: tuple,
        build,
        stats: PhaseStats,
        budget: int,
    ) -> int:
        """Generic explore loop: run current config, record, advance."""
        spent = 0
        with self.tracer.span(f"explore/{stats.name}"):
            while True:
                live_vars = [
                    v for v in tree.variables() if not v.measured(self.index, context)
                ]
                if live_vars:
                    assignment = tree.assignment()
                    with self.clock.phase("enumerate"):
                        built = build(assignment, {v.name for v in live_vars})
                    results, charged = self._measure_config(
                        built.plan, context, stats, assignment
                    )
                    spent += charged
                    if results:
                        self._record_measurements(
                            tree, built.var_units, results, context
                        )
                        self._fault_strikes.pop(self._config_key(live_vars, context), None)
                        self.metrics.counter(f"astra.index_misses.{stats.name}").inc()
                    else:
                        # every sample of this configuration failed: strike
                        # it; quarantine once the policy's patience is out,
                        # otherwise retry the same configuration
                        key = self._config_key(live_vars, context)
                        strikes = self._fault_strikes.get(key, 0) + 1
                        self._fault_strikes[key] = strikes
                        if strikes >= self.policy.quarantine_after:
                            self._quarantine(live_vars, context, stats.name)
                        if spent < budget:
                            continue
                else:
                    stats.index_hits += 1
                    self.metrics.counter(f"astra.index_hits.{stats.name}").inc()
                if spent >= budget:
                    tree.finalize(self.index, context)
                    break
                if not tree.advance(self.index, context):
                    break
        return spent

    @staticmethod
    def _config_key(live_vars: list[AdaptiveVariable], context: tuple) -> tuple:
        return tuple(var.profile_key(context) for var in live_vars)

    # -- parallel exploration ---------------------------------------------

    def _explore_tree_parallel(
        self,
        tree: UpdateNode,
        context: tuple,
        strategy: AllocationStrategy,
        stats: PhaseStats,
        budget: int,
    ) -> int:
        """Wave-at-a-time counterpart of :meth:`_explore_tree`.

        Plans a wave of candidate configurations (``repro.parallel.engine``
        proves the wave visits the serial loop's exact choice sequence),
        ships them to the worker pool, and replays each outcome's event
        log at its canonical position via :meth:`_merge_wave` -- so the
        index, the counters, the timeline, the strikes and the budget all
        evolve exactly as a serial run's would.
        """
        from ..parallel.engine import (
            STATUS_BUDGET,
            STATUS_EXHAUSTED,
            plan_wave,
        )
        from ..parallel.wire import CandidateTask

        spent = 0
        advance_first = False
        with self.tracer.span(f"explore/{stats.name}"):
            while True:
                with self.clock.phase("enumerate"):
                    entries, status = plan_wave(
                        tree, self.index, context,
                        samples=self.policy.samples,
                        spent=spent, budget=budget,
                        limit=self.parallel_config.max_wave,
                        advance_first=advance_first,
                    )
                advance_first = False
                if not entries:
                    break  # the owed advance found the tree exhausted
                end_snapshot = tree.snapshot_state()
                tasks = []
                base = self._prior_spent + self._spent_this_run
                already_preempted = (
                    self.injector._preempted
                    if self.injector is not None else False
                )
                for entry in entries:
                    if entry.kind != "measure":
                        continue
                    tasks.append(CandidateTask(
                        ordinal=len(tasks),
                        strategy_id=strategy.strategy_id,
                        assignment=tuple(sorted(entry.assignment.items())),
                        live_names=entry.live_names,
                        base_minibatch=base + len(tasks) * self.policy.samples,
                        preempted=already_preempted,
                    ))
                with self.clock.phase("dispatch"):
                    outcomes = self.engine.measure_wave(tasks)
                merge_status, spent = self._merge_wave(
                    tree, context, stats, entries, outcomes, spent, budget
                )
                if merge_status == "retry":
                    # every sample of a configuration failed: tree sits at
                    # that configuration (wave tail discarded), re-plan --
                    # the serial loop's `continue`
                    continue
                if merge_status == "budget":
                    # budget exhausted at the failed configuration
                    tree.finalize(self.index, context)
                    break
                tree.restore_state(end_snapshot)
                if status == STATUS_BUDGET:
                    tree.finalize(self.index, context)
                    break
                if status == STATUS_EXHAUSTED:
                    break
                advance_first = True  # sealed or wave-capped: advance owed
        return spent

    def _merge_wave(
        self,
        tree: UpdateNode,
        context: tuple,
        stats: PhaseStats,
        entries,
        outcomes,
        spent: int,
        budget: int,
    ) -> tuple[str, int]:
        """Replay worker outcomes in canonical order.

        Each measurement entry restores its tree snapshot (profile keys
        and quarantine keys read variables' *current* values), replays
        the worker's event log through the same bookkeeping the serial
        loop runs inline, and merges profiles into the index.  Returns
        ``("ok" | "retry" | "budget", spent)``; on ``retry``/``budget``
        the tree is left at the failed entry's configuration and the
        wave's unmerged tail is discarded -- its speculative keys were
        never written anywhere.
        """
        import time as _time

        merge_start = _time.perf_counter()
        outcome_iter = iter(outcomes)
        verdict = "ok"
        try:
            for position, entry in enumerate(entries):
                if entry.kind == "hit":
                    stats.index_hits += 1
                    self.metrics.counter(
                        f"astra.index_hits.{stats.name}").inc()
                    continue
                outcome = next(outcome_iter)
                tree.restore_state(entry.snapshot)
                live_vars = [
                    v for v in tree.variables() if v.name in entry.live_names
                ]
                # worker-side executor counters (fault.*, check.*) land on
                # the parent registry at the canonical position
                for name, value in sorted(outcome.counters.items()):
                    self.metrics.counter(name).inc(value)
                if self.injector is not None and (
                    outcome.injector_minibatch is not None
                ):
                    self.injector.absorb(
                        outcome.injector_records,
                        outcome.injector_minibatch,
                        outcome.injector_preempted,
                    )
                results = []
                for record in outcome.samples:
                    gave_up = (
                        record.result is None
                        and len(record.aborts) >= self.policy.max_attempts
                    )
                    interrupted = record.result is None and not gave_up
                    for attempt, (kind, message) in enumerate(
                        record.aborts, 1
                    ):
                        self._log_fault(kind, message, context, stats.name)
                        if gave_up and attempt == len(record.aborts):
                            self.metrics.counter(
                                "recovery.measurements_failed").inc()
                        else:
                            if not self.validate:
                                self.metrics.counter(
                                    "recovery.revalidated").inc()
                            self.metrics.counter("recovery.retries").inc()
                            self.metrics.counter(
                                "recovery.backoff_minibatches"
                            ).inc(self.policy.backoff_for(attempt))
                    if interrupted:
                        # sample cut short by the fatal event surfaced
                        # below; the serial loop never charged it either
                        continue
                    spent += 1
                    self._spent_this_run += 1
                    if record.result is None:
                        continue  # charged, lost (attempt budget out)
                    if record.aborts:
                        self.metrics.counter(
                            "recovery.retries_succeeded").inc()
                    for fault in record.result.faults:
                        self._log_fault(
                            fault.kind, fault.detail, context, stats.name
                        )
                    results.append(record.result)
                    self._overhead_samples.append(
                        record.result.profiling_overhead_fraction
                    )
                    self._log_minibatch(
                        stats.name, record.result.total_time_us, context,
                        entry.assignment,
                    )
                    stats.minibatches += 1
                if outcome.preempted_at is not None:
                    raise PreemptionError(outcome.preempted_at)
                if outcome.error is not None or outcome.error_repr:
                    for label, kind, text in outcome.violations:
                        self.reporter.violation(
                            label, kind, text, context=context
                        )
                    raise self._decode_worker_error(outcome)
                if results:
                    self._record_measurements(
                        tree, outcome.var_units, results, context
                    )
                    self._fault_strikes.pop(
                        self._config_key(live_vars, context), None
                    )
                    self.metrics.counter(
                        f"astra.index_misses.{stats.name}").inc()
                else:
                    key = self._config_key(live_vars, context)
                    strikes = self._fault_strikes.get(key, 0) + 1
                    self._fault_strikes[key] = strikes
                    if strikes >= self.policy.quarantine_after:
                        self._quarantine(live_vars, context, stats.name)
                    discarded = sum(
                        1 for later in entries[position + 1:]
                        if later.kind == "measure"
                    )
                    if discarded:
                        self.engine.stats.discarded += discarded
                        self.metrics.counter(
                            "parallel.candidates_discarded").inc(discarded)
                    verdict = "retry" if spent < budget else "budget"
                    return verdict, spent
        finally:
            self.metrics.histogram("parallel.merge_us").observe(
                (_time.perf_counter() - merge_start) * 1e6
            )
        return verdict, spent

    def _decode_worker_error(self, outcome) -> BaseException:
        import pickle as _pickle

        if outcome.error is not None:
            try:
                return _pickle.loads(outcome.error)
            except Exception:
                pass
        return RuntimeError(
            f"worker-side error: {outcome.error_repr or 'unknown'}"
        )

    def close(self) -> None:
        """Release the parallel engine's worker pool, if any."""
        if self.engine is not None:
            self.engine.close()

    def optimize(self, max_minibatches: int = 5000) -> AstraReport:
        """Run the full online exploration and return the custom-wired plan.

        On an injected preemption the exploration state is checkpointed
        (when a checkpoint path is configured) and the
        :class:`~repro.faults.events.PreemptionError` propagates with
        ``checkpoint_path`` filled in; a wirer restored from that
        checkpoint continues where this one stopped."""
        self._spent_this_run = 0
        self._all_phases: list[PhaseStats] = []
        try:
            with self.clock.phase("explore"):
                report = self._optimize(max_minibatches)
        except PreemptionError as exc:
            self._preempted_at = exc.minibatch
            exc.checkpoint_path = self._save_checkpoint(preempted_at=exc.minibatch)
            self.tracer.instant("preempted", minibatch=exc.minibatch)
            raise
        self._save_checkpoint(completed=True)
        return report

    def _optimize(self, max_minibatches: int) -> AstraReport:
        exploration_time = 0.0
        phases: list[PhaseStats] = []
        strategy_best: dict[int, tuple[float, ExecutionPlan, dict[str, object]]] = {}

        for strategy in self.enumerator.strategies:
            context = self.base_context + strategy.context_key()
            try:
                best = self._explore_strategy(
                    strategy, context, phases, max_minibatches
                )
            except DeviceOOMError as exc:
                # this strategy's arena cannot fit usable device memory:
                # prune the whole branch of the exploration fork
                self._log_fault(exc.kind, str(exc), context, f"alloc/{strategy.label}")
                self.metrics.counter("recovery.strategies_pruned").inc()
                continue
            if best is not None:
                strategy_best[strategy.strategy_id] = best

        total_spent = self._prior_spent + self._spent_this_run
        if not strategy_best:
            # no strategy made progress (all pruned or fully quarantined):
            # degrade gracefully to the native plan rather than failing
            return self._degraded_report(phases, total_spent)

        exploration_time = sum(t for t, _p, _a in strategy_best.values())
        best_id = min(strategy_best, key=lambda sid: strategy_best[sid][0])
        best_time, best_plan, best_assignment = strategy_best[best_id]
        best_strategy = next(
            s for s in self.enumerator.strategies if s.strategy_id == best_id
        )

        # production mode: same plan with profiling events disabled
        production = ExecutionPlan(
            units=best_plan.units,
            allocation=best_plan.allocation,
            stream_of=best_plan.stream_of,
            barriers_after=best_plan.barriers_after,
            profile=False,
            label=best_plan.label + "/production",
        )
        production_context = self.base_context + best_strategy.context_key()
        production_result = self._measure(
            production, production_context, "production"
        )
        if production_result is not None:
            production_time = production_result.total_time_us
        else:
            # the confirmation run itself kept faulting; the compare-phase
            # measurement stands in for it
            production_time = best_time
        self._log_minibatch(
            "production", production_time, production_context,
            best_assignment, kind=KIND_PRODUCTION,
        )

        return self._finish_report(
            best_plan=production,
            best_time_us=production_time,
            best_strategy=best_strategy,
            configs_explored=total_spent,
            exploration_time_us=exploration_time,
            phases=phases,
            strategy_times={sid: t for sid, (t, _p, _a) in strategy_best.items()},
            assignment=best_assignment,
        )

    def _explore_strategy(
        self,
        strategy: AllocationStrategy,
        context: tuple,
        phases: list[PhaseStats],
        max_minibatches: int,
    ) -> tuple[float, ExecutionPlan, dict[str, object]] | None:
        """Explore one allocation strategy end to end; returns the
        strategy's best (time, plan, assignment), or None when every
        candidate failed."""
        # OOM-aware pruning: an arena that cannot fit usable memory makes
        # every plan of this strategy un-runnable -- don't spend a single
        # mini-batch discovering that by crashing
        arena = self.enumerator.arena_plan(strategy)
        capacity = self.device.memory_bytes
        if self.injector is not None:
            capacity = self.injector.effective_memory_bytes(self.device)
        if arena.arena_size_bytes > capacity:
            raise DeviceOOMError(arena.arena_size_bytes, capacity)

        def budget_left() -> int:
            return max(
                1, max_minibatches - self._prior_spent - self._spent_this_run
            )

        # Phase 1: fusion chunking x kernel selection (parallel)
        with self.clock.phase("enumerate"):
            fk_tree = self.enumerator.build_fk_tree(strategy)
        self._choices_total += sum(
            len(v.choices) for v in fk_tree.variables()
        )
        pre_prune = (
            {v.name: list(v.choices) for v in fk_tree.variables()}
            if self.provenance.enabled else {}
        )
        if self.fast.prune:
            with self.clock.phase("prerank"):
                estimates = None
                if (
                    self.engine is not None
                    and self.parallel_config.prerank
                ):
                    # shard the cost-model evaluation across the pool;
                    # workers compute against their own unpruned copy of
                    # this tree, and the pure-float estimates are
                    # bit-identical to the serial computation
                    from ..perf.ranker import estimate_jobs

                    jobs = estimate_jobs(
                        self.enumerator, fk_tree, self.device,
                        injector=self.injector,
                    )
                    if jobs:
                        estimates = self.engine.gather_estimates(
                            strategy.strategy_id, jobs
                        )
                pruned = prune_fk_tree(
                    self.enumerator, strategy, fk_tree, self.device,
                    self.fast, metrics=self.metrics, injector=self.injector,
                    estimates=estimates,
                )
            self._choices_pruned += pruned
            if self.provenance.enabled and pruned:
                self._record_prune_provenance(strategy, fk_tree, pre_prune, context)
        if self.learned is not None:
            # learned top-k pruning runs after (and composes with) the FK
            # pre-ranker; it applies its own admissibility and what-if
            # gates and declines rather than risk the winner
            with self.clock.phase("prerank"):
                model_pruned = self.learned.apply(
                    self.enumerator, strategy, fk_tree, self.device,
                    graph=self.graph, seed=self.seed, context=context,
                    injector=self.injector, provenance=self.provenance,
                )
            self._choices_pruned += model_pruned
        if self.provenance.enabled:
            for var in fk_tree.variables():
                self.provenance.candidates(context, var.name, var.choices)
        fk_stats = self._phase_stats(f"fk/{strategy.label}")
        use_engine = False
        if self.engine is not None:
            from ..parallel.engine import engine_supported

            use_engine = engine_supported(fk_tree)
        if use_engine:
            self._explore_tree_parallel(
                fk_tree, context, strategy, fk_stats, budget_left()
            )
        else:
            self._explore_tree(
                fk_tree,
                context,
                lambda assignment, live: self.enumerator.build_plan(
                    strategy, assignment, profile_vars=live
                ),
                fk_stats,
                budget_left(),
            )
        phases.append(fk_stats)
        fk_tree.finalize(self.index, context)
        fk_assignment = fk_tree.assignment()

        # Phase 2: stream adaptation (barrier + prefix exploration)
        stream_assignment: dict[str, object] = {}
        partition: EpochPartition | None = None
        stream_tree: UpdateNode | None = None
        if self.features.streams and not self.features.tf_mode:
            with self.clock.phase("enumerate"):
                partition, stream_tree = self.enumerator.prepare_stream_phase(
                    strategy, fk_assignment
                )
            self._choices_total += sum(
                len(v.choices) for v in stream_tree.variables()
            )
            if self.provenance.enabled:
                for var in stream_tree.variables():
                    self.provenance.candidates(context, var.name, var.choices)
            stream_stats = self._phase_stats(f"streams/{strategy.label}")
            build_stream = lambda assignment, live: self._build_with_streams(
                strategy, fk_assignment, assignment, partition, stream_tree,
                profile_vars=live,
            )
            self._explore_tree(
                stream_tree, context, build_stream, stream_stats, budget_left()
            )
            phases.append(stream_stats)
            stream_tree.finalize(self.index, context)
            stream_assignment = stream_tree.assignment()

        # best configuration for this strategy, measured end to end.
        # Astra can turn an optimization off when the measurement says
        # so (section 6.6): the stream-adapted plan competes against
        # the plain fusion/kernel plan and the faster one wins.
        with self.clock.phase("enumerate"):
            candidates = [
                ("fk", self.enumerator.build_plan(strategy, fk_assignment),
                 fk_assignment),
            ]
            if stream_tree is not None and partition is not None:
                candidates.append((
                    "streams",
                    self._build_with_streams(
                        strategy, fk_assignment, stream_tree.assignment(),
                        partition, stream_tree,
                    ),
                    {**fk_assignment, **stream_assignment},
                ))
        compare_stats = self._phase_stats(f"compare/{strategy.label}")
        measured = []
        for candidate_label, built, assignment in candidates:
            # compare measurements are indexed too, so a resumed run never
            # re-spends mini-batches re-comparing finished strategies
            compare_key = mangle(context, ("compare", candidate_label))
            cached = self.index.get(compare_key)
            if cached is not None:
                compare_stats.index_hits += 1
                self.metrics.counter(
                    f"astra.index_hits.{compare_stats.name}").inc()
                self.provenance.compared(context, candidate_label, cached, cached=True)
                measured.append((cached, built.plan, assignment))
                continue
            results, _charged = self._measure_config(
                built.plan, context, compare_stats, assignment,
                kind=KIND_COMPARE,
            )
            if not results:
                continue
            time_us = robust_min(
                [r.total_time_us for r in results], self.policy.mad_threshold
            )
            self.index.record(compare_key, time_us)
            self.provenance.compared(context, candidate_label, time_us)
            measured.append((time_us, built.plan, assignment))
        if compare_stats.minibatches or compare_stats.index_hits:
            phases.append(compare_stats)
        if not measured:
            return None
        best_time, best_plan_local, best_assignment_local = min(
            measured, key=lambda entry: entry[0]
        )
        end_key = mangle(context, ("end_to_end", "best"))
        self.index.record(end_key, best_time)
        return best_time, best_plan_local, best_assignment_local

    def _record_prune_provenance(
        self,
        strategy: AllocationStrategy,
        fk_tree: UpdateNode,
        pre_prune: dict[str, list],
        context: tuple,
    ) -> None:
        """Record each FK-prune verdict with its cost-model estimate.

        Pruning only runs when the estimate is provably exact (base
        clock, no injector), so re-deriving the estimate here reproduces
        the number that justified the cut."""
        from ..perf.ranker import estimate_choice_us

        survivors = {v.name: v.choices for v in fk_tree.variables()}
        by_name = {v.name: v for v in fk_tree.variables()}
        for name, before in pre_prune.items():
            kept = survivors.get(name, [])
            var = by_name.get(name)
            for choice in before:
                if choice in kept or var is None:
                    continue
                estimate = estimate_choice_us(
                    self.enumerator, strategy, var, choice, self.device
                )
                self.provenance.pruned(context, name, choice, estimate)

    def _degraded_report(
        self, phases: list[PhaseStats], total_spent: int
    ) -> AstraReport:
        """Graceful degradation: custom-wire to the native plan.

        Used when no allocation strategy could produce a measured
        configuration (all pruned by OOM or quarantined away).  The
        native plan carries no arena requirements and no cross-stream
        structure, so it is always runnable; its time is measured on a
        clean executor because the report's number describes the plan,
        not the interference."""
        from ..baselines.native import native_plan

        plan = native_plan(self.graph)
        plan.label = "native/degraded"
        clean = Executor(self.graph, self.device, seed=self.seed)
        native_time = clean.run(plan).total_time_us
        self.metrics.counter("recovery.degraded").inc()
        self.tracer.instant("degraded", best_time_us=native_time)
        self.reporter.fault(
            "degraded", "degradation",
            "no strategy made progress; custom-wired to native plan",
            context=self.base_context,
        )
        fallback_strategy = AllocationStrategy(
            strategy_id=-1, label="native-fallback", satisfied=frozenset()
        )
        return self._finish_report(
            best_plan=plan,
            best_time_us=native_time,
            best_strategy=fallback_strategy,
            configs_explored=total_spent,
            exploration_time_us=sum(t for _p, t in self._timeline),
            phases=phases,
            strategy_times={},
            assignment={},
            degraded=True,
        )

    def _finish_report(
        self,
        best_plan: ExecutionPlan,
        best_time_us: float,
        best_strategy: AllocationStrategy,
        configs_explored: int,
        exploration_time_us: float,
        phases: list[PhaseStats],
        strategy_times: dict[int, float],
        assignment: dict[str, object],
        degraded: bool = False,
    ) -> AstraReport:
        # publish run-level gauges and the profile-index stats
        self.metrics.gauge("astra.best_time_us").set(best_time_us)
        self.metrics.gauge("astra.exploration_time_us").set(exploration_time_us)
        self.metrics.gauge("astra.exploration_minibatches").set(configs_explored)
        for stats in phases:
            self.metrics.gauge(f"astra.index_hit_rate.{stats.name}").set(
                stats.index_hit_rate
            )
        self.index.observe_into(self.metrics)

        # memory accounting (arena footprint vs device capacity) grounds
        # OOM injection and strategy pruning in the device model
        arena_bytes = (
            best_plan.allocation.arena_size_bytes
            if best_plan.allocation is not None else 0
        )
        memory = {
            "arena_bytes": arena_bytes,
            "capacity_bytes": self.device.memory_bytes,
            "utilization": arena_bytes / self.device.memory_bytes,
        }
        self.metrics.gauge("memory.arena_bytes").set(arena_bytes)
        self.metrics.gauge("memory.capacity_bytes").set(self.device.memory_bytes)
        self.metrics.gauge("memory.utilization").set(memory["utilization"])

        # fault accounting: every injected fault must be visible in the
        # fault.* metrics and as run-report records
        fault_summary: dict = {}
        if self.injector is not None:
            self.injector.observe_into(self.metrics)
            fault_summary = self.injector.summary()
            for kind, count in fault_summary["injected"].items():
                self.reporter.fault(
                    "summary", kind, f"injected={count}",
                    context=self.base_context,
                )

        self.tracer.instant(
            "custom-wired", best_time_us=best_time_us, strategy=best_strategy.label
        )
        fast_path = {
            "cache_enabled": self.fast.cache,
            "prune_enabled": self.fast.prune,
            "cache": self.cache.stats() if self.cache is not None else None,
            "choices_total": self._choices_total,
            "choices_pruned": self._choices_pruned,
            "parallel": (
                self.engine.summary() if self.engine is not None else None
            ),
            "learned": (
                self.learned.summary() if self.learned is not None
                else {"rejected": self._learned_rejected}
                if self._learned_rejected is not None
                else None
            ),
        }
        self.metrics.gauge("perf.choices_total").set(self._choices_total)
        self.metrics.gauge("perf.choices_pruned").set(self._choices_pruned)
        if self._warm:
            self.metrics.gauge("warm.seeded_total").set(
                self._warm.get("seeded_entries", 0)
            )
        overhead = (
            sum(self._overhead_samples) / len(self._overhead_samples)
            if self._overhead_samples
            else 0.0
        )
        return AstraReport(
            best_plan=best_plan,
            best_time_us=best_time_us,
            best_strategy=best_strategy,
            configs_explored=configs_explored,
            exploration_time_us=exploration_time_us,
            phases=phases,
            profile_entries=len(self.index),
            profiling_overhead=overhead,
            strategy_times=strategy_times,
            assignment=assignment,
            timeline=list(self._timeline),
            degraded=degraded,
            fault_summary=fault_summary,
            memory=memory,
            fast_path=fast_path,
            warm=dict(self._warm),
            provenance=self.provenance,
        )

    def _build_with_streams(
        self,
        strategy: AllocationStrategy,
        fk_assignment: dict[str, object],
        stream_assignment: dict[str, object],
        partition: EpochPartition,
        stream_tree: UpdateNode,
        profile_vars: set[str] | None = None,
    ) -> BuiltPlan:
        options: dict[int, dict[int, int]] = {}
        for var in stream_tree.variables():
            ordinal, epoch = var.payload  # type: ignore[misc]
            choice = stream_assignment.get(var.name, var.value)
            options[ordinal] = epoch.options[choice]
        built = self.enumerator.build_plan(
            strategy,
            fk_assignment,
            stream_options=options,
            partition=partition,
            profile_vars=profile_vars,
            label="astra+streams",
        )
        # stream variables own their epoch's units: the epoch-completion
        # metric needs an event on the epoch's last unit, and only live
        # epochs pay for it (regions of interest, section 5.2)
        extra_profile: set[int] = set()
        for var in stream_tree.variables():
            _ordinal, epoch = var.payload  # type: ignore[misc]
            built.var_units.setdefault(var.name, list(epoch.unit_ids))
            if profile_vars is None or var.name in profile_vars:
                extra_profile.add(max(epoch.unit_ids))
                # the super-epoch start is read from the first unit's record
                extra_profile.add(min(epoch.unit_ids))
        if built.plan.profile_unit_ids is not None:
            built.plan.profile_unit_ids = frozenset(
                built.plan.profile_unit_ids | extra_profile
            )
        return built
