"""The custom-wirer: Astra's runtime half.

Section 4.7: takes the enumerator's templated schedules, runs one
configuration per training mini-batch (work-conserving exploration:
every exploration mini-batch still advances training), feeds fine-grained
measurements into the profile index, drives the update tree, and finally
custom-wires the job to the best configuration found.

Exploration proceeds per allocation strategy (the hierarchical fork of
section 4.5.2): within each strategy, a fusion/kernel phase (parallel
exploration over independent variables), then a stream phase (barrier +
prefix exploration), then the per-strategy best configurations are
compared end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import GPUSpec
from ..ir.graph import Graph
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from ..obs.report import KIND_COMPARE, KIND_EXPLORE, KIND_PRODUCTION, NULL_REPORTER, RunReporter
from ..obs.trace import NULL_TRACER
from ..runtime.executor import Executor, MiniBatchResult
from ..runtime.plan import ExecutionPlan
from .adaptive import AdaptiveVariable, UpdateNode
from .allocation import AllocationStrategy
from .enumerator import AstraFeatures, BuiltPlan, Enumerator
from .epochs import EpochPartition
from .profile_index import ProfileIndex, mangle

#: sentinel distinguishing "variable never assigned" from any real choice
_UNSET = object()


@dataclass
class PhaseStats:
    name: str
    minibatches: int = 0
    index_hits: int = 0

    @property
    def index_hit_rate(self) -> float:
        """Fraction of this phase's configurations answered from the
        profile index instead of spending a training mini-batch."""
        total = self.minibatches + self.index_hits
        return self.index_hits / total if total else 0.0


@dataclass
class AstraReport:
    """Outcome of one optimization run."""

    best_plan: ExecutionPlan
    best_time_us: float
    best_strategy: AllocationStrategy
    configs_explored: int
    exploration_time_us: float
    phases: list[PhaseStats]
    profile_entries: int
    #: mean fraction of mini-batch time spent on profiling events
    profiling_overhead: float
    #: per-strategy best end-to-end times
    strategy_times: dict[int, float]
    #: chosen assignment of every adaptive variable
    assignment: dict[str, object] = field(default_factory=dict)
    #: per exploration mini-batch: (phase name, mini-batch time in us);
    #: the work-conservation record -- every entry was real training work
    timeline: list[tuple[str, float]] = field(default_factory=list)

    def amortization(self, native_time_us: float) -> "Amortization":
        """How quickly the exploration pays for itself.

        Exploration mini-batches are slower than the final custom-wired
        plan but still do real training work; relative to running native
        forever, the extra cost is recouped after a number of
        steady-state mini-batches (the paper runs "a few thousand out of
        millions", section 4.2).
        """
        explored = sum(t for _phase, t in self.timeline)
        native_equivalent = native_time_us * len(self.timeline)
        overhead_vs_native = explored - native_equivalent
        gain_per_batch = native_time_us - self.best_time_us
        breakeven = (
            overhead_vs_native / gain_per_batch if gain_per_batch > 0 else float("inf")
        )
        return Amortization(
            exploration_minibatches=len(self.timeline),
            exploration_time_us=explored,
            overhead_vs_native_us=max(0.0, overhead_vs_native),
            breakeven_minibatches=max(0.0, breakeven),
        )


@dataclass
class Amortization:
    """Cost/benefit of the online exploration vs running native."""

    exploration_minibatches: int
    exploration_time_us: float
    overhead_vs_native_us: float
    #: steady-state mini-batches until the exploration overhead is repaid
    breakeven_minibatches: float


class CustomWirer:
    """Runs the online exploration for one traced graph on one device."""

    def __init__(
        self,
        graph: Graph,
        device: GPUSpec,
        features: AstraFeatures,
        seed: int = 0,
        context: tuple = (),
        index: ProfileIndex | None = None,
        metrics: MetricsRegistry | None = None,
        reporter: RunReporter | None = None,
        tracer=None,
        validate: bool = False,
    ):
        self.graph = graph
        self.device = device
        self.features = features
        self.enumerator = Enumerator(graph, device, features)
        self.index = index if index is not None else ProfileIndex()
        self.base_context = context
        # observability hooks; null objects when not requested, so the
        # instrumented paths cost nothing and change nothing when disabled
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.reporter = reporter if reporter is not None else NULL_REPORTER
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # validated execution: every explored configuration is statically
        # checked (repro.check) before it runs; violations surface as
        # metrics counters and run-report records, then abort the run
        self.validate = validate
        self.executor = Executor(
            graph, device, seed=seed, validate=validate, metrics=self.metrics
        )
        self._overhead_samples: list[float] = []
        self._timeline: list[tuple[str, float]] = []
        self._last_assignment: dict[str, object] = {}
        self._best_so_far = float("inf")

    # -- observability plumbing -------------------------------------------

    def _log_minibatch(
        self,
        phase: str,
        time_us: float,
        context: tuple,
        assignment: dict[str, object] | None = None,
        kind: str = KIND_EXPLORE,
    ) -> None:
        """One executed mini-batch: timeline entry + metrics + run report.

        Production-mode measurements (``kind == KIND_PRODUCTION``) are
        logged but excluded from the work-conservation timeline and the
        configs-explored count -- they happen after exploration ends.
        """
        delta: dict[str, object] = {}
        if assignment:
            delta = {
                name: choice for name, choice in assignment.items()
                if self._last_assignment.get(name, _UNSET) != choice
            }
            self._last_assignment.update(assignment)
        if kind != KIND_PRODUCTION:
            self._timeline.append((phase, time_us))
            self._best_so_far = min(self._best_so_far, time_us)
            self.metrics.counter("astra.configs_explored").inc()
            self.metrics.series("astra.best_so_far_us").append(self._best_so_far)
        self.metrics.histogram(f"astra.minibatch_us.{phase}").observe(time_us)
        self.reporter.minibatch(
            phase, time_us, context=context, assignment_delta=delta, kind=kind
        )

    def _execute(self, plan: ExecutionPlan, context: tuple) -> MiniBatchResult:
        """Run one configuration, surfacing validation failures.

        In validated mode a defective schedule is recorded in the run
        report (one record per violation) before the error propagates --
        a wirer that silently explored unsound schedules would be
        exactly the bug this subsystem exists to catch.
        """
        from ..check import ScheduleValidationError

        try:
            return self.executor.run(plan)
        except ScheduleValidationError as exc:
            for violation in exc.report.violations:
                self.reporter.violation(
                    plan.label, violation.kind, str(violation), context=context
                )
            raise

    # -- measurement plumbing ---------------------------------------------

    def _record_measurements(
        self,
        tree: UpdateNode,
        built: BuiltPlan,
        result: MiniBatchResult,
        context: tuple,
    ) -> None:
        """Feed this mini-batch's fine-grained profile into the index under
        context-mangled keys (sections 4.6, 4.7)."""
        for var in tree.variables():
            key = var.profile_key(context)
            if key in self.index:
                continue
            metric = self._metric_for(var, built, result)
            if metric is not None:
                self.index.record(key, metric)

    def _metric_for(
        self, var: AdaptiveVariable, built: BuiltPlan, result: MiniBatchResult
    ) -> float | None:
        if var.metric_kind == "units":
            unit_ids = built.var_units.get(var.name, [])
            if not unit_ids:
                return None
            return sum(result.unit_times.get(uid, 0.0) for uid in unit_ids)
        if var.metric_kind == "epoch":
            _ordinal, epoch = var.payload  # type: ignore[misc]
            return result.epoch_metrics.get((epoch.super_epoch, epoch.index))
        if var.metric_kind == "end_to_end":
            return result.total_time_us
        raise ValueError(f"unknown metric kind {var.metric_kind!r}")

    # -- exploration phases ---------------------------------------------------

    def _explore_tree(
        self,
        tree: UpdateNode,
        context: tuple,
        build,
        stats: PhaseStats,
        budget: int,
    ) -> int:
        """Generic explore loop: run current config, record, advance."""
        spent = 0
        with self.tracer.span(f"explore/{stats.name}"):
            while True:
                live_vars = [
                    v for v in tree.variables() if not v.measured(self.index, context)
                ]
                if live_vars:
                    assignment = tree.assignment()
                    built = build(assignment, {v.name for v in live_vars})
                    result = self._execute(built.plan, context)
                    self._overhead_samples.append(result.profiling_overhead_fraction)
                    self._record_measurements(tree, built, result, context)
                    self._log_minibatch(
                        stats.name, result.total_time_us, context, assignment
                    )
                    stats.minibatches += 1
                    spent += 1
                    self.metrics.counter(f"astra.index_misses.{stats.name}").inc()
                else:
                    stats.index_hits += 1
                    self.metrics.counter(f"astra.index_hits.{stats.name}").inc()
                if spent >= budget:
                    tree.finalize(self.index, context)
                    break
                if not tree.advance(self.index, context):
                    break
        return spent

    def optimize(self, max_minibatches: int = 5000) -> AstraReport:
        """Run the full online exploration and return the custom-wired plan."""
        total_spent = 0
        exploration_time = 0.0
        phases: list[PhaseStats] = []
        strategy_best: dict[int, tuple[float, ExecutionPlan, dict[str, object]]] = {}

        for strategy in self.enumerator.strategies:
            context = self.base_context + strategy.context_key()
            budget_left = max(1, max_minibatches - total_spent)

            # Phase 1: fusion chunking x kernel selection (parallel)
            fk_tree = self.enumerator.build_fk_tree(strategy)
            fk_stats = PhaseStats(name=f"fk/{strategy.label}")
            spent = self._explore_tree(
                fk_tree,
                context,
                lambda assignment, live: self.enumerator.build_plan(
                    strategy, assignment, profile_vars=live
                ),
                fk_stats,
                budget_left,
            )
            total_spent += spent
            phases.append(fk_stats)
            fk_tree.finalize(self.index, context)
            fk_assignment = fk_tree.assignment()

            # Phase 2: stream adaptation (barrier + prefix exploration)
            stream_assignment: dict[str, object] = {}
            partition: EpochPartition | None = None
            stream_tree: UpdateNode | None = None
            if self.features.streams and not self.features.tf_mode:
                partition, stream_tree = self.enumerator.prepare_stream_phase(
                    strategy, fk_assignment
                )
                stream_stats = PhaseStats(name=f"streams/{strategy.label}")
                budget_left = max(1, max_minibatches - total_spent)
                build_stream = lambda assignment, live: self._build_with_streams(
                    strategy, fk_assignment, assignment, partition, stream_tree,
                    profile_vars=live,
                )
                spent = self._explore_tree(
                    stream_tree, context, build_stream, stream_stats, budget_left
                )
                total_spent += spent
                phases.append(stream_stats)
                stream_tree.finalize(self.index, context)
                stream_assignment = stream_tree.assignment()

            # best configuration for this strategy, measured end to end.
            # Astra can turn an optimization off when the measurement says
            # so (section 6.6): the stream-adapted plan competes against
            # the plain fusion/kernel plan and the faster one wins.
            candidates = [
                (self.enumerator.build_plan(strategy, fk_assignment), fk_assignment)
            ]
            if stream_tree is not None and partition is not None:
                candidates.append((
                    self._build_with_streams(
                        strategy, fk_assignment, stream_tree.assignment(),
                        partition, stream_tree,
                    ),
                    {**fk_assignment, **stream_assignment},
                ))
            measured = []
            for built, assignment in candidates:
                result = self._execute(built.plan, context)
                total_spent += 1
                self._log_minibatch(
                    f"compare/{strategy.label}", result.total_time_us, context,
                    assignment, kind=KIND_COMPARE,
                )
                measured.append((result.total_time_us, built.plan, assignment))
            best_time, best_plan_local, best_assignment_local = min(
                measured, key=lambda entry: entry[0]
            )
            end_key = mangle(context, ("end_to_end", "best"))
            self.index.record(end_key, best_time)
            strategy_best[strategy.strategy_id] = (
                best_time,
                best_plan_local,
                best_assignment_local,
            )

        exploration_time = sum(t for t, _p, _a in strategy_best.values())
        best_id = min(strategy_best, key=lambda sid: strategy_best[sid][0])
        best_time, best_plan, best_assignment = strategy_best[best_id]
        best_strategy = next(
            s for s in self.enumerator.strategies if s.strategy_id == best_id
        )

        # production mode: same plan with profiling events disabled
        production = ExecutionPlan(
            units=best_plan.units,
            stream_of=best_plan.stream_of,
            barriers_after=best_plan.barriers_after,
            profile=False,
            label=best_plan.label + "/production",
        )
        production_time = self._execute(
            production, self.base_context + best_strategy.context_key()
        ).total_time_us
        self._log_minibatch(
            "production", production_time,
            self.base_context + best_strategy.context_key(),
            best_assignment, kind=KIND_PRODUCTION,
        )

        # publish run-level gauges and the profile-index stats
        self.metrics.gauge("astra.best_time_us").set(production_time)
        self.metrics.gauge("astra.exploration_time_us").set(exploration_time)
        self.metrics.gauge("astra.exploration_minibatches").set(total_spent)
        for stats in phases:
            self.metrics.gauge(f"astra.index_hit_rate.{stats.name}").set(
                stats.index_hit_rate
            )
        self.index.observe_into(self.metrics)
        self.tracer.instant("custom-wired", best_time_us=production_time,
                            strategy=best_strategy.label)

        overhead = (
            sum(self._overhead_samples) / len(self._overhead_samples)
            if self._overhead_samples
            else 0.0
        )
        return AstraReport(
            best_plan=production,
            best_time_us=production_time,
            best_strategy=best_strategy,
            configs_explored=total_spent,
            exploration_time_us=exploration_time,
            phases=phases,
            profile_entries=len(self.index),
            profiling_overhead=overhead,
            strategy_times={sid: t for sid, (t, _p, _a) in strategy_best.items()},
            assignment=best_assignment,
            timeline=list(self._timeline),
        )

    def _build_with_streams(
        self,
        strategy: AllocationStrategy,
        fk_assignment: dict[str, object],
        stream_assignment: dict[str, object],
        partition: EpochPartition,
        stream_tree: UpdateNode,
        profile_vars: set[str] | None = None,
    ) -> BuiltPlan:
        options: dict[int, dict[int, int]] = {}
        for var in stream_tree.variables():
            ordinal, epoch = var.payload  # type: ignore[misc]
            choice = stream_assignment.get(var.name, var.value)
            options[ordinal] = epoch.options[choice]
        built = self.enumerator.build_plan(
            strategy,
            fk_assignment,
            stream_options=options,
            partition=partition,
            profile_vars=profile_vars,
            label="astra+streams",
        )
        # stream variables own their epoch's units: the epoch-completion
        # metric needs an event on the epoch's last unit, and only live
        # epochs pay for it (regions of interest, section 5.2)
        extra_profile: set[int] = set()
        for var in stream_tree.variables():
            _ordinal, epoch = var.payload  # type: ignore[misc]
            built.var_units.setdefault(var.name, list(epoch.unit_ids))
            if profile_vars is None or var.name in profile_vars:
                extra_profile.add(max(epoch.unit_ids))
                # the super-epoch start is read from the first unit's record
                extra_profile.add(min(epoch.unit_ids))
        if built.plan.profile_unit_ids is not None:
            built.plan.profile_unit_ids = frozenset(
                built.plan.profile_unit_ids | extra_profile
            )
        return built
