"""Adaptive variables and the update tree.

Section 4.4.2: "the information extracted during static analysis is
organised as a set of adaptive variables ... organised into an update tree
[whose] modes of exploration are annotated by the enumerator":

* **parallel** -- children explore simultaneously and independently, which
  is what fine-grained profiling makes sound (section 4.5.1): the state
  space becomes *additive* in the number of children;
* **exhaustive** -- brute-force cartesian product over the children (used
  only for small, interacting choice sets, e.g. chunk x library within one
  fusion group);
* **prefix** -- children explored one at a time in order, each frozen at
  its best before the next starts (section 4.5.4, history-aware stream
  epochs).

Every variable's measurements live in the shared
:class:`~repro.core.profile_index.ProfileIndex` under context-mangled
keys; a choice whose key is already present is skipped (no mini-batch is
spent re-measuring it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .profile_index import Key, ProfileIndex, mangle

MODE_PARALLEL = "parallel"
MODE_EXHAUSTIVE = "exhaustive"
MODE_PREFIX = "prefix"


class Explorable:
    """Common protocol for variables and composite tree nodes.

    Subclasses provide a ``name`` attribute (declared there rather than
    here so dataclass field ordering stays correct).
    """

    def initialize(self) -> None:
        raise NotImplementedError

    def assignment(self) -> dict[str, object]:
        """Current choice of every variable in this subtree."""
        raise NotImplementedError

    def advance(self, index: ProfileIndex, context: Key) -> bool:
        """Move to the next unmeasured configuration.

        Returns False when the subtree's exploration is complete (every
        variable then holds its best-known choice).
        """
        raise NotImplementedError

    def finalize(self, index: ProfileIndex, context: Key) -> None:
        """Set every variable in the subtree to its best measured choice."""
        raise NotImplementedError

    def variables(self) -> Iterable["AdaptiveVariable"]:
        raise NotImplementedError

    def snapshot_state(self) -> tuple:
        """Opaque cursor state, restorable with :meth:`restore_state`.

        Captures exploration *positions* only -- never choice lists or
        payloads -- so a snapshot stays valid as long as the tree's
        structure is unchanged.  The parallel engine uses snapshots to
        rewind speculative advances whose outcome depended on a
        measurement that had not been merged yet.
        """
        raise NotImplementedError

    def restore_state(self, state: tuple) -> None:
        raise NotImplementedError


@dataclass
class AdaptiveVariable(Explorable):
    """One unit of adaptation: a named, finite choice list.

    ``metric_kind`` tells the custom-wirer which measurement feeds this
    variable (section 4.7): ``"units"`` sums the execution times of the
    schedule units the variable controlled this mini-batch; ``"epoch"``
    reads the stream-completion metric of the variable's epoch;
    ``"end_to_end"`` reads whole-mini-batch time.
    """

    name: str
    choices: list
    metric_kind: str = "units"
    #: opaque payload the plan builder uses (e.g. fusion group object)
    payload: object = None

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"variable {self.name!r} has no choices")
        self._position = 0
        self._exhausted = len(self.choices) == 1

    # -- Explorable ----------------------------------------------------------

    def initialize(self) -> None:
        self._position = 0
        self._exhausted = len(self.choices) == 1

    @property
    def value(self):
        return self.choices[self._position]

    def set_value(self, choice) -> None:
        self._position = self.choices.index(choice)

    def assignment(self) -> dict[str, object]:
        return {self.name: self.value}

    def profile_key(self, context: Key, choice=None) -> Key:
        if choice is None:
            choice = self.value
        return mangle(context, (self.name, choice))

    def get_profile_value(self, index: ProfileIndex, context: Key, choice=None) -> float | None:
        """The paper's get_profile_value interface (section 4.4.2)."""
        return index.get(self.profile_key(context, choice))

    def measured(self, index: ProfileIndex, context: Key, choice=None) -> bool:
        return self.profile_key(context, choice) in index

    def advance(self, index: ProfileIndex, context: Key) -> bool:
        """Step to the next choice whose measurement is missing."""
        if self._exhausted:
            return False
        position = self._position
        while True:
            position += 1
            if position >= len(self.choices):
                self._exhausted = True
                self.finalize(index, context)
                return False
            if not self.measured(index, context, self.choices[position]):
                self._position = position
                return True

    def finalize(self, index: ProfileIndex, context: Key) -> None:
        best_choice, best_value = None, None
        for choice in self.choices:
            value = index.get(self.profile_key(context, choice))
            if value is not None and (best_value is None or value < best_value):
                best_choice, best_value = choice, value
        if best_choice is not None:
            self.set_value(best_choice)
        self._exhausted = True

    def variables(self) -> Iterable["AdaptiveVariable"]:
        yield self

    def snapshot_state(self) -> tuple:
        return (self._position, self._exhausted)

    def restore_state(self, state: tuple) -> None:
        self._position, self._exhausted = state

    @property
    def exhausted(self) -> bool:
        return self._exhausted


@dataclass
class UpdateNode(Explorable):
    """Composite tree node with an exploration-mode annotation."""

    name: str
    mode: str
    children: list[Explorable] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_PARALLEL, MODE_EXHAUSTIVE, MODE_PREFIX):
            raise ValueError(f"unknown exploration mode {self.mode!r}")
        self._prefix_cursor = 0
        self._done: list[bool] = []

    def initialize(self) -> None:
        self._prefix_cursor = 0
        self._done = [False] * len(self.children)
        for child in self.children:
            child.initialize()

    def assignment(self) -> dict[str, object]:
        merged: dict[str, object] = {}
        for child in self.children:
            merged.update(child.assignment())
        return merged

    def variables(self) -> Iterable[AdaptiveVariable]:
        for child in self.children:
            yield from child.variables()

    # -- mode semantics --------------------------------------------------

    def advance(self, index: ProfileIndex, context: Key) -> bool:
        if not self.children:
            return False
        if self.mode == MODE_PARALLEL:
            any_live = False
            for pos, child in enumerate(self.children):
                if self._done[pos]:
                    continue
                if child.advance(index, context):
                    any_live = True
                else:
                    self._done[pos] = True
            return any_live
        if self.mode == MODE_EXHAUSTIVE:
            # odometer: advance the first child; on wrap, reset it and carry
            for pos, child in enumerate(self.children):
                if child.advance(index, context):
                    for earlier in self.children[:pos]:
                        earlier.initialize()
                    return True
            self.finalize(index, context)
            return False
        # MODE_PREFIX
        while self._prefix_cursor < len(self.children):
            child = self.children[self._prefix_cursor]
            if child.advance(index, context):
                return True
            child.finalize(index, context)
            self._prefix_cursor += 1
        return False

    def finalize(self, index: ProfileIndex, context: Key) -> None:
        for child in self.children:
            child.finalize(index, context)

    def snapshot_state(self) -> tuple:
        return (
            self._prefix_cursor,
            tuple(self._done),
            tuple(child.snapshot_state() for child in self.children),
        )

    def restore_state(self, state: tuple) -> None:
        cursor, done, child_states = state
        self._prefix_cursor = cursor
        self._done = list(done)
        for child, child_state in zip(self.children, child_states):
            child.restore_state(child_state)


def count_configurations(node: Explorable) -> int:
    """Upper bound on mini-batches this subtree needs (before index hits).

    Parallel composes with max, prefix/leaf with sum, exhaustive with
    product -- the arithmetic behind the paper's section 4.5.1 example
    (``3 * 2 = 6 trials`` instead of ``(3*2)^5``).
    """
    if isinstance(node, AdaptiveVariable):
        return len(node.choices)
    assert isinstance(node, UpdateNode)
    if not node.children:
        return 0
    sizes = [count_configurations(child) for child in node.children]
    if node.mode == MODE_PARALLEL:
        return max(sizes)
    if node.mode == MODE_EXHAUSTIVE:
        product = 1
        for size in sizes:
            product *= max(1, size)
        return product
    return sum(sizes)
