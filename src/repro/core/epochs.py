"""Epoch and super-epoch partitioning for stream exploration.

Section 4.5.3/4.5.4: stream scheduling is history-sensitive, so Astra

* cuts the unit list into **epochs** -- antichains of mutually independent
  units at the same dependency depth, schedulable across streams with only
  intra-epoch synchronization;
* groups consecutive epochs into **super-epochs** calibrated to a few
  milliseconds of estimated GPU time (static flops calculation), with a
  forced cross-stream barrier at each boundary: the barrier resets stream
  history so different super-epochs explore *in parallel*;
* collapses interchangeable kernels inside an epoch into **equivalence
  classes** (same shape, same dependency pattern, section 4.5.5), so the
  choice space is "how many per stream", not "which ones".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..gpu.device import GPUSpec
from ..runtime.plan import Unit

#: target execution time per super-epoch, microseconds (section 4.5.3:
#: "a few milliseconds worth of computation time")
SUPER_EPOCH_TARGET_US = 2000.0

#: static knowledge (section 4.8): prune stream assignments whose flop
#: balance across streams is worse than this ratio
MAX_FLOP_IMBALANCE = 4.0

#: cap on enumerated assignments per epoch (largest epochs fall back to
#: equivalence-class count splits)
MAX_EPOCH_OPTIONS = 24

#: epochs whose estimated execution time is below this are not worth
#: spreading across streams (static knowledge, section 4.8): the sync
#: events would cost more than the overlap gains
MIN_EPOCH_ADAPT_US = 25.0


@dataclass
class Epoch:
    """One antichain of units, plus its enumerated stream assignments."""

    super_epoch: int
    index: int
    unit_ids: list[int]
    #: each option maps unit id -> stream
    options: list[dict[int, int]]


@dataclass
class EpochPartition:
    epochs: list[Epoch]
    #: unit id -> (super_epoch, epoch index)
    coordinates: dict[int, tuple[int, int]]
    num_super_epochs: int

    def barrier_units(self) -> set[int]:
        """Last unit of each super-epoch except the final one."""
        last: dict[int, int] = {}
        for epoch in self.epochs:
            for uid in epoch.unit_ids:
                last[epoch.super_epoch] = max(last.get(epoch.super_epoch, -1), uid)
        super_ids = sorted(last)
        return {last[se] for se in super_ids[:-1]}


def _unit_levels(units: list[Unit], deps: dict[int, set[int]]) -> dict[int, int]:
    """Dependency depth of each unit (longest path from a source)."""
    from ..runtime.dispatcher import topological_units

    levels: dict[int, int] = {}
    for unit in topological_units(units, deps):
        parents = deps.get(unit.unit_id, set())
        levels[unit.unit_id] = 1 + max((levels[p] for p in parents), default=-1)
    return levels


def _equivalence_key(unit: Unit) -> tuple:
    """Units with the same kernel signature are interchangeable within an
    epoch (same shape, same level => same in/outbound structure class)."""
    kernel = unit.kernel
    if kernel is None:
        return ("host", unit.label)
    return (kernel.kind, kernel.name)


def _enumerate_options(
    unit_ids: list[int], units_by_id: dict[int, Unit], num_streams: int
) -> list[dict[int, int]]:
    """Stream assignments for one epoch.

    Small heterogeneous epochs are enumerated exhaustively (section 4.5.2's
    "within a super-epoch we still need to perform exhaustive exploration");
    equivalence classes reduce same-shape kernels to count splits
    (section 4.5.5); flop balance prunes hopeless assignments (section 4.8).
    """
    if len(unit_ids) == 1:
        return [{unit_ids[0]: 0}]

    flops = {uid: max(1, units_by_id[uid].kernel.flops() if units_by_id[uid].kernel else 1)
             for uid in unit_ids}
    classes: dict[tuple, list[int]] = {}
    for uid in unit_ids:
        classes.setdefault(_equivalence_key(units_by_id[uid]), []).append(uid)

    # per-class choices: how many of the class's kernels go to each stream;
    # members are interchangeable so only counts matter
    class_splits: list[list[tuple[int, ...]]] = []
    class_members: list[list[int]] = []
    for members in classes.values():
        count = len(members)
        splits = _count_splits(count, num_streams)
        class_splits.append(splits)
        class_members.append(members)

    options: list[dict[int, int]] = []
    for combo in product(*class_splits):
        assignment: dict[int, int] = {}
        stream_flops = [0.0] * num_streams
        for members, split in zip(class_members, combo):
            cursor = 0
            for stream, take in enumerate(split):
                for uid in members[cursor: cursor + take]:
                    assignment[uid] = stream
                    stream_flops[stream] += flops[uid]
                cursor += take
        busy = [f for f in stream_flops if f > 0]
        if len(busy) > 1 and max(busy) / min(busy) > MAX_FLOP_IMBALANCE:
            continue
        options.append(assignment)
        if len(options) >= MAX_EPOCH_OPTIONS:
            break
    if not options:
        options.append({uid: 0 for uid in unit_ids})
    return options


def _count_splits(count: int, num_streams: int) -> list[tuple[int, ...]]:
    """All ways to split ``count`` interchangeable kernels over streams
    (ordered tuples summing to count), most-serial first so option 0 is the
    single-stream default."""
    if num_streams == 1:
        return [(count,)]
    splits: list[tuple[int, ...]] = []

    def rec(remaining: int, streams_left: int, acc: tuple[int, ...]) -> None:
        if streams_left == 1:
            splits.append(acc + (remaining,))
            return
        for take in range(remaining, -1, -1):
            rec(remaining - take, streams_left - 1, acc + (take,))

    rec(count, num_streams, ())
    # deterministic order: all-in-stream-0 first (the no-streams baseline)
    splits.sort(key=lambda s: tuple(-x for x in s))
    return splits


def partition_epochs(
    units: list[Unit],
    deps: dict[int, set[int]],
    device: GPUSpec,
    num_streams: int = 2,
    target_us: float = SUPER_EPOCH_TARGET_US,
) -> EpochPartition:
    """Assign every unit to (super_epoch, epoch) and enumerate per-epoch
    stream options.  Also *writes* the coordinates onto the units."""
    units_by_id = {u.unit_id: u for u in units}
    levels = _unit_levels(units, deps)

    by_level: dict[int, list[int]] = {}
    for uid, level in levels.items():
        by_level.setdefault(level, []).append(uid)

    # estimate per-level time to calibrate super-epoch boundaries
    per_slot = device.peak_flops_per_us * 0.5
    epochs: list[Epoch] = []
    coordinates: dict[int, tuple[int, int]] = {}
    super_epoch = 0
    budget = 0.0
    epoch_index = 0
    for level in sorted(by_level):
        unit_ids = sorted(by_level[level])
        est = sum(
            (units_by_id[uid].kernel.flops() if units_by_id[uid].kernel else 0) / per_slot
            + device.launch_overhead_us
            for uid in unit_ids
        )
        if budget >= target_us:
            super_epoch += 1
            epoch_index = 0
            budget = 0.0
        budget += est
        if est < MIN_EPOCH_ADAPT_US:
            options = [{uid: 0 for uid in unit_ids}]
        else:
            options = _enumerate_options(unit_ids, units_by_id, num_streams)
        epochs.append(Epoch(super_epoch, epoch_index, unit_ids, options))
        for uid in unit_ids:
            coordinates[uid] = (super_epoch, epoch_index)
            units_by_id[uid].super_epoch = super_epoch
            units_by_id[uid].epoch = epoch_index
        epoch_index += 1

    return EpochPartition(
        epochs=epochs,
        coordinates=coordinates,
        num_super_epochs=super_epoch + 1,
    )
