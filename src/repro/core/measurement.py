"""Noise-robust measurement policy: min-of-k with MAD outlier rejection.

Astra's exploration trusts single mini-batch measurements because the
paper pins the GPU to its base clock (section 7).  When that assumption
breaks -- autoboost jitter, throttle windows, multi-tenant stragglers,
plausibly-corrupted timestamps -- a single sample can crown the wrong
configuration.  The standard hardening (Learning to Optimize Tensor
Programs does the same for real-hardware measurement loops) is to
re-measure each configuration k times, reject outliers by robust
statistics, and score the configuration by the *minimum* surviving
sample: minimum, because timing noise on a deterministic device is
one-sided -- interference only ever adds time.

The policy also owns the failure-handling knobs: how many times a
measurement aborted by a transient fault is retried, how the retry
backoff grows, and when a configuration that keeps faulting is
quarantined out of the search space.
"""

from __future__ import annotations

from dataclasses import dataclass

#: profile-index value recorded for quarantined configurations: large
#: enough that finalize() never picks one over any real measurement, small
#: enough to survive a strict-JSON round trip (unlike infinity)
QUARANTINED_US = 1.0e30


@dataclass(frozen=True)
class MeasurementPolicy:
    """How the custom-wirer turns executions into trusted measurements."""

    #: mini-batches spent per configuration (min-of-k; 1 = paper behavior)
    samples: int = 1
    #: modified-z-score cutoff for MAD outlier rejection of the k samples
    mad_threshold: float = 3.5
    #: attempts per sample when a transient fault aborts the mini-batch
    max_attempts: int = 3
    #: mini-batches of backoff charged after attempt i (grows 2**i); models
    #: waiting out interference instead of hammering a faulting device
    backoff_minibatches: int = 1
    #: consecutive fully-failed measurements before a configuration is
    #: quarantined (recorded as QUARANTINED_US so exploration moves on)
    quarantine_after: int = 1

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff_for(self, attempt: int) -> int:
        """Backoff (in mini-batches) charged before retry ``attempt``."""
        if attempt <= 0 or self.backoff_minibatches <= 0:
            return 0
        return self.backoff_minibatches * 2 ** (attempt - 1)


#: the paper's trusting single-sample policy
TRUSTING = MeasurementPolicy()
#: hardened policy for noisy/faulty environments (chaos runs default here)
ROBUST = MeasurementPolicy(samples=3, max_attempts=4, quarantine_after=2)


def median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of no values")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: list[float], center: float | None = None) -> float:
    """Median absolute deviation -- the robust spread estimate."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def reject_outliers(values: list[float], threshold: float = 3.5) -> list[float]:
    """Drop samples whose modified z-score ``0.6745*(x-med)/MAD`` exceeds
    ``threshold`` (Iglewicz & Hoaglin).  With fewer than three samples, or
    zero spread, every sample is kept."""
    if len(values) < 3:
        return list(values)
    med = median(values)
    spread = mad(values, med)
    if spread <= 0.0:
        return list(values)
    kept = [v for v in values if abs(0.6745 * (v - med) / spread) <= threshold]
    return kept or [med]


def robust_min(values: list[float], threshold: float = 3.5) -> float:
    """Min-of-k after MAD rejection: the configuration's trusted score.

    Rejection matters on the *low* side: a corrupted timestamp that
    deflates a duration would otherwise win the min outright."""
    return min(reject_outliers(values, threshold))
