"""Bucketed adaptation for dynamic graphs (section 5.5 / Table 8).

PyTorch-style dynamic graphs violate Astra's predictability assumption:
the traced computation depends on the input length.  Astra's answer is
bucketed profiling: input lengths are quantized into a small number of
buckets (5 in the paper, calibrated on the dataset's length
distribution), each bucket's graph is explored *independently* (the
bucket id is a context prefix in the profile index, multiplying the state
space by the bucket count), and each mini-batch runs the best
configuration of the nearest *larger* bucket -- paying a small amount of
extra computation in exchange for adaptation.

Memory is allocated once for the largest bucket and sliced for smaller
ones, avoiding reallocation as the exploration switches buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..gpu.device import GPUSpec, P100
from ..baselines.native import run_native
from ..models.cells import ModelConfig, TracedModel
from ..models.datasets import LengthDistribution, bucket_for, compute_buckets
from .enumerator import AstraFeatures
from .profile_index import ProfileIndex
from .session import AstraSession


@dataclass
class BucketOutcome:
    bound: int
    best_time_us: float
    configs_explored: int
    arena_hint_nodes: int


@dataclass
class BucketedReport:
    """Steady-state comparison of Astra+bucketing vs native dynamic graphs."""

    buckets: tuple[int, ...]
    outcomes: list[BucketOutcome]
    #: mean per-mini-batch time running each sample at its exact length
    native_dynamic_us: float
    #: mean per-mini-batch time mapping each sample to its bucket's plan
    astra_bucketed_us: float
    total_configs: int
    profile_entries: int
    #: fraction of computation wasted by rounding lengths up
    padding_overhead: float

    @property
    def speedup(self) -> float:
        return self.native_dynamic_us / self.astra_bucketed_us


def run_bucketed(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    distribution: LengthDistribution,
    num_buckets: int = 5,
    num_samples: int = 120,
    features: AstraFeatures | str = "FK",
    device: GPUSpec = P100,
    seed: int = 0,
    max_minibatches: int = 2000,
) -> BucketedReport:
    """Run the Table 8 experiment for one model/batch-size combination."""
    lengths = distribution.sample(num_samples, seed=seed)
    buckets = compute_buckets(lengths, num_buckets)

    index = ProfileIndex()
    outcomes: list[BucketOutcome] = []
    bucket_time: dict[int, float] = {}
    total_configs = 0
    for i, bound in enumerate(buckets):
        model = builder(config.scaled(seq_len=int(bound)))
        session = AstraSession(
            model,
            device=device,
            features=features,
            seed=seed + i,
            context=("bucket", i),
            index=index,
        )
        report = session.optimize(max_minibatches=max_minibatches)
        bucket_time[i] = report.best_time_us
        total_configs += report.configs_explored
        outcomes.append(
            BucketOutcome(
                bound=int(bound),
                best_time_us=report.best_time_us,
                configs_explored=report.configs_explored,
                arena_hint_nodes=len(model.graph),
            )
        )

    # native dynamic baseline: rebuild & run the exact-length graph per
    # distinct sample length (the framework's dynamic execution)
    native_by_length: dict[int, float] = {}
    for length in sorted(set(int(x) for x in lengths)):
        model = builder(config.scaled(seq_len=length))
        native_by_length[length] = run_native(model.graph, device).total_time_us

    native_total = 0.0
    astra_total = 0.0
    wasted_steps = 0
    total_steps = 0
    for raw in lengths:
        length = int(raw)
        native_total += native_by_length[length]
        b = bucket_for(length, buckets)
        astra_total += bucket_time[b]
        wasted_steps += buckets[b] - length
        total_steps += buckets[b]

    return BucketedReport(
        buckets=buckets,
        outcomes=outcomes,
        native_dynamic_us=native_total / len(lengths),
        astra_bucketed_us=astra_total / len(lengths),
        total_configs=total_configs,
        profile_entries=len(index),
        padding_overhead=wasted_steps / max(1, total_steps),
    )
