"""Static fusion analysis: GEMM fusion candidates and their layout needs.

Implements section 4.4.1's enumeration patterns:

* **fusion ladders** -- GEMM-accumulator chains ``mm(a1,b1) + mm(a2,b2) +
  ...`` collapse into one GEMM ``[a1 a2 ...] @ [b1; b2; ...]`` (the LSTM
  gate pre-activation ``x@W + h@U`` is the canonical instance);
* **common-argument groups** -- GEMMs sharing one operand and mutually
  independent fuse along the free dimension (``mm(%1,%5), mm(%1,%6)`` ->
  ``%1 @ [%5 %6]``), including 2-D sets where whole ladders share their
  A-side (the 4-gate LSTM block GEMM);
* **cross-step batching** -- GEMMs sharing their B-side across timesteps
  (``x_t @ W`` for all t) fuse along M when the steps are independent.

Each candidate carries the *layout requirement* its copy-free execution
imposes on the memory allocator (section 3.2 / Figure 1): ``rows`` =
tensors stacked vertically, ``cols`` = packed horizontally, ``block`` =
2-D gate-major packing.  Conflicting requirements are what the allocation
fork of section 4.5.2 arbitrates.

The enumerator identifies *maximal* groups; the custom-wirer picks the
actual fusion granularity by chunking (section 4.4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..ir import ops
from ..ir.graph import Graph, Node

#: static knowledge (section 4.8): fused GEMMs beyond this free-dimension
#: width hit diminishing returns and are not enumerated
MAX_FUSED_DIM = 8192

_STEP_RE = re.compile(r"/step\d+")


def provenance(scope: str) -> str:
    """Model-code provenance with the unroll step stripped: GEMMs from the
    same code line in the step loop share provenance (section 4.4.1)."""
    return _STEP_RE.sub("", scope)


@dataclass(frozen=True)
class Requirement:
    """A memory-layout constraint a fusion group needs to be copy-free.

    ``tensors`` is a tuple of per-member tuples (one inner tuple per fused
    member, in member order).  Two requirements conflict when they touch a
    shared tensor but are not the same requirement.
    """

    tensors: tuple[tuple[int, ...], ...]
    tag: str
    label: str = field(default="", compare=False)

    def all_tensors(self) -> frozenset[int]:
        return frozenset(t for member in self.tensors for t in member)

    def conflicts_with(self, other: "Requirement") -> bool:
        if self == other:
            return False
        return bool(self.all_tensors() & other.all_tensors())


@dataclass
class FusionMember:
    """One fusable element: a single GEMM, or a whole ladder.

    Effective dims: the member computes an ``(m, k_total) x (k_total, n)``
    product; ladders contribute ``k_total = sum(k_i)`` and absorb their
    accumulator adds.
    """

    mm_ids: tuple[int, ...]
    absorbed_ids: tuple[int, ...]
    a_signature: tuple  # ((node_id, transpose_flag), ...) of A-side operands
    b_nodes: tuple[int, ...]
    b_transposed: bool
    m: int
    ks: tuple[int, ...]  # per-GEMM reduction dims; a ladder sums them
    n: int
    scope: str
    pass_tag: str

    @property
    def k_total(self) -> int:
        return sum(self.ks)

    @property
    def node_ids(self) -> tuple[int, ...]:
        return self.mm_ids + self.absorbed_ids

    @property
    def is_ladder(self) -> bool:
        return len(self.mm_ids) > 1

    @property
    def a_gather_bytes(self) -> int:
        """A ladder gathers its A-side operands into one (m, k_total)
        buffer before the fused launch (4 bytes/elem, read+write)."""
        if not self.is_ladder:
            return 0
        return 2 * 4 * self.m * self.k_total

    def ladder_requirement(self) -> Requirement | None:
        if not self.is_ladder:
            return None
        tag = "cols" if self.b_transposed else "rows"
        return Requirement(
            tensors=tuple((b,) for b in self.b_nodes),
            tag=tag,
            label=f"ladder@{provenance(self.scope)}/{self.pass_tag}",
        )


@dataclass
class FusionGroup:
    """A maximal fusion candidate: members fused along ``axis``.

    ``axis`` is ``"n"`` for common-A groups (outputs concatenated along the
    free N dimension) and ``"m"`` for common-B cross-step batches.  The
    chunk adaptive variable picks how many consecutive members each launch
    covers.
    """

    group_id: str
    members: list[FusionMember]
    axis: str
    requirement: Requirement | None
    pass_tag: str
    scope: str

    @property
    def size(self) -> int:
        return len(self.members)

    def chunk_choices(self) -> list[int]:
        """1, 2, 4, ... up to the group size, capped by static knowledge."""
        lead = self.members[0]
        per_member = lead.n if self.axis == "n" else lead.m
        cap = max(1, MAX_FUSED_DIM // max(1, per_member))
        choices = [1]
        c = 2
        while c < self.size:
            if c <= cap:
                choices.append(c)
            c *= 2
        if self.size > 1 and self.size <= cap and self.size not in choices:
            choices.append(self.size)
        return choices

    def node_ids(self) -> tuple[int, ...]:
        return tuple(nid for member in self.members for nid in member.node_ids)

    def launch_dims(self, chunk_members: list[FusionMember]) -> tuple[int, int, int]:
        lead = chunk_members[0]
        if self.axis == "n":
            return lead.m, lead.k_total, sum(mb.n for mb in chunk_members)
        return sum(mb.m for mb in chunk_members), lead.k_total, lead.n


# ---------------------------------------------------------------------------
# Ladder detection
# ---------------------------------------------------------------------------


def _gemm_dims(graph: Graph, node: Node) -> tuple[int, int, int]:
    op: ops.MatMul = node.op  # type: ignore[assignment]
    return op.gemm_dims([graph.node(i).spec for i in node.input_ids])


def _single_consumer(graph: Graph, node_id: int) -> bool:
    return len(graph.consumers(node_id)) == 1


def detect_ladders(graph: Graph) -> tuple[list[FusionMember], set[int]]:
    """Find GEMM-accumulator ladders; returns members (ladders only) and
    the set of node ids they absorb.

    A subtree is *pure* when it consists only of single-consumer GEMMs and
    single-consumer adds over pure subtrees.  The deepest pure add with
    >= 2 GEMM leaves becomes one fused member; residual contributions
    (e.g. the bias in ``x@W + h@U + b``) stay behind as ordinary
    elementwise adds consuming the fused output.
    """
    members: list[FusionMember] = []
    taken: set[int] = set()
    purity: dict[int, bool] = {}

    def is_pure(node_id: int) -> bool:
        if node_id in purity:
            return purity[node_id]
        node = graph.node(node_id)
        if node.node_id in taken or not _single_consumer(graph, node_id):
            result = False
        elif isinstance(node.op, ops.MatMul):
            result = True
        elif isinstance(node.op, ops.Add):
            result = all(is_pure(i) for i in node.input_ids)
        else:
            result = False
        purity[node_id] = result
        return result

    def collect(node: Node, mms: list[Node], adds: list[int]) -> None:
        for inp_id in node.input_ids:
            inp = graph.node(inp_id)
            if isinstance(inp.op, ops.MatMul):
                mms.append(inp)
            else:  # pure add
                adds.append(inp_id)
                collect(inp, mms, adds)

    # scan top-down so we find *maximal* pure chains: a pure add whose
    # consumer is not itself a pure add is a chain root
    for node in reversed(graph.nodes):
        if not isinstance(node.op, ops.Add) or node.node_id in taken:
            continue
        if not is_pure(node.node_id):
            continue
        consumer = graph.consumers(node.node_id)[0]
        consumer_node = graph.node(consumer)
        if isinstance(consumer_node.op, ops.Add) and is_pure(consumer):
            continue  # interior of a larger pure chain
        mms: list[Node] = []
        adds: list[int] = [node.node_id]
        collect(node, mms, adds)
        if len(mms) < 2:
            continue
        dims = [_gemm_dims(graph, mm) for mm in mms]
        if len({(m, n) for (m, _k, n) in dims}) != 1:
            continue
        flags = {mm.op.transpose_b for mm in mms}  # type: ignore[union-attr]
        if len(flags) != 1:
            continue
        if len({mm.pass_tag for mm in mms}) != 1:
            continue
        mms_sorted = sorted(mms, key=lambda mm: mm.node_id)
        m, _, n = dims[0]
        member = FusionMember(
            mm_ids=tuple(mm.node_id for mm in mms_sorted),
            absorbed_ids=tuple(sorted(adds)),
            a_signature=tuple(
                (mm.input_ids[0], mm.op.transpose_a) for mm in mms_sorted  # type: ignore[union-attr]
            ),
            b_nodes=tuple(mm.input_ids[1] for mm in mms_sorted),
            b_transposed=flags.pop(),
            m=m,
            ks=tuple(k for (_m, k, _n) in dims),
            n=n,
            scope=mms_sorted[0].scope,
            pass_tag=mms_sorted[0].pass_tag,
        )
        members.append(member)
        taken.update(member.node_ids)
    return members, taken


def _plain_members(graph: Graph, taken: set[int]) -> list[FusionMember]:
    members = []
    for node in graph.gemm_nodes():
        if node.node_id in taken:
            continue
        m, k, n = _gemm_dims(graph, node)
        op: ops.MatMul = node.op  # type: ignore[assignment]
        members.append(
            FusionMember(
                mm_ids=(node.node_id,),
                absorbed_ids=(),
                a_signature=((node.input_ids[0], op.transpose_a),),
                b_nodes=(node.input_ids[1],),
                b_transposed=op.transpose_b,
                m=m,
                ks=(k,),
                n=n,
                scope=node.scope,
                pass_tag=node.pass_tag,
            )
        )
    return members


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------


def _members_independent(graph: Graph, members: list[FusionMember]) -> bool:
    """No member may (transitively) consume another member's output.

    External dependence can only enter through a member's GEMM nodes (a
    ladder's absorbed adds consume only its own GEMMs), and only via
    another member's *final* output node.
    """
    outputs = [max(mb.node_ids) for mb in members]
    for i, mb in enumerate(members):
        for j in range(len(members)):
            if i == j:
                continue
            out_j = outputs[j]
            for mm_id in mb.mm_ids:
                if mm_id > out_j and graph.depends_on(mm_id, out_j):
                    return False
    return True


def _common_a_groups(graph: Graph, members: list[FusionMember]) -> list[FusionGroup]:
    """Fuse along N: members sharing their full A-side signature."""
    buckets: dict[tuple, list[FusionMember]] = {}
    for mb in members:
        key = (mb.a_signature, mb.m, mb.b_transposed, mb.pass_tag, provenance(mb.scope))
        buckets.setdefault(key, []).append(mb)
    groups = []
    for key, bucket in buckets.items():
        if len(bucket) < 2:
            continue
        bucket.sort(key=lambda mb: mb.mm_ids[0])
        if not _members_independent(graph, bucket):
            continue
        b_transposed = key[2]
        if any(mb.is_ladder for mb in bucket):
            tag = "block"
        else:
            tag = "rows" if b_transposed else "cols"
        requirement = Requirement(
            tensors=tuple(mb.b_nodes for mb in bucket),
            tag=tag,
            label=f"commonA@{provenance(bucket[0].scope)}/{bucket[0].pass_tag}",
        )
        groups.append(
            FusionGroup(
                group_id=requirement.label + f"#{bucket[0].mm_ids[0]}",
                members=bucket,
                axis="n",
                requirement=requirement,
                pass_tag=bucket[0].pass_tag,
                scope=bucket[0].scope,
            )
        )
    return groups


def _common_b_groups(graph: Graph, members: list[FusionMember]) -> list[FusionGroup]:
    """Fuse along M: plain GEMMs sharing their B-side across steps."""
    buckets: dict[tuple, list[FusionMember]] = {}
    for mb in members:
        if mb.is_ladder:
            continue
        a_node, a_t = mb.a_signature[0]
        key = (mb.b_nodes, mb.b_transposed, a_t, mb.n, mb.pass_tag, provenance(mb.scope))
        buckets.setdefault(key, []).append(mb)
    groups = []
    for key, bucket in buckets.items():
        if len(bucket) < 2:
            continue
        bucket.sort(key=lambda mb: mb.mm_ids[0])
        if not _members_independent(graph, bucket):
            continue
        # A-side activations must sit stacked (rows) to batch along M
        requirement = Requirement(
            tensors=tuple((mb.a_signature[0][0],) for mb in bucket),
            tag="rows",
            label=f"commonB@{provenance(bucket[0].scope)}/{bucket[0].pass_tag}",
        )
        groups.append(
            FusionGroup(
                group_id=requirement.label + f"#{bucket[0].mm_ids[0]}",
                members=bucket,
                axis="m",
                requirement=requirement,
                pass_tag=bucket[0].pass_tag,
                scope=bucket[0].scope,
            )
        )
    return groups


@dataclass
class FusionAnalysis:
    """Everything the static fusion pass found."""

    groups: list[FusionGroup]
    #: members not in any group (standalone GEMMs and lone ladders)
    singletons: list[FusionMember]
    #: requirements of lone ladders (they still constrain allocation)
    ladder_requirements: list[Requirement]


def _plain_of(member: FusionMember, i: int) -> FusionMember:
    """Member ``i`` of a ladder as a standalone single-GEMM member."""
    return FusionMember(
        mm_ids=(member.mm_ids[i],),
        absorbed_ids=(),
        a_signature=(member.a_signature[i],),
        b_nodes=(member.b_nodes[i],),
        b_transposed=member.b_transposed,
        m=member.m,
        ks=(member.ks[i],),
        n=member.n,
        scope=member.scope,
        pass_tag=member.pass_tag,
    )


def _shrink_ladder(member: FusionMember, tensor: int) -> list[FusionMember]:
    """Drop the GEMM whose B-side is ``tensor`` from a ladder.

    Returns the resulting members: the shrunk ladder plus the dropped
    GEMM(s) as plain members.  The chain-root adds released by the drop
    return to ordinary elementwise execution.  A ladder reduced below two
    GEMMs dissolves entirely.
    """
    keep = [i for i, b in enumerate(member.b_nodes) if b != tensor]
    drop = [i for i in range(len(member.b_nodes)) if i not in keep]
    if not drop:
        return [member]
    freed = [_plain_of(member, i) for i in drop]
    if len(keep) < 2:
        return freed + [_plain_of(member, i) for i in keep]
    # un-absorb the top-most adds (the chain roots), one per dropped mm
    absorbed = tuple(sorted(member.absorbed_ids))[:-len(drop)]
    shrunk = FusionMember(
        mm_ids=tuple(member.mm_ids[i] for i in keep),
        absorbed_ids=absorbed,
        a_signature=tuple(member.a_signature[i] for i in keep),
        b_nodes=tuple(member.b_nodes[i] for i in keep),
        b_transposed=member.b_transposed,
        m=member.m,
        ks=tuple(member.ks[i] for i in keep),
        n=member.n,
        scope=member.scope,
        pass_tag=member.pass_tag,
    )
    return [shrunk] + freed


def resolve_static_conflicts(analysis: FusionAnalysis) -> FusionAnalysis:
    """Section 4.5.2's static resolution: when two layout requirements
    conflict through exactly one shared tensor, remove the offending
    member from both sides so both fusions can coexist.

    Non-trivial conflicts (>=2 shared tensors) are left for the allocation
    fork to arbitrate by measurement.
    """
    owners: list[tuple[Requirement, object]] = []
    for group in analysis.groups:
        if group.requirement is not None:
            owners.append((group.requirement, group))
    for member in analysis.singletons:
        req = member.ladder_requirement()
        if req is not None:
            owners.append((req, member))

    to_drop: dict[int, set[int]] = {}  # id(owner) -> offending tensors
    for i in range(len(owners)):
        for j in range(i + 1, len(owners)):
            req_a, owner_a = owners[i]
            req_b, owner_b = owners[j]
            if req_a == req_b:
                continue
            overlap = req_a.all_tensors() & req_b.all_tensors()
            if len(overlap) != 1:
                continue
            tensor = next(iter(overlap))
            to_drop.setdefault(id(owner_a), set()).add(tensor)
            to_drop.setdefault(id(owner_b), set()).add(tensor)

    if not to_drop:
        return analysis

    new_groups: list[FusionGroup] = []
    new_singletons: list[FusionMember] = list()
    for group in analysis.groups:
        offenders = to_drop.get(id(group), set())
        if not offenders:
            new_groups.append(group)
            continue
        kept_members, freed = [], []
        for member in group.members:
            if set(member.b_nodes) & offenders or (
                group.axis == "m" and member.a_signature[0][0] in offenders
            ):
                freed.append(member)
            else:
                kept_members.append(member)
        if len(kept_members) >= 2:
            requirement = Requirement(
                tensors=tuple(mb.b_nodes for mb in kept_members)
                if group.axis == "n"
                else tuple((mb.a_signature[0][0],) for mb in kept_members),
                tag=group.requirement.tag,  # type: ignore[union-attr]
                label=group.requirement.label + "~resolved",  # type: ignore[union-attr]
            )
            new_groups.append(
                FusionGroup(
                    group_id=group.group_id,
                    members=kept_members,
                    axis=group.axis,
                    requirement=requirement,
                    pass_tag=group.pass_tag,
                    scope=group.scope,
                )
            )
            new_singletons.extend(freed)
        else:
            new_singletons.extend(group.members)

    for member in analysis.singletons:
        offenders = to_drop.get(id(member), set())
        if not offenders or not member.is_ladder:
            new_singletons.append(member)
            continue
        current = [member]
        for tensor in offenders:
            result = []
            for mb in current:
                if mb.is_ladder:
                    result.extend(_shrink_ladder(mb, tensor))
                else:
                    result.append(mb)
            current = result
        new_singletons.extend(current)

    ladder_reqs = [
        req for mb in new_singletons if (req := mb.ladder_requirement()) is not None
    ]
    return FusionAnalysis(
        groups=new_groups, singletons=new_singletons, ladder_requirements=ladder_reqs
    )


def analyse_fusion(graph: Graph) -> FusionAnalysis:
    """Run the full static fusion analysis of section 4.4.1."""
    ladders, taken = detect_ladders(graph)
    plains = _plain_members(graph, taken)
    members = ladders + plains

    groups = _common_a_groups(graph, members)
    grouped: set[tuple[int, ...]] = {mb.mm_ids for g in groups for mb in g.members}

    # cross-step M-batching only for members not already fused along N
    remaining = [mb for mb in members if mb.mm_ids not in grouped]
    m_groups = _common_b_groups(graph, remaining)
    for g in m_groups:
        grouped.update(mb.mm_ids for mb in g.members)
    groups.extend(m_groups)

    singletons = [mb for mb in members if mb.mm_ids not in grouped]
    ladder_reqs = [
        req for mb in singletons if (req := mb.ladder_requirement()) is not None
    ]
    return FusionAnalysis(groups=groups, singletons=singletons, ladder_requirements=ladder_reqs)
