"""AstraSession: the public entry point of the library.

Typical use::

    from repro import AstraSession
    from repro.models import build_scrnn, ModelConfig

    model = build_scrnn(ModelConfig(batch_size=32, seq_len=6))
    session = AstraSession(model, features="all")
    report = session.optimize()
    print(report.speedup_over_native, report.configs_explored)

A session owns the traced model, the device, the enumerator/wirer pair and
the baseline measurement, and reports speedups the way the paper's tables
do (relative to the native single-stream framework execution).

A session can also run hardened (see ``docs/robustness.md``): pass a
:class:`~repro.faults.plan.FaultPlan` to inject faults, a
:class:`~repro.core.measurement.MeasurementPolicy` for min-of-k robust
measurement, and ``checkpoint_path`` to make the exploration preemptible
and resumable.  Hardened sessions enforce the degradation invariant: the
plan a session returns is never slower than native -- if fault damage
made the explored winner worse, the session degrades to the native plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..baselines.native import native_plan
from ..faults.checkpoint import ExplorationCheckpoint
from ..gpu.device import GPUSpec, P100
from ..ir.graph import Graph
from ..models.cells import TracedModel
from ..runtime.executor import Executor
from .enumerator import AstraFeatures
from .profile_index import ProfileIndex
from .wirer import AstraReport, CustomWirer


@dataclass
class SessionReport:
    """An :class:`AstraReport` plus baseline-relative numbers."""

    astra: AstraReport
    native_time_us: float
    speedup_over_native: float

    @property
    def configs_explored(self) -> int:
        return self.astra.configs_explored

    @property
    def best_time_us(self) -> float:
        return self.astra.best_time_us

    @property
    def degraded(self) -> bool:
        return self.astra.degraded

    @property
    def warm(self) -> dict:
        """Warm-start accounting (empty for cold runs)."""
        return self.astra.warm


class AstraSession:
    """Optimizes one traced training job on one (simulated) device."""

    def __init__(
        self,
        model: TracedModel | Graph,
        device: GPUSpec = P100,
        features: AstraFeatures | str = "all",
        seed: int = 0,
        context: tuple = (),
        index: ProfileIndex | None = None,
        metrics=None,
        reporter=None,
        tracer=None,
        validate: bool = False,
        policy=None,
        faults=None,
        checkpoint_path: str | None = None,
        fast=None,
        clock=None,
        workers: int | None = None,
        parallel=None,
        provenance=None,
        store=None,
        server=None,
        learned=None,
    ):
        self.graph = model.graph if isinstance(model, TracedModel) else model
        self.model = model if isinstance(model, TracedModel) else None
        self.device = device
        self.seed = seed
        if isinstance(features, str):
            features = AstraFeatures.preset(features)
        self.features = features
        self.checkpoint_path = checkpoint_path
        # cross-job warm start (docs/serving.md): a local ProfileStore
        # path/instance and/or a serve-daemon URL/client whose indexes
        # seed this job's exploration and receive its measurements back.
        # Bound before the wirer so ``learned="store"`` can resolve the
        # store's published cost-model artifact (docs/learning.md)
        self._store = store
        self._server = server
        if learned == "store":
            binding = self._store_binding()
            learned = binding.load_model() if binding is not None else None
            if learned is None and metrics is not None:
                metrics.counter("learn.artifact_missing").inc()
        self.wirer = CustomWirer(
            self.graph, device, features, seed=seed, context=context, index=index,
            metrics=metrics, reporter=reporter, tracer=tracer, validate=validate,
            policy=policy, faults=faults, checkpoint_path=checkpoint_path,
            fast=fast, clock=clock, workers=workers, parallel=parallel,
            provenance=provenance, learned=learned,
        )
        # resume-on-restart: an existing checkpoint for the same
        # (graph, device, features, seed) is adopted automatically, so
        # rerunning the same command after a preemption continues the
        # exploration instead of restarting it
        if checkpoint_path and os.path.exists(checkpoint_path):
            self.wirer.restore(ExplorationCheckpoint.load(checkpoint_path))
        self._job_digest: str | None = None
        self._warm_done = False
        self._published_keys: set = set()

    def close(self) -> None:
        """Release held resources (the parallel engine's worker pool)."""
        self.wirer.close()

    # -- cross-job warm start (docs/serving.md) -----------------------------

    def job_digest(self) -> str | None:
        """This job's measurement-space identity, or None when neither a
        store nor a server is configured (no sharing requested)."""
        if self._store is None and self._server is None:
            return None
        if self._job_digest is None:
            from ..serve.keys import job_digest

            self._job_digest = job_digest(
                self.graph, self.device, self.features,
                context=self.wirer.base_context, policy=self.wirer.policy,
            )
        return self._job_digest

    def _store_binding(self):
        """Materialize a path argument into a live ProfileStore once."""
        if isinstance(self._store, str):
            from ..serve.store import ProfileStore

            self._store = ProfileStore(self._store)
        return self._store

    def _server_binding(self):
        """Materialize a URL argument into a live ServeClient once."""
        if isinstance(self._server, str):
            from ..serve.client import ServeClient

            self._server = ServeClient(self._server)
        return self._server

    def _warm_start(self) -> None:
        """Seed the wirer's index from every configured warm source.

        Runs once, before the first exploration mini-batch.  Sources
        merge first-writer-wins in a fixed order (store, then server),
        so two sessions with the same sources seed identically.  A
        source with nothing for this job is a recorded miss, not an
        error -- the run simply starts cold and publishes afterwards.
        """
        if self._warm_done:
            return
        self._warm_done = True
        digest = self.job_digest()
        if digest is None:
            return
        store = self._store_binding()
        if store is not None:
            index = store.load(digest)
            self.wirer.warm_start(
                index.snapshot() if index is not None else (),
                source="store", digest=digest,
            )
        client = self._server_binding()
        if client is not None:
            try:
                entries = client.get_index(digest)
            except OSError:
                entries = None  # daemon unreachable: degrade to cold
                self.wirer.metrics.counter("warm.server_unreachable").inc()
            self.wirer.warm_start(
                entries or (), source="server", digest=digest
            )
        # everything present after seeding (including checkpoint-restored
        # entries) is someone else's work: publish only this run's delta
        self._published_keys = set(self.wirer.index.snapshot())

    def _publish(self) -> None:
        """Push this run's fresh measurements back to the warm sources."""
        digest = self.job_digest()
        if digest is None:
            return
        delta = [
            (key, value)
            for key, value in self.wirer.index.snapshot().items()
            if key not in self._published_keys
        ]
        if not delta:
            return
        store = self._store_binding()
        if store is not None:
            store.put(digest, delta)
            self.wirer.metrics.counter("warm.published_entries").inc(len(delta))
        client = self._server_binding()
        if client is not None:
            try:
                client.put_index(digest, delta)
                self.wirer.metrics.counter("warm.published_entries").inc(
                    len(delta)
                )
            except OSError:
                self.wirer.metrics.counter("warm.server_unreachable").inc()
        self._published_keys.update(key for key, _value in delta)

    def __enter__(self) -> "AstraSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def measure_native(self) -> float:
        """Mini-batch time of the unadapted framework execution.

        Always taken on a clean (injector-free) executor: the baseline
        describes the framework, not the injected interference.
        """
        executor = Executor(
            self.graph, self.device, seed=self.seed, clock=self.wirer.clock
        )
        return executor.run(native_plan(self.graph)).total_time_us

    def measure_clean(self, plan) -> float:
        """Mini-batch time of ``plan`` on a clean executor (no injector)."""
        executor = Executor(
            self.graph, self.device, seed=self.seed, clock=self.wirer.clock
        )
        return executor.run(plan).total_time_us

    def optimize(
        self, max_minibatches: int = 5000, *, measure_native: bool = True
    ) -> SessionReport:
        """Run the exploration; with ``measure_native=False`` the native
        baseline is skipped and the report's baseline-relative fields are
        neutral (``speedup_over_native == 1.0``).

        Inner sessions (one per device class of a fleet strategy search)
        use this: they only need ``best_time_us``, and the caller already
        owns its own baseline -- measuring native once per device class
        per shard size would double every calibration.  The degradation
        invariant still holds: a hardened session (armed injector)
        measures the baseline on demand before enforcing it.
        """
        self._warm_start()
        native_time = self.measure_native() if measure_native else None
        report = self.wirer.optimize(max_minibatches=max_minibatches)
        if self.wirer.injector is not None and not report.degraded:
            if native_time is None:
                native_time = self.measure_native()
            report = self._enforce_degradation(report, native_time)
        self._publish()
        if native_time is None:
            return SessionReport(
                astra=report,
                native_time_us=0.0,
                speedup_over_native=1.0,
            )
        return SessionReport(
            astra=report,
            native_time_us=native_time,
            speedup_over_native=native_time / report.best_time_us,
        )

    def _enforce_degradation(
        self, report: AstraReport, native_time: float
    ) -> AstraReport:
        """The degradation invariant: never ship a plan slower than native.

        Under fault injection the exploration can crown a wrong winner
        (e.g. the true best was quarantined away).  Re-measure the chosen
        plan on a clean executor; if it is slower than native, custom-wire
        to the native plan instead and mark the report degraded.
        """
        clean_time = self.measure_clean(report.best_plan)
        if clean_time <= native_time:
            # the explored winner survives a clean confirmation: report
            # its clean time so speedups describe the plan, not the noise
            report.best_time_us = clean_time
            return report
        plan = native_plan(self.graph)
        plan.label = "native/degraded"
        report.best_plan = plan
        report.best_time_us = native_time
        report.degraded = True
        self.wirer.metrics.counter("recovery.degraded").inc()
        self.wirer.reporter.fault(
            "degraded", "degradation",
            f"explored plan ({clean_time:.1f}us) slower than native "
            f"({native_time:.1f}us); custom-wired to native plan",
        )
        self.wirer.tracer.instant("degraded", best_time_us=native_time)
        return report
