"""AstraSession: the public entry point of the library.

Typical use::

    from repro import AstraSession
    from repro.models import build_scrnn, ModelConfig

    model = build_scrnn(ModelConfig(batch_size=32, seq_len=6))
    session = AstraSession(model, features="all")
    report = session.optimize()
    print(report.speedup_over_native, report.configs_explored)

A session owns the traced model, the device, the enumerator/wirer pair and
the baseline measurement, and reports speedups the way the paper's tables
do (relative to the native single-stream framework execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.native import native_plan
from ..gpu.device import GPUSpec, P100
from ..ir.graph import Graph
from ..models.cells import TracedModel
from ..runtime.executor import Executor
from .enumerator import AstraFeatures
from .profile_index import ProfileIndex
from .wirer import AstraReport, CustomWirer


@dataclass
class SessionReport:
    """An :class:`AstraReport` plus baseline-relative numbers."""

    astra: AstraReport
    native_time_us: float
    speedup_over_native: float

    @property
    def configs_explored(self) -> int:
        return self.astra.configs_explored

    @property
    def best_time_us(self) -> float:
        return self.astra.best_time_us


class AstraSession:
    """Optimizes one traced training job on one (simulated) device."""

    def __init__(
        self,
        model: TracedModel | Graph,
        device: GPUSpec = P100,
        features: AstraFeatures | str = "all",
        seed: int = 0,
        context: tuple = (),
        index: ProfileIndex | None = None,
        metrics=None,
        reporter=None,
        tracer=None,
        validate: bool = False,
    ):
        self.graph = model.graph if isinstance(model, TracedModel) else model
        self.model = model if isinstance(model, TracedModel) else None
        self.device = device
        if isinstance(features, str):
            features = AstraFeatures.preset(features)
        self.features = features
        self.wirer = CustomWirer(
            self.graph, device, features, seed=seed, context=context, index=index,
            metrics=metrics, reporter=reporter, tracer=tracer, validate=validate,
        )

    def measure_native(self) -> float:
        """Mini-batch time of the unadapted framework execution."""
        executor = Executor(self.graph, self.device)
        return executor.run(native_plan(self.graph)).total_time_us

    def optimize(self, max_minibatches: int = 5000) -> SessionReport:
        native_time = self.measure_native()
        report = self.wirer.optimize(max_minibatches=max_minibatches)
        return SessionReport(
            astra=report,
            native_time_us=native_time,
            speedup_over_native=native_time / report.best_time_us,
        )
