"""Allocation strategies: arbitrating conflicting layout requirements.

Fusion groups impose layout requirements on their operand tensors
(section 3.2); forward- and backward-pass groups frequently want the same
weights in different layouts (Figure 1).  Section 4.5.2's recipe:

* conflicts caused by a single shared tensor are resolved *statically* by
  dropping the offending tensor from both groups;
* non-trivial conflicts become a top-level fork in the exploration space:
  each allocation strategy satisfies a maximal compatible subset of
  requirements, fusion adaptation is restricted to the groups each
  strategy supports, and the custom-wirer compares the per-strategy best
  configurations end to end.

Unsatisfied *weight* layouts can still be fused by gathering the weights
once per mini-batch (weights are constant within a mini-batch); the
gather cost is what the measurement-driven comparison sees.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.memory import AllocationPlan, ContiguityGroup
from ..ir.graph import Graph
from .fusion import FusionAnalysis, Requirement


@dataclass(frozen=True)
class AllocationStrategy:
    """One memory-layout choice: the set of layout requirements it honors."""

    strategy_id: int
    label: str
    satisfied: frozenset[Requirement]

    def supports(self, requirement: Requirement | None) -> bool:
        return requirement is None or requirement in self.satisfied

    def context_key(self) -> tuple:
        return ("alloc", self.strategy_id)


def _requirement_weight(req: Requirement, flops: dict[Requirement, float]) -> float:
    return flops.get(req, 0.0)


def resolve_single_tensor_conflicts(
    requirements: list[Requirement],
) -> list[Requirement]:
    """Static resolution (section 4.5.2): when two requirements overlap in
    exactly one tensor, shrink both by dropping that tensor.  Members
    reduced below two tensors lose their requirement entirely."""
    current = list(dict.fromkeys(requirements))
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                a, b = current[i], current[j]
                overlap = a.all_tensors() & b.all_tensors()
                if len(overlap) != 1 or a == b:
                    continue
                tensor = next(iter(overlap))
                current[i] = _drop_tensor(a, tensor)
                current[j] = _drop_tensor(b, tensor)
                changed = True
        current = [r for r in dict.fromkeys(current) if len(r.all_tensors()) >= 2]
    return current


def _drop_tensor(req: Requirement, tensor: int) -> Requirement:
    members = tuple(
        tuple(t for t in member if t != tensor) for member in req.tensors
    )
    members = tuple(m for m in members if m)
    return Requirement(tensors=members, tag=req.tag, label=req.label)


def _greedy_independent_set(
    requirements: list[Requirement], order: list[Requirement]
) -> frozenset[Requirement]:
    chosen: list[Requirement] = []
    for req in order:
        if all(not req.conflicts_with(c) for c in chosen):
            chosen.append(req)
    return frozenset(chosen)


def enumerate_strategies(
    analysis: FusionAnalysis,
    group_flops: dict[str, float] | None = None,
    max_strategies: int = 3,
) -> list[AllocationStrategy]:
    """Build the allocation fork: a handful of maximal compatible
    requirement sets, ordered so strategy 0 is the forward-pass-friendly
    default (what Astra_F/FK/FKS run with; Astra_all explores them all)."""
    group_flops = group_flops or {}
    req_weight: dict[Requirement, float] = {}
    req_sources: list[tuple[Requirement, str, float]] = []
    for group in analysis.groups:
        if group.requirement is not None:
            weight = group_flops.get(group.group_id, float(group.size))
            req_sources.append((group.requirement, group.pass_tag, weight))
    for req in analysis.ladder_requirements:
        req_sources.append((req, "forward" if "backward" not in req.label else "backward", 1.0))

    merged: dict[Requirement, tuple[str, float]] = {}
    for req, tag, weight in req_sources:
        prev = merged.get(req)
        if prev is None:
            merged[req] = (tag, weight)
        else:
            merged[req] = (prev[0], prev[1] + weight)

    requirements = list(merged)
    for req, (_tag, weight) in merged.items():
        req_weight[req] = weight

    def order_by(key) -> list[Requirement]:
        return sorted(requirements, key=key)

    forward_first = order_by(
        lambda r: (0 if merged[r][0] == "forward" else 1, -req_weight[r])
    )
    backward_first = order_by(
        lambda r: (0 if merged[r][0] == "backward" else 1, -req_weight[r])
    )
    heaviest_first = order_by(lambda r: -req_weight[r])

    seen: list[frozenset[Requirement]] = []
    strategies: list[AllocationStrategy] = []
    for label, order in (
        ("forward-first", forward_first),
        ("backward-first", backward_first),
        ("heaviest-first", heaviest_first),
    ):
        satisfied = _greedy_independent_set(requirements, order)
        if satisfied in seen:
            continue
        seen.append(satisfied)
        strategies.append(
            AllocationStrategy(
                strategy_id=len(strategies), label=label, satisfied=satisfied
            )
        )
        if len(strategies) >= max_strategies:
            break
    if not strategies:
        strategies.append(
            AllocationStrategy(strategy_id=0, label="default", satisfied=frozenset())
        )
    return strategies


def build_arena_plan(graph: Graph, strategy: AllocationStrategy) -> AllocationPlan:
    """A concrete arena placement honoring the strategy's row-stacked
    requirements (packed 'cols'/'block' layouts are tracked abstractly
    through the satisfied set; arena offsets model the memory footprint)."""
    groups: list[ContiguityGroup] = []
    placed: set[int] = set()
    for req in sorted(strategy.satisfied, key=lambda r: r.label):
        # a tensor may appear in several members of one requirement (the
        # same weight feeding two fused GEMMs); it needs one placement
        flat = tuple(dict.fromkeys(t for member in req.tensors for t in member))
        if len(flat) < 2 or placed & set(flat):
            continue
        groups.append(ContiguityGroup(node_ids=flat, label=req.label))
        placed.update(flat)
    return AllocationPlan(graph, groups=groups, label=strategy.label)
