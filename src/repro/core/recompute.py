"""Recomputation: trading compute for memory (section 3.4).

The paper lists whole-graph optimizations beyond the prototype's three
dimensions; the example given is "dynamically trading off computation for
memory: saving part of the memory used for forward-pass activations by
redoing the computation ... if the cost of recomputation of some layers
of the forward pass is lower than the parallelism benefit from supporting
say a 2x larger mini-batch size, again a complex dynamic that needs
measurement."

This module implements that dimension in the Astra style: no cost model,
only *measurements* on the simulated device.

* a **segment** is one forward step scope (``layerL/stepT``); recomputing
  it frees its forward activations between the passes (they are rebuilt
  on demand during backward) at the cost of re-running its forward
  kernels once;
* :class:`RecomputePlanner` measures, per provenance class, the
  recomputation cost (extra kernel + launch time) and the memory saved,
  then greedily selects segments cheapest-per-byte until the job fits a
  memory budget;
* :func:`best_batch_under_budget` runs the paper's actual decision: given
  a memory budget, is plain batch B better than recomputation-enabled
  batch 2B?  Decided by measured per-sample time, never by a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines.native import native_plan
from ..gpu.device import GPUSpec, P100
from ..ir.graph import Graph
from ..models.cells import ModelConfig, TracedModel
from ..runtime.executor import Executor


@dataclass(frozen=True)
class Segment:
    """One recomputable forward step scope."""

    scope: str
    #: forward activation bytes freed if this segment is recomputed
    activation_bytes: int
    #: measured time to re-run the segment's forward kernels (us)
    recompute_us: float
    #: node ids of the segment's forward compute
    node_ids: tuple[int, ...]


@dataclass
class MemoryEstimate:
    """Peak-memory breakdown of one training mini-batch."""

    param_bytes: int
    activation_bytes: int
    workspace_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.param_bytes + self.activation_bytes + self.workspace_bytes


@dataclass
class RecomputePlan:
    """Outcome of planning under a budget."""

    segments: list[Segment]
    freed_bytes: int
    extra_time_us: float
    fits: bool
    memory: MemoryEstimate


def estimate_memory(graph: Graph) -> MemoryEstimate:
    """Peak training memory: parameters (+gradients), forward activations
    kept for the backward pass, and a small workspace."""
    params = sum(n.spec.size_bytes for n in graph.params()) * 2  # + grads
    activations = sum(
        n.spec.size_bytes
        for n in graph.compute_nodes()
        if n.pass_tag == "forward"
    )
    workspace = max(
        (n.spec.size_bytes for n in graph.nodes), default=0
    ) * 4
    return MemoryEstimate(params, activations, workspace)


class RecomputePlanner:
    """Measurement-driven segment selection for one traced model."""

    def __init__(self, model: TracedModel, device: GPUSpec = P100):
        self.model = model
        self.graph = model.graph
        self.device = device
        self._segments: list[Segment] | None = None

    def segments(self) -> list[Segment]:
        """Enumerate recomputable segments with *measured* recompute cost.

        The measurement executes the segment's forward kernels alone on
        the device (one extra profiling mini-batch in a real deployment;
        here the executor gives the same number directly).
        """
        if self._segments is not None:
            return self._segments
        by_scope: dict[str, list[int]] = {}
        for node in self.graph.compute_nodes():
            if node.pass_tag != "forward" or "/step" not in node.scope:
                continue
            by_scope.setdefault(node.scope, []).append(node.node_id)

        executor = Executor(self.graph, self.device)
        base = native_plan(self.graph, fuse_elementwise=True)
        result = executor.run(base)
        node_unit: dict[int, int] = {}
        for unit in base.units:
            for nid in unit.node_ids:
                node_unit[nid] = unit.unit_id

        segments = []
        for scope, node_ids in sorted(by_scope.items()):
            unit_ids = {node_unit[nid] for nid in node_ids if nid in node_unit}
            recompute_us = sum(
                result.unit_times.get(uid, 0.0) for uid in unit_ids
            ) + len(unit_ids) * self.device.launch_overhead_us
            activation = sum(
                self.graph.node(nid).spec.size_bytes for nid in node_ids
            )
            segments.append(
                Segment(
                    scope=scope,
                    activation_bytes=activation,
                    recompute_us=recompute_us,
                    node_ids=tuple(sorted(node_ids)),
                )
            )
        self._segments = segments
        return segments

    def peak_with(self, segments: list[Segment]) -> int:
        """Liveness-accurate peak memory with these segments recomputed.

        Uses the arena-reuse planner of :mod:`repro.gpu.liveness`: a
        recomputed segment's forward activations die at their last
        forward consumer instead of surviving into the backward pass.
        """
        from ..gpu.liveness import activation_peak_bytes

        recomputed = {nid for segment in segments for nid in segment.node_ids}
        params = sum(n.spec.size_bytes for n in self.graph.params()) * 2
        return params + activation_peak_bytes(self.graph, recomputed=recomputed)

    def plan_under_budget(self, budget_bytes: int) -> RecomputePlan:
        """Greedily recompute the cheapest-per-byte segments until the job
        fits ``budget_bytes`` (or everything recomputable is selected)."""
        memory = estimate_memory(self.graph)
        need = memory.total_bytes - budget_bytes
        chosen: list[Segment] = []
        freed = 0
        extra = 0.0
        if need > 0:
            ranked = sorted(
                self.segments(),
                key=lambda s: s.recompute_us / max(1, s.activation_bytes),
            )
            for segment in ranked:
                if freed >= need:
                    break
                chosen.append(segment)
                freed += segment.activation_bytes
                extra += segment.recompute_us
        return RecomputePlan(
            segments=chosen,
            freed_bytes=freed,
            extra_time_us=extra,
            fits=memory.total_bytes - freed <= budget_bytes,
            memory=memory,
        )


@dataclass
class BatchDecision:
    """The measured answer to "bigger batch + recomputation, or not?"."""

    batch_size: int
    per_sample_us: float
    recompute: RecomputePlan
    minibatch_us: float


def best_batch_under_budget(
    builder: Callable[[ModelConfig], TracedModel],
    config: ModelConfig,
    budget_bytes: int,
    device: GPUSpec = P100,
    batch_factors: tuple[int, ...] = (1, 2, 4),
) -> list[BatchDecision]:
    """Measure per-sample training time for batch B, 2B, 4B ... where each
    larger batch may need recomputation to fit the memory budget.
    Returns every *feasible* decision, best (lowest per-sample time) first.
    """
    decisions = []
    for factor in batch_factors:
        batch = config.batch_size * factor
        model = builder(config.scaled(batch_size=batch))
        planner = RecomputePlanner(model, device)
        plan = planner.plan_under_budget(budget_bytes)
        if not plan.fits:
            continue
        executor = Executor(model.graph, device)
        base_time = executor.run(native_plan(model.graph, fuse_elementwise=True)).total_time_us
        minibatch = base_time + plan.extra_time_us
        decisions.append(
            BatchDecision(
                batch_size=batch,
                per_sample_us=minibatch / batch,
                recompute=plan,
                minibatch_us=minibatch,
            )
        )
    decisions.sort(key=lambda d: d.per_sample_us)
    return decisions
