"""The enumerator: static analysis -> update tree + templated schedules.

Section 4.4: the compiler half of Astra.  It enumerates the optimization
state space -- fusion groups with their chunkings, kernel-library choices,
stream assignments per epoch, allocation strategies -- as an update tree
of adaptive variables, and provides the *plan builder* that instantiates
any assignment of those variables as an executable
:class:`~repro.runtime.plan.ExecutionPlan` ("templated schedules").

It uses only coarse static knowledge (section 4.8): pattern matching for
candidates, flop counts for super-epoch calibration and stream balance,
size caps for fusion groups.  It never predicts performance -- ranking is
the custom-wirer's job, by measurement.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, replace

from ..gpu.device import GPUSpec
from ..gpu.kernels import CopyLaunch, GemmLaunch
from ..gpu.libraries import DEFAULT_LIBRARY, GEMM_LIBRARIES
from ..ir.graph import Graph
from ..obs.metrics import NULL_REGISTRY
from ..runtime.dispatcher import Dispatcher
from ..runtime.lowering import (
    cached_elementwise_chains,
    fused_elementwise_kernel,
    kernel_for_node,
)
from ..runtime.plan import ExecutionPlan, Unit
from .adaptive import (
    AdaptiveVariable,
    MODE_PARALLEL,
    MODE_PREFIX,
    UpdateNode,
)
from ..gpu.memory import AllocationPlan
from .allocation import AllocationStrategy, build_arena_plan, enumerate_strategies
from .epochs import EpochPartition, partition_epochs
from .fusion import (
    FusionAnalysis,
    FusionMember,
    analyse_fusion,
    provenance,
    resolve_static_conflicts,
)


@dataclass(frozen=True)
class AstraFeatures:
    """Which adaptation dimensions are active (the Astra_F / _FK / _FKS /
    _all breakdown of section 6.1)."""

    fusion: bool = True
    kernel: bool = True
    streams: bool = False
    allocation: bool = False
    elementwise_fusion: bool = True
    num_streams: int = 2
    #: section 5.4: the TensorFlow prototype's low-level runtime expects
    #: contiguous tensors, so every fused GEMM pays gather copies and
    #: stream adaptation is unavailable
    tf_mode: bool = False

    @classmethod
    def preset(cls, name: str) -> "AstraFeatures":
        presets = {
            "F": cls(kernel=False),
            "FK": cls(),
            "FKS": cls(streams=True),
            "all": cls(streams=True, allocation=True),
            "FK-tf": cls(tf_mode=True),
        }
        if name not in presets:
            raise ValueError(f"unknown preset {name!r}; choose from {sorted(presets)}")
        return presets[name]


@dataclass
class BuiltPlan:
    """A plan plus the variable -> unit bookkeeping the wirer profiles."""

    plan: ExecutionPlan
    var_units: dict[str, list[int]]


class _UnitBuilder:
    """Shared unit-emission engine.

    :meth:`Enumerator.build_plan` drives it over the whole graph;
    :meth:`Enumerator.units_for_choice` drives it over a single adaptive
    variable's emission so the fast-path pre-ranker can score a choice in
    isolation.  One code path means the scored units are the measured
    units by construction.
    """

    def __init__(self, enum: "Enumerator", strategy: AllocationStrategy, library_for):
        self.enum = enum
        self.strategy = strategy
        #: profile-key -> GEMM library (the ``kernel:*`` assignment view)
        self.library_for = library_for
        self.units: list[Unit] = []
        self.var_units: dict[str, list[int]] = {}
        self.covered: set[int] = set()
        self.counter = itertools.count()

    def add_unit(self, unit: Unit, var_name: str | None) -> None:
        self.units.append(unit)
        self.covered.update(unit.node_ids)
        if var_name is not None:
            self.var_units.setdefault(var_name, []).append(unit.unit_id)

    def kernel_var_name(self, key: tuple) -> str | None:
        name = f"kernel:{key}"
        return name if len(self.enum._libraries) > 1 else None

    def weight_pack_prologue(self, var_name: str | None, tensors: tuple[int, ...], tag: str) -> None:
        """Weights are constant within a mini-batch, so an unsatisfied
        weight layout is gathered once up front (section 4.5.2's
        alternative to restriction, priced by measurement).  The pack is
        charged 2x traffic each way: the optimizer updates the canonical
        layout every mini-batch, so the pack is gathered and the
        gradient contribution scattered back."""
        graph = self.enum.graph
        total = 4 * sum(graph.node(t).spec.size_bytes for t in set(tensors))
        kernel = CopyLaunch(total, label=f"pack_{tag}")
        self.add_unit(
            Unit(next(self.counter), kernel, tuple(dict.fromkeys(tensors)),
                 label=f"pack_{tag}"),
            var_name,
        )

    def emit_member(
        self,
        member: FusionMember,
        force_fuse: bool | None = None,
        var_override: str | None = None,
        lib_override: str | None = None,
    ) -> None:
        """Emit one member outside group fusion.

        ``var_override`` attributes every emitted unit (including
        gathers) to a specific adaptive variable so its measurement
        covers exactly what its choice caused.
        """
        graph = self.enum.graph
        supported = (
            self.strategy.supports(member.ladder_requirement())
            and not self.enum.features.tf_mode
        )
        fuse = member.is_ladder and (supported if force_fuse is None else force_fuse)
        if fuse:
            key = (provenance(member.scope), member.pass_tag,
                   member.m, member.k_total, member.n)
            lib = lib_override or self.library_for(key)
            kernel = GemmLaunch(member.m, member.k_total, member.n, lib,
                                node_ids=member.node_ids)
            pre = []
            if member.a_gather_bytes:
                pre.append(CopyLaunch(member.a_gather_bytes, label="gather_a"))
            var_name = var_override or (self.kernel_var_name(key) if supported else None)
            if not supported:
                if self.enum._tensors_are_params(member.b_nodes):
                    self.weight_pack_prologue(var_name, member.b_nodes, "ladder")
                else:
                    pre.append(CopyLaunch(
                        2 * sum(graph.node(b).spec.size_bytes for b in member.b_nodes),
                        label="gather_b",
                    ))
            self.add_unit(
                Unit(next(self.counter), kernel, member.node_ids,
                     label=f"ladder@{member.scope}", pre_copies=tuple(pre)),
                var_name,
            )
        else:
            for mm_id in member.mm_ids:
                node = graph.node(mm_id)
                m, k, n = _node_dims(graph, mm_id)
                key = (provenance(node.scope), node.pass_tag, m, k, n)
                kernel = GemmLaunch(m, k, n, lib_override or self.library_for(key),
                                    node_ids=(mm_id,))
                self.add_unit(
                    Unit(next(self.counter), kernel, (mm_id,), label=kernel.name),
                    var_override or self.kernel_var_name(key),
                )
            # absorbed adds of an unfused ladder run as elementwise ops;
            # leave them uncovered so the elementwise sweep picks them up

    def emit_group(self, group, chunk: int, lib: str, var_name: str) -> None:
        """Emit one fusion group at a chunk granularity > 1."""
        graph = self.enum.graph
        members = group.members
        supported = self.strategy.supports(group.requirement)
        if self.enum.features.tf_mode:
            supported = False  # contiguity never free in the TF runtime
        gather_tensors: list[int] = []
        if not supported and group.axis == "n":
            flat = [b for mb in members for b in mb.b_nodes]
            if self.enum._tensors_are_params(flat):
                self.weight_pack_prologue(var_name, tuple(flat), "group")
                gather_tensors = []  # packed once, launches copy-free
            else:
                gather_tensors = flat  # gathered per launch below
        for start in range(0, len(members), chunk):
            chunk_members = members[start: start + chunk]
            if len(chunk_members) == 1:
                self.emit_member(chunk_members[0], var_override=var_name,
                                 lib_override=lib)
                continue
            m, k, n = group.launch_dims(chunk_members)
            node_ids = tuple(nid for mb in chunk_members for nid in mb.node_ids)
            lead = chunk_members[0]
            pre = []
            if group.axis == "n" and lead.a_gather_bytes:
                pre.append(CopyLaunch(lead.a_gather_bytes, label="gather_a"))
            if not supported:
                if group.axis == "m":
                    a_bytes = 2 * sum(
                        graph.node(mb.a_signature[0][0]).spec.size_bytes
                        for mb in chunk_members
                    )
                    pre.append(CopyLaunch(a_bytes, label="gather_a"))
                elif gather_tensors:
                    b_bytes = 2 * sum(
                        graph.node(b).spec.size_bytes
                        for mb in chunk_members
                        for b in mb.b_nodes
                    )
                    pre.append(CopyLaunch(b_bytes, label="gather_b"))
            kernel = GemmLaunch(m, k, n, lib, node_ids=node_ids)
            self.add_unit(
                Unit(next(self.counter), kernel, node_ids,
                     label=f"fused@{group.group_id}", pre_copies=tuple(pre)),
                var_name,
            )


class Enumerator:
    """Static-analysis half of Astra for one traced graph.

    With ``cache_units`` (the default) the assignment-determined unit
    list of every ``(strategy, fk assignment)`` is memoized: stream-phase
    rounds, compare-phase rebuilds and resumed runs reuse the template
    instead of re-walking the graph.  Cached templates are copied on
    every return (plan building mutates epoch coordinates in place), so
    built plans stay bit-identical to uncached builds.
    """

    def __init__(
        self,
        graph: Graph,
        device: GPUSpec,
        features: AstraFeatures,
        metrics=None,
        cache_units: bool = True,
    ):
        self.graph = graph
        self.device = device
        self.features = features
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.cache_units = cache_units
        self._template_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._template_capacity = 64
        self._chain_cache: dict[frozenset, list[tuple[int, ...]]] = {}
        if features.fusion:
            self.analysis = resolve_static_conflicts(analyse_fusion(graph))
        else:
            self.analysis = FusionAnalysis(groups=[], singletons=[], ladder_requirements=[])
        group_flops = {
            g.group_id: float(
                sum(2 * mb.m * mb.k_total * mb.n for mb in g.members)
            )
            for g in self.analysis.groups
        }
        strategies = enumerate_strategies(self.analysis, group_flops)
        self.strategies = strategies if features.allocation else strategies[:1]
        self._libraries = (
            list(GEMM_LIBRARIES) if features.kernel else [DEFAULT_LIBRARY]
        )
        # concrete arena placement per strategy, built lazily and shared by
        # every plan of that strategy so the schedule validator can check
        # contiguity-group layout during exploration
        self._arena_plans: dict[int, "AllocationPlan"] = {}

    def arena_plan(self, strategy: AllocationStrategy) -> "AllocationPlan":
        plan = self._arena_plans.get(strategy.strategy_id)
        if plan is None:
            plan = build_arena_plan(self.graph, strategy)
            self._arena_plans[strategy.strategy_id] = plan
        return plan

    # ------------------------------------------------------------------
    # Phase 1 tree: fusion chunking x kernel selection
    # ------------------------------------------------------------------

    def build_fk_tree(self, strategy: AllocationStrategy) -> UpdateNode:
        """Parallel root over per-group (chunk, library) variables,
        per-ladder fuse-or-not variables, and per-shape kernel variables
        (section 4.5.1's additive state space).

        Groups whose layout requirement the strategy does not satisfy can
        still fuse by *gathering* their operands (weights once per
        mini-batch, activations per launch); chunk=1 is the restricted
        fallback, and the measurement decides whether the gather pays.
        """
        root = UpdateNode(name="fk", mode=MODE_PARALLEL)
        kernel_shapes: set[tuple] = set()

        if self.features.fusion:
            for group in self.analysis.groups:
                choices = [
                    (chunk, lib)
                    for chunk in group.chunk_choices()
                    for lib in self._libraries
                ]
                root.children.append(
                    AdaptiveVariable(
                        name=f"fusion:{group.group_id}",
                        choices=choices,
                        metric_kind="units",
                        payload=group,
                    )
                )

        for member in self.analysis.singletons:
            if member.is_ladder and not strategy.supports(member.ladder_requirement()):
                # the ladder variable owns this member entirely: fused with
                # an operand gather, or unfused -- measurement decides
                choices = [(False, DEFAULT_LIBRARY)] + [
                    (True, lib) for lib in self._libraries
                ]
                root.children.append(
                    AdaptiveVariable(
                        name=f"ladder:{member.mm_ids[0]}",
                        choices=choices,
                        metric_kind="units",
                        payload=member,
                    )
                )
            else:
                kernel_shapes.update(self._member_shape_keys(member, strategy))

        if len(self._libraries) > 1:
            for key in sorted(kernel_shapes):
                root.children.append(
                    AdaptiveVariable(
                        name=f"kernel:{key}",
                        choices=list(self._libraries),
                        metric_kind="units",
                    )
                )
        root.initialize()
        return root

    def _member_shape_keys(
        self, member: FusionMember, strategy: AllocationStrategy
    ) -> list[tuple]:
        """Profile-key identities of the GEMM launches a member lowers to
        when executed outside any group (fused ladder, or raw GEMMs)."""
        if member.is_ladder and strategy.supports(member.ladder_requirement()):
            return [(provenance(member.scope), member.pass_tag, member.m, member.k_total, member.n)]
        keys = []
        for mm_id in member.mm_ids:
            node = self.graph.node(mm_id)
            m, k, n = _node_dims(self.graph, mm_id)
            keys.append((provenance(node.scope), node.pass_tag, m, k, n))
        return keys

    def _tensors_are_params(self, tensors) -> bool:
        return all(self.graph.node(t).role == "param" for t in tensors)

    # ------------------------------------------------------------------
    # Plan building
    # ------------------------------------------------------------------

    def _build_units(
        self, strategy: AllocationStrategy, assignment: dict[str, object]
    ) -> _UnitBuilder:
        """Emit the assignment-determined unit list (no streams/profile)."""

        def library_for(key: tuple) -> str:
            value = assignment.get(f"kernel:{key}", DEFAULT_LIBRARY)
            return value  # type: ignore[return-value]

        builder = _UnitBuilder(self, strategy, library_for)

        # 1. fusion groups
        if self.features.fusion:
            for group in self.analysis.groups:
                var_name = f"fusion:{group.group_id}"
                chunk, lib = assignment.get(var_name, (1, DEFAULT_LIBRARY))
                if chunk == 1:
                    # members execute individually (for unsupported groups
                    # this is the paper's "restrict the adaptation"
                    # fallback); the group variable owns the member units so
                    # the measurement can compare chunk=1 against real fusion
                    for member in group.members:
                        builder.emit_member(member, var_override=var_name,
                                            lib_override=lib)
                else:
                    builder.emit_group(group, chunk, lib, var_name)

        # 2. singleton members (plain GEMMs and lone ladders)
        for member in self.analysis.singletons:
            if member.is_ladder and not strategy.supports(member.ladder_requirement()):
                lvar = f"ladder:{member.mm_ids[0]}"
                choice = assignment.get(lvar, (False, DEFAULT_LIBRARY))
                fuse, lib = bool(choice[0]), choice[1]
                builder.emit_member(member, force_fuse=fuse, var_override=lvar,
                                    lib_override=lib if fuse else None)
            else:
                builder.emit_member(member)

        # 2b. with fusion analysis disabled, GEMMs were never members
        if not self.features.fusion:
            for node in self.graph.gemm_nodes():
                if node.node_id in builder.covered:
                    continue
                m, k, n = _node_dims(self.graph, node.node_id)
                key = (provenance(node.scope), node.pass_tag, m, k, n)
                kernel = GemmLaunch(m, k, n, library_for(key), node_ids=(node.node_id,))
                builder.add_unit(
                    Unit(next(builder.counter), kernel, (node.node_id,),
                         label=kernel.name),
                    builder.kernel_var_name(key),
                )

        # 3. elementwise / reduction chains over everything not yet covered
        remaining = {
            n.node_id for n in self.graph.nodes
            if not n.is_leaf and n.node_id not in builder.covered
        }
        if self.features.elementwise_fusion:
            for chain in cached_elementwise_chains(self.graph, remaining,
                                                   self._chain_cache):
                if len(chain) < 2:
                    continue
                kernel = fused_elementwise_kernel(self.graph, chain)
                builder.add_unit(
                    Unit(next(builder.counter), kernel, chain, label=kernel.label),
                    None,
                )
                remaining -= set(chain)

        for node in self.graph.nodes:
            if node.node_id not in remaining:
                continue
            kernel = kernel_for_node(self.graph, node)
            if kernel is None:
                continue
            builder.add_unit(
                Unit(next(builder.counter), kernel, (node.node_id,),
                     label=kernel.name),
                None,
            )
        return builder

    def _built_units(
        self, strategy: AllocationStrategy, assignment: dict[str, object]
    ) -> tuple[list[Unit], dict[str, list[int]]]:
        """Unit template for an assignment, through the template cache.

        Cached units are *copied* on every return: plan building mutates
        epoch coordinates in place and the serializer writes them, so a
        shared template would leak one build's coordinates into the next.
        """
        if not self.cache_units:
            builder = self._build_units(strategy, assignment)
            return builder.units, builder.var_units
        # only fusion/ladder/kernel keys shape the units; stream or
        # allocation keys in the assignment must not fragment the cache
        key = (
            strategy.strategy_id,
            tuple(sorted(
                (name, value) for name, value in assignment.items()
                if name.partition(":")[0] in ("fusion", "ladder", "kernel")
            )),
        )
        cached = self._template_cache.get(key)
        if cached is None:
            self.metrics.counter("perf.cache.units_misses").inc()
            builder = self._build_units(strategy, assignment)
            cached = (builder.units, builder.var_units)
            self._template_cache[key] = cached
            if len(self._template_cache) > self._template_capacity:
                self._template_cache.popitem(last=False)
                self.metrics.counter("perf.cache.units_evictions").inc()
        else:
            self._template_cache.move_to_end(key)
            self.metrics.counter("perf.cache.units_hits").inc()
        units, var_units = cached
        return [replace(u) for u in units], {k: list(v) for k, v in var_units.items()}

    def units_for_choice(
        self, strategy: AllocationStrategy, var: AdaptiveVariable, choice
    ) -> list[Unit]:
        """The units one variable's choice emits, in isolation.

        Drives the same emission engine as :meth:`build_plan` over a
        single variable, so the returned units are exactly the units the
        variable's ``"units"`` measurement would cover in a full plan --
        the property the fast-path pre-ranker's exactness rests on.
        """
        builder = _UnitBuilder(self, strategy, lambda key: DEFAULT_LIBRARY)
        name = var.name
        if name.startswith("fusion:"):
            group = var.payload
            chunk, lib = choice
            if chunk == 1:
                for member in group.members:
                    builder.emit_member(member, var_override=name, lib_override=lib)
            else:
                builder.emit_group(group, chunk, lib, name)
        elif name.startswith("ladder:"):
            member = var.payload
            fuse, lib = bool(choice[0]), choice[1]
            builder.emit_member(member, force_fuse=fuse, var_override=name,
                                lib_override=lib if fuse else None)
        elif name.startswith("kernel:"):
            # a kernel variable owns every singleton-emitted launch of its
            # shape key; replay the singleton sweep with the candidate
            # library bound to this key only
            builder = _UnitBuilder(
                self, strategy,
                lambda key: choice if f"kernel:{key}" == name else DEFAULT_LIBRARY,
            )
            for member in self.analysis.singletons:
                if member.is_ladder and not strategy.supports(member.ladder_requirement()):
                    continue  # owned by a ladder variable, not this one
                if all(
                    f"kernel:{key}" != name
                    for key in self._member_shape_keys(member, strategy)
                ):
                    continue  # emits nothing owned by this variable
                builder.emit_member(member)
            if not self.features.fusion:
                for node in self.graph.gemm_nodes():
                    if node.node_id in builder.covered:
                        continue
                    m, k, n = _node_dims(self.graph, node.node_id)
                    key = (provenance(node.scope), node.pass_tag, m, k, n)
                    lib = choice if f"kernel:{key}" == name else DEFAULT_LIBRARY
                    kernel = GemmLaunch(m, k, n, lib, node_ids=(node.node_id,))
                    builder.add_unit(
                        Unit(next(builder.counter), kernel, (node.node_id,),
                             label=kernel.name),
                        builder.kernel_var_name(key),
                    )
        else:
            raise ValueError(f"no unit emission for variable {name!r}")
        owned = set(builder.var_units.get(name, ()))
        return [u for u in builder.units if u.unit_id in owned]

    def member_unfused_kernel_vars(self, member: FusionMember) -> set[str]:
        """``kernel:*`` variable names that would set the libraries of this
        member's *unfused* GEMM launches.  A ladder variable whose unfused
        choice shares a shape key with a live kernel variable measures
        under that variable's concurrent choice -- the pre-ranker must not
        prune it, because its analytic estimate assumes the default
        library."""
        names = set()
        for mm_id in member.mm_ids:
            node = self.graph.node(mm_id)
            m, k, n = _node_dims(self.graph, mm_id)
            names.add(f"kernel:{(provenance(node.scope), node.pass_tag, m, k, n)}")
        return names

    def build_plan(
        self,
        strategy: AllocationStrategy,
        assignment: dict[str, object],
        stream_options: dict[int, dict[int, int]] | None = None,
        partition: EpochPartition | None = None,
        profile: bool = True,
        profile_vars: set[str] | None = None,
        label: str = "astra",
    ) -> BuiltPlan:
        """Instantiate an assignment of the adaptive variables as a plan.

        ``stream_options`` maps epoch ordinal -> (unit id -> stream); when
        given, ``partition`` supplies barriers and epoch coordinates.
        Stream assignment keys units by *position* (units are rebuilt each
        call but deterministically, so positions are stable for a fixed
        FK assignment).
        """
        units, var_units = self._built_units(strategy, assignment)

        # 4. streams
        stream_of: dict[int, int] = {}
        barriers: frozenset[int] = frozenset()
        if stream_options is not None and partition is not None:
            for epoch_ordinal, option in stream_options.items():
                stream_of.update(option)
            barriers = frozenset(partition.barrier_units())
            for unit in units:
                coord = partition.coordinates.get(unit.unit_id)
                if coord is not None:
                    unit.super_epoch, unit.epoch = coord

        # profile only the regions of interest (section 5.2): units owned
        # by *live* adaptive variables (all variables when unrestricted),
        # plus one event per epoch for the stream-completion metric
        profile_ids: set[int] = set()
        for var_name, unit_ids in var_units.items():
            if profile_vars is None or var_name in profile_vars:
                profile_ids.update(unit_ids)
        if partition is not None and profile_vars is None:
            last_in_epoch: dict[tuple[int, int], int] = {}
            for unit in units:
                coord = partition.coordinates.get(unit.unit_id)
                if coord is not None:
                    last_in_epoch[coord] = max(last_in_epoch.get(coord, -1), unit.unit_id)
            profile_ids.update(last_in_epoch.values())

        plan = ExecutionPlan(
            units=units,
            allocation=self.arena_plan(strategy),
            stream_of=stream_of,
            barriers_after=barriers,
            profile=profile,
            profile_unit_ids=frozenset(profile_ids) if profile else frozenset(),
            label=label,
        )
        return BuiltPlan(plan=plan, var_units=var_units)

    # ------------------------------------------------------------------
    # Phase 2 tree: stream assignment per epoch
    # ------------------------------------------------------------------

    def prepare_stream_phase(
        self, strategy: AllocationStrategy, fk_assignment: dict[str, object]
    ) -> tuple[EpochPartition, UpdateNode]:
        """Partition the (frozen-FK) unit list into epochs/super-epochs and
        build the stream update tree: parallel across super-epochs (barrier
        exploration), prefix across epochs within one (history-aware)."""
        built = self.build_plan(strategy, fk_assignment, profile=True)
        dispatcher = Dispatcher(self.graph)
        deps = dispatcher.unit_dependencies(built.plan)
        partition = partition_epochs(
            built.plan.units, deps, self.device, num_streams=self.features.num_streams
        )

        super_nodes: dict[int, UpdateNode] = {}
        for ordinal, epoch in enumerate(partition.epochs):
            if len(epoch.options) <= 1:
                continue
            var = AdaptiveVariable(
                name=f"stream:se{epoch.super_epoch}/e{epoch.index}",
                choices=list(range(len(epoch.options))),
                metric_kind="epoch",
                payload=(ordinal, epoch),
            )
            node = super_nodes.setdefault(
                epoch.super_epoch,
                UpdateNode(name=f"se{epoch.super_epoch}", mode=MODE_PREFIX),
            )
            node.children.append(var)

        root = UpdateNode(
            name="streams",
            mode=MODE_PARALLEL,
            children=[super_nodes[k] for k in sorted(super_nodes)],
        )
        root.initialize()
        return partition, root


def _node_dims(graph: Graph, node_id: int) -> tuple[int, int, int]:
    node = graph.node(node_id)
    op = node.op
    return op.gemm_dims([graph.node(i).spec for i in node.input_ids])  # type: ignore[union-attr]
