"""Numpy reference interpreter for traced graphs.

The GPU simulator never executes values -- costs depend only on shapes
(the predictability property of section 4.1).  This interpreter exists to
*validate* the substrate: graph construction, shape inference, and the
correctness of the generated backward pass (checked against finite
differences in the test suite).  It also demonstrates that every Astra
optimization studied here is value-preserving (section 6.7): optimized
schedules reorder/fuse kernels but never change the computed function.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph, Node
from .tensor import TensorSpec

_NP_DTYPES = {
    "fp16": np.float16,
    "fp32": np.float32,
    "fp64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
}


def random_value(spec: TensorSpec, rng: np.random.Generator, int_high: int = 8) -> np.ndarray:
    """A random array conforming to ``spec`` (small ints for index dtypes)."""
    if spec.dtype in ("int32", "int64"):
        return rng.integers(0, int_high, size=spec.shape).astype(_NP_DTYPES[spec.dtype])
    return rng.standard_normal(spec.shape).astype(_NP_DTYPES[spec.dtype])


class Interpreter:
    """Evaluates a graph given bindings for its input/param leaves."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def run(self, bindings: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Evaluate every node; returns the full node-id -> value map.

        ``bindings`` maps leaf node ids to numpy arrays.  Shapes and dtypes
        are checked against the specs recorded in the graph.
        """
        values: dict[int, np.ndarray] = {}
        for node in self.graph.nodes:
            if node.is_leaf:
                if node.node_id not in bindings:
                    raise KeyError(f"missing binding for leaf {node}")
                value = np.asarray(bindings[node.node_id])
                self._check(node, value)
                values[node.node_id] = value
            else:
                args = [values[i] for i in node.input_ids]
                result = node.op.evaluate(*args)  # type: ignore[union-attr]
                values[node.node_id] = np.asarray(result)
                self._check(node, values[node.node_id])
        return values

    def run_outputs(self, bindings: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        values = self.run(bindings)
        return {nid: values[nid] for nid in self.graph.outputs}

    def _check(self, node: Node, value: np.ndarray) -> None:
        if tuple(value.shape) != node.spec.shape:
            raise ValueError(
                f"node %{node.node_id} produced shape {value.shape}, spec says {node.spec.shape}"
            )


def random_bindings(graph: Graph, seed: int = 0, int_high: int = 8) -> dict[int, np.ndarray]:
    """Random leaf bindings for a graph (ints bounded by ``int_high``)."""
    rng = np.random.default_rng(seed)
    return {
        node.node_id: random_value(node.spec, rng, int_high=int_high)
        for node in graph.nodes
        if node.is_leaf
    }
