"""Graph-level cleanup passes: dead-code elimination and CSE.

Real frameworks run these before dispatch (section 5.1's "graph
building"); traced graphs accumulate dead branches (e.g. gradients the
optimizer never reads) and duplicate subexpressions (e.g. re-traced
constants).  Both passes are value-preserving by construction and emit a
*new* graph plus an old-id -> new-id mapping, since graphs are
append-only.

Astra benefits indirectly: fewer nodes means fewer kernels to schedule
and a smaller exploration surface, and CSE canonicalization makes
common-argument fusion groups easier to detect.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph, Node


@dataclass
class RewriteResult:
    """A rewritten graph plus the node-id mapping old -> new."""

    graph: Graph
    node_map: dict[int, int]

    def mapped(self, node_id: int) -> int:
        return self.node_map[node_id]


def _copy_node(dst: Graph, node: Node, node_map: dict[int, int]) -> int:
    if node.is_leaf:
        new = dst.add_input(node.spec, label=node.label, role=node.role)
    else:
        new = dst.add_op(
            node.op,
            [dst.node(node_map[i]) for i in node.input_ids],
            scope=node.scope,
            pass_tag=node.pass_tag,
            label=node.label,
        )
    node_map[node.node_id] = new.node_id
    return new.node_id


def eliminate_dead_code(graph: Graph, keep_params: bool = True) -> RewriteResult:
    """Drop compute nodes that no graph output (transitively) consumes.

    Leaves are kept when ``keep_params`` (parameters exist independently
    of this trace); unused plain inputs are dropped.
    """
    live: set[int] = set()
    stack = list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).input_ids)

    result = Graph(graph.name + "/dce")
    node_map: dict[int, int] = {}
    for node in graph.nodes:
        keep = node.node_id in live
        if node.is_leaf and keep_params and node.role == "param":
            keep = True
        if keep:
            _copy_node(result, node, node_map)
    for out in graph.outputs:
        result.mark_output(result.node(node_map[out]))
    return RewriteResult(graph=result, node_map=node_map)


def common_subexpression_elimination(graph: Graph) -> RewriteResult:
    """Merge structurally identical compute nodes.

    Two nodes are identical when they apply the same op (same
    ``signature()``) to the same (already canonicalized) inputs.  The
    first occurrence survives; later duplicates map to it.  Sound because
    the IR is pure: ops have no side effects and costs depend only on
    shapes.
    """
    result = Graph(graph.name + "/cse")
    node_map: dict[int, int] = {}
    seen: dict[tuple, int] = {}
    for node in graph.nodes:
        if node.is_leaf:
            _copy_node(result, node, node_map)
            continue
        key = (node.op.signature(), tuple(node_map[i] for i in node.input_ids))
        if key in seen:
            node_map[node.node_id] = seen[key]
            continue
        new_id = _copy_node(result, node, node_map)
        seen[key] = new_id
    for out in graph.outputs:
        mapped = node_map[out]
        if mapped not in result.outputs:
            result.mark_output(result.node(mapped))
    return RewriteResult(graph=result, node_map=node_map)


def simplify(graph: Graph) -> RewriteResult:
    """DCE then CSE; the composition real frameworks run before dispatch."""
    dce = eliminate_dead_code(graph)
    cse = common_subexpression_elimination(dce.graph)
    combined = {
        old: cse.node_map[mid]
        for old, mid in dce.node_map.items()
        if mid in cse.node_map
    }
    return RewriteResult(graph=cse.graph, node_map=combined)
