"""Tensor specifications for the data-flow graph IR.

The IR is shape-typed but value-free: every edge in the graph carries a
:class:`TensorSpec` describing shape and dtype.  This mirrors the property
Astra exploits -- the *cost* of a deep-learning operator depends only on the
shapes of its operands, never on their values (paper section 4.1), so the
whole optimization problem can be posed over specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: bytes per element for the dtypes the simulator understands
DTYPE_SIZES = {
    "fp16": 2,
    "fp32": 4,
    "fp64": 8,
    "int32": 4,
    "int64": 8,
}


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: shape and element type.

    Instances are immutable and hashable so they can be used as parts of
    profile-index keys (paper section 4.6).
    """

    shape: tuple[int, ...]
    dtype: str = "fp32"

    def __post_init__(self) -> None:
        if not isinstance(self.shape, tuple):
            object.__setattr__(self, "shape", tuple(self.shape))
        for dim in self.shape:
            if not isinstance(dim, int) or dim <= 0:
                raise ValueError(f"shape dims must be positive ints, got {self.shape}")
        if self.dtype not in DTYPE_SIZES:
            raise ValueError(f"unknown dtype {self.dtype!r}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        return self.num_elements * DTYPE_SIZES[self.dtype]

    def with_shape(self, shape: tuple[int, ...]) -> "TensorSpec":
        return TensorSpec(tuple(shape), self.dtype)

    def transposed(self) -> "TensorSpec":
        if self.rank != 2:
            raise ValueError(f"transpose needs a rank-2 tensor, got rank {self.rank}")
        return TensorSpec((self.shape[1], self.shape[0]), self.dtype)

    def __str__(self) -> str:  # compact form used in schedule dumps
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype}"


def matmul_result(a: TensorSpec, b: TensorSpec) -> TensorSpec:
    """Shape inference for a 2-D matrix multiply ``a @ b``."""
    if a.rank != 2 or b.rank != 2:
        raise ValueError(f"matmul needs rank-2 operands, got {a} and {b}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"matmul inner dims differ: {a} @ {b}")
    if a.dtype != b.dtype:
        raise ValueError(f"matmul dtype mismatch: {a.dtype} vs {b.dtype}")
    return TensorSpec((a.shape[0], b.shape[1]), a.dtype)


def matmul_flops(a: TensorSpec, b: TensorSpec) -> int:
    """Multiply-add flop count of ``a @ b`` (2*M*K*N convention)."""
    m, k = a.shape
    _, n = b.shape
    return 2 * m * k * n


def broadcast_result(a: TensorSpec, b: TensorSpec) -> TensorSpec:
    """Shape inference for elementwise ops with numpy-style broadcasting.

    Shapes are aligned on trailing dimensions; each aligned pair must match
    or contain a 1 (which broadcasts).  Examples the model zoo relies on:
    ``(B, N) + (N,)`` for biases and ``(B, N) - (B, 1)`` for softmax-style
    keepdims reductions.
    """
    if a.dtype != b.dtype:
        raise ValueError(f"elementwise dtype mismatch: {a.dtype} vs {b.dtype}")
    if a.shape == b.shape:
        return a
    rank = max(a.rank, b.rank)
    pad_a = (1,) * (rank - a.rank) + a.shape
    pad_b = (1,) * (rank - b.rank) + b.shape
    out = []
    for da, db in zip(pad_a, pad_b):
        if da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ValueError(f"incompatible elementwise shapes: {a} vs {b}")
    return TensorSpec(tuple(out), a.dtype)
