"""Operator definitions for the data-flow graph IR.

Every operator knows three things:

* shape inference (``infer_shape``) so graphs are fully shape-typed,
* a cost summary (``flops`` and ``bytes_accessed``) consumed by the GPU
  simulator's cost model, and
* a numpy reference implementation (``evaluate``) used by the interpreter
  to validate graph construction and automatic differentiation.

Operators carry a ``kind`` tag that downstream layers dispatch on:
``gemm`` ops are fusion/kernel-selection candidates, ``elementwise`` ops are
JIT-fusion candidates, ``embedding`` ops trigger the XLA pathology modelled
in :mod:`repro.baselines.xla`, and ``movement`` ops are memory-bound.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .tensor import TensorSpec, broadcast_result, matmul_flops, matmul_result

#: operator kind tags (see module docstring)
KIND_GEMM = "gemm"
KIND_ELEMENTWISE = "elementwise"
KIND_REDUCTION = "reduction"
KIND_EMBEDDING = "embedding"
KIND_MOVEMENT = "movement"
KIND_SOURCE = "source"


class Op:
    """Base class for IR operators.

    Subclasses must set ``name`` and ``kind`` and implement ``infer_shape``
    and ``evaluate``.  ``flops`` defaults to one flop per output element
    (elementwise convention); compute-heavy ops override it.
    """

    name: str = "op"
    kind: str = KIND_ELEMENTWISE

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        raise NotImplementedError

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return out.num_elements

    def bytes_accessed(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return sum(spec.size_bytes for spec in inputs) + out.size_bytes

    def evaluate(self, *arrays: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def signature(self) -> tuple:
        """Hashable op identity used in profile-index keys and equivalence
        classes (paper sections 4.5.5 and 4.6)."""
        return (self.name,)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def _expect_arity(op: Op, inputs: Sequence[TensorSpec], arity: int) -> None:
    if len(inputs) != arity:
        raise ValueError(f"{op.name} expects {arity} inputs, got {len(inputs)}")


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------


class MatMul(Op):
    """2-D matrix multiplication, optionally with transposed operands.

    The transpose flags let the backward pass express ``grad @ W^T`` without
    materialising a transposed copy, matching how cuBLAS-style libraries take
    transA/transB arguments.
    """

    name = "mm"
    kind = KIND_GEMM

    def __init__(self, transpose_a: bool = False, transpose_b: bool = False):
        self.transpose_a = transpose_a
        self.transpose_b = transpose_b

    def _effective(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, TensorSpec]:
        a, b = inputs
        if self.transpose_a:
            a = a.transposed()
        if self.transpose_b:
            b = b.transposed()
        return a, b

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 2)
        a, b = self._effective(inputs)
        return matmul_result(a, b)

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        a, b = self._effective(inputs)
        return matmul_flops(a, b)

    def gemm_dims(self, inputs: Sequence[TensorSpec]) -> tuple[int, int, int]:
        """(M, K, N) of the effective multiply; the cost model's key input."""
        a, b = self._effective(inputs)
        return a.shape[0], a.shape[1], b.shape[1]

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.transpose_a:
            a = a.T
        if self.transpose_b:
            b = b.T
        return a @ b

    def signature(self) -> tuple:
        return (self.name, self.transpose_a, self.transpose_b)


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------


class _Binary(Op):
    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 2)
        return broadcast_result(inputs[0], inputs[1])


class Add(_Binary):
    name = "add"

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class Sub(_Binary):
    name = "sub"

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a - b


class Mul(_Binary):
    name = "mul"

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b


class Div(_Binary):
    name = "div"

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a / b


class _Unary(Op):
    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        return inputs[0]


class Sigmoid(_Unary):
    name = "sigmoid"

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 4 * out.num_elements  # exp + add + div + neg

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))


class Tanh(_Unary):
    name = "tanh"

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 4 * out.num_elements

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)


class Relu(_Unary):
    name = "relu"

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class Step(_Unary):
    """Heaviside step (1 where x > 0), the derivative mask of ReLU."""

    name = "step"

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return (x > 0).astype(x.dtype)


class Log(_Unary):
    name = "log"

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 4 * out.num_elements

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.log(x)


class Exp(_Unary):
    name = "exp"

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 4 * out.num_elements

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.exp(x)


class Scale(_Unary):
    """Multiply by a python scalar constant."""

    name = "scale"

    def __init__(self, factor: float):
        self.factor = float(factor)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x * self.factor

    def signature(self) -> tuple:
        return (self.name, self.factor)


class AddScalar(_Unary):
    """Add a python scalar constant (e.g. the ``1 +`` in ``1 - sigmoid``)."""

    name = "adds"

    def __init__(self, value: float):
        self.value = float(value)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x + self.value

    def signature(self) -> tuple:
        return (self.name, self.value)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


class ReduceSum(Op):
    """Sum over one axis (``keepdims`` preserved for broadcasting) or over
    all axes when ``axis is None`` (producing a ``(1,)`` scalar tensor)."""

    name = "reduce_sum"
    kind = KIND_REDUCTION

    def __init__(self, axis: int | None = None, keepdims: bool = False):
        self.axis = axis
        self.keepdims = keepdims

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        spec = inputs[0]
        if self.axis is None:
            return spec.with_shape((1,) * spec.rank if self.keepdims else (1,))
        axis = self.axis % spec.rank
        shape = list(spec.shape)
        if self.keepdims:
            shape[axis] = 1
        else:
            del shape[axis]
            if not shape:
                shape = [1]
        return spec.with_shape(tuple(shape))

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return inputs[0].num_elements

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        if self.axis is None:
            result = x.sum(keepdims=self.keepdims)
            return result if self.keepdims else np.reshape(result, (1,))
        return x.sum(axis=self.axis, keepdims=self.keepdims)

    def signature(self) -> tuple:
        return (self.name, self.axis, self.keepdims)


class Softmax(Op):
    """Numerically-stable softmax along the last axis."""

    name = "softmax"
    kind = KIND_REDUCTION

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        return inputs[0]

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 6 * out.num_elements

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------


class Embedding(Op):
    """Row lookup ``table[indices]``: inputs are ``(V, D)`` table and ``(B,)``
    int indices, output ``(B, D)``.

    Tagged with its own kind because static compilers treat lookups
    specially -- the XLA baseline reproduces the paper's observation that
    embeddings force host/device transitions (section 6.6).
    """

    name = "embedding"
    kind = KIND_EMBEDDING

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 2)
        table, indices = inputs
        if table.rank != 2 or indices.rank != 1:
            raise ValueError(f"embedding expects (V,D) table and (B,) indices, got {table} {indices}")
        if indices.dtype not in ("int32", "int64"):
            raise ValueError("embedding indices must be integer-typed")
        return TensorSpec((indices.shape[0], table.shape[1]), table.dtype)

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0  # pure gather

    def bytes_accessed(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 2 * out.size_bytes + inputs[1].size_bytes

    def evaluate(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return table[indices.astype(np.int64)]


class EmbeddingGrad(Op):
    """Scatter-add of output gradients back into a ``(V, D)`` table.

    Inputs: ``(B,)`` int indices and ``(B, D)`` gradient rows; the vocabulary
    size is a constructor argument because it is not recoverable from the
    inputs alone.
    """

    name = "embedding_grad"
    kind = KIND_EMBEDDING

    def __init__(self, vocab_size: int):
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        self.vocab_size = vocab_size

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 2)
        indices, grad = inputs
        if indices.rank != 1 or grad.rank != 2 or grad.shape[0] != indices.shape[0]:
            raise ValueError(f"embedding_grad expects (B,) and (B,D), got {indices} {grad}")
        return TensorSpec((self.vocab_size, grad.shape[1]), grad.dtype)

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return inputs[1].num_elements  # one add per scattered element

    def evaluate(self, indices: np.ndarray, grad: np.ndarray) -> np.ndarray:
        table = np.zeros((self.vocab_size, grad.shape[1]), dtype=grad.dtype)
        np.add.at(table, indices.astype(np.int64), grad)
        return table

    def signature(self) -> tuple:
        return (self.name, self.vocab_size)


# ---------------------------------------------------------------------------
# Data movement
# ---------------------------------------------------------------------------


class Concat(Op):
    name = "concat"
    kind = KIND_MOVEMENT

    def __init__(self, axis: int = -1):
        self.axis = axis

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        if len(inputs) < 2:
            raise ValueError("concat needs at least two inputs")
        rank = inputs[0].rank
        axis = self.axis % rank
        base = list(inputs[0].shape)
        total = 0
        for spec in inputs:
            if spec.rank != rank or spec.dtype != inputs[0].dtype:
                raise ValueError("concat inputs must agree in rank and dtype")
            for d in range(rank):
                if d != axis and spec.shape[d] != base[d]:
                    raise ValueError(f"concat shape mismatch along dim {d}")
            total += spec.shape[axis]
        base[axis] = total
        return inputs[0].with_shape(tuple(base))

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def evaluate(self, *arrays: np.ndarray) -> np.ndarray:
        return np.concatenate(arrays, axis=self.axis)

    def signature(self) -> tuple:
        return (self.name, self.axis)


class Slice(Op):
    """Contiguous slice ``x[..., start:stop, ...]`` along one axis."""

    name = "slice"
    kind = KIND_MOVEMENT

    def __init__(self, axis: int, start: int, stop: int):
        if start < 0 or stop <= start:
            raise ValueError(f"bad slice bounds [{start}, {stop})")
        self.axis = axis
        self.start = start
        self.stop = stop

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        spec = inputs[0]
        axis = self.axis % spec.rank
        if self.stop > spec.shape[axis]:
            raise ValueError(f"slice [{self.start},{self.stop}) exceeds dim {spec.shape[axis]}")
        shape = list(spec.shape)
        shape[axis] = self.stop - self.start
        return spec.with_shape(tuple(shape))

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        index = [slice(None)] * x.ndim
        index[self.axis % x.ndim] = slice(self.start, self.stop)
        return x[tuple(index)]

    def signature(self) -> tuple:
        return (self.name, self.axis, self.start, self.stop)


class PadZero(Op):
    """Zero-pad along one axis so the result has ``total`` extent; the input
    occupies ``[start, start + in_extent)``.  Inverse of :class:`Slice`."""

    name = "pad_zero"
    kind = KIND_MOVEMENT

    def __init__(self, axis: int, start: int, total: int):
        if start < 0 or total <= start:
            raise ValueError(f"bad pad bounds start={start} total={total}")
        self.axis = axis
        self.start = start
        self.total = total

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        spec = inputs[0]
        axis = self.axis % spec.rank
        if self.start + spec.shape[axis] > self.total:
            raise ValueError(f"pad input extent {spec.shape[axis]} overflows total {self.total}")
        shape = list(spec.shape)
        shape[axis] = self.total
        return spec.with_shape(tuple(shape))

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        axis = self.axis % x.ndim
        shape = list(x.shape)
        shape[axis] = self.total
        out = np.zeros(shape, dtype=x.dtype)
        index = [slice(None)] * x.ndim
        index[axis] = slice(self.start, self.start + x.shape[axis])
        out[tuple(index)] = x
        return out

    def signature(self) -> tuple:
        return (self.name, self.axis, self.start, self.total)


class Transpose(Op):
    name = "transpose"
    kind = KIND_MOVEMENT

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        return inputs[0].transposed()

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x.T


class Reshape(Op):
    name = "reshape"
    kind = KIND_MOVEMENT

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(shape)

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 1)
        if math.prod(self.shape) != inputs[0].num_elements:
            raise ValueError(f"cannot reshape {inputs[0]} to {self.shape}")
        return inputs[0].with_shape(self.shape)

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def bytes_accessed(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0  # pure metadata change

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(self.shape)

    def signature(self) -> tuple:
        return (self.name, self.shape)


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


class Fill(Op):
    """Constant-filled tensor source (used by autodiff for seed gradients)."""

    name = "fill"
    kind = KIND_SOURCE

    def __init__(self, spec: TensorSpec, value: float):
        self.spec = spec
        self.value = float(value)

    def infer_shape(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        _expect_arity(self, inputs, 0)
        return self.spec

    def flops(self, inputs: Sequence[TensorSpec], out: TensorSpec) -> int:
        return 0

    def evaluate(self) -> np.ndarray:
        return np.full(self.spec.shape, self.value, dtype=np.float32)

    def signature(self) -> tuple:
        return (self.name, self.spec.shape, self.value)
