"""Tracing frontend: build data-flow graphs from imperative python code.

This plays the role of PyTorch's ``torch.jit.trace`` in the paper's
prototype (section 5.1): model code is ordinary python that manipulates
:class:`Var` handles, and every operation appends a node to the underlying
:class:`~repro.ir.graph.Graph`.

``Tracer.scope`` records the model-code provenance of each op (layer,
timestep), which the enumerator later uses for equivalence classes and to
restrict fusion candidates to nodes of the same provenance (section 4.4.1).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from . import ops
from .graph import Graph, Node
from .tensor import TensorSpec


class Var:
    """A traced tensor value: a handle to a graph node.

    Supports python operator syntax (``a @ b``, ``a + b`` ...) so model
    code reads like the PyTorch it substitutes for.
    """

    __slots__ = ("tracer", "node")

    def __init__(self, tracer: "Tracer", node: Node):
        self.tracer = tracer
        self.node = node

    @property
    def spec(self) -> TensorSpec:
        return self.node.spec

    @property
    def shape(self) -> tuple[int, ...]:
        return self.node.spec.shape

    def __matmul__(self, other: "Var") -> "Var":
        return self.tracer.matmul(self, other)

    def __add__(self, other: "Var") -> "Var":
        return self.tracer.add(self, other)

    def __sub__(self, other: "Var") -> "Var":
        return self.tracer.sub(self, other)

    def __mul__(self, other) -> "Var":
        if isinstance(other, (int, float)):
            return self.tracer.scale(self, other)
        return self.tracer.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: "Var") -> "Var":
        return self.tracer.div(self, other)

    def __repr__(self) -> str:
        return f"Var(%{self.node.node_id}: {self.spec})"


class Tracer:
    """Records model computation into a :class:`Graph`."""

    def __init__(self, name: str = "traced"):
        self.graph = Graph(name)
        self._scope_stack: list[str] = []
        self.pass_tag = "forward"

    # -- scopes ---------------------------------------------------------------

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    @property
    def current_scope(self) -> str:
        return "/".join(self._scope_stack)

    # -- leaves ---------------------------------------------------------------

    def input(self, shape: Sequence[int], dtype: str = "fp32", label: str = "") -> Var:
        node = self.graph.add_input(TensorSpec(tuple(shape), dtype), label=label)
        return Var(self, node)

    def param(self, shape: Sequence[int], dtype: str = "fp32", label: str = "") -> Var:
        node = self.graph.add_param(TensorSpec(tuple(shape), dtype), label=label)
        return Var(self, node)

    def output(self, var: Var) -> Var:
        self.graph.mark_output(var.node)
        return var

    # -- op emission ------------------------------------------------------------

    def emit(self, op: ops.Op, inputs: Sequence[Var], label: str = "") -> Var:
        node = self.graph.add_op(
            op,
            [v.node for v in inputs],
            scope=self.current_scope,
            pass_tag=self.pass_tag,
            label=label,
        )
        return Var(self, node)

    # -- functional API -----------------------------------------------------

    def matmul(self, a: Var, b: Var, transpose_a: bool = False, transpose_b: bool = False) -> Var:
        return self.emit(ops.MatMul(transpose_a, transpose_b), [a, b])

    def add(self, a: Var, b: Var) -> Var:
        return self.emit(ops.Add(), [a, b])

    def sub(self, a: Var, b: Var) -> Var:
        return self.emit(ops.Sub(), [a, b])

    def mul(self, a: Var, b: Var) -> Var:
        return self.emit(ops.Mul(), [a, b])

    def div(self, a: Var, b: Var) -> Var:
        return self.emit(ops.Div(), [a, b])

    def sigmoid(self, x: Var) -> Var:
        return self.emit(ops.Sigmoid(), [x])

    def tanh(self, x: Var) -> Var:
        return self.emit(ops.Tanh(), [x])

    def relu(self, x: Var) -> Var:
        return self.emit(ops.Relu(), [x])

    def log(self, x: Var) -> Var:
        return self.emit(ops.Log(), [x])

    def exp(self, x: Var) -> Var:
        return self.emit(ops.Exp(), [x])

    def scale(self, x: Var, factor: float) -> Var:
        return self.emit(ops.Scale(factor), [x])

    def add_scalar(self, x: Var, value: float) -> Var:
        return self.emit(ops.AddScalar(value), [x])

    def softmax(self, x: Var) -> Var:
        return self.emit(ops.Softmax(), [x])

    def reduce_sum(self, x: Var, axis: int | None = None, keepdims: bool = False) -> Var:
        return self.emit(ops.ReduceSum(axis, keepdims), [x])

    def embedding(self, table: Var, indices: Var) -> Var:
        return self.emit(ops.Embedding(), [table, indices])

    def concat(self, parts: Sequence[Var], axis: int = -1) -> Var:
        return self.emit(ops.Concat(axis), list(parts))

    def slice(self, x: Var, axis: int, start: int, stop: int) -> Var:
        return self.emit(ops.Slice(axis, start, stop), [x])

    def transpose(self, x: Var) -> Var:
        return self.emit(ops.Transpose(), [x])

    def reshape(self, x: Var, shape: Sequence[int]) -> Var:
        return self.emit(ops.Reshape(tuple(shape)), [x])

    def fill(self, shape: Sequence[int], value: float, dtype: str = "fp32") -> Var:
        spec = TensorSpec(tuple(shape), dtype)
        return self.emit(ops.Fill(spec, value), [])

    def var_for(self, node: Node) -> Var:
        """Wrap an existing graph node (used by autodiff)."""
        if node.node_id >= len(self.graph.nodes) or self.graph.nodes[node.node_id] is not node:
            raise ValueError("node does not belong to this tracer's graph")
        return Var(self, node)
