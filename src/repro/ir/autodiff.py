"""Reverse-mode automatic differentiation over traced graphs.

The DL toolkits Astra builds on generate the backward-pass code from the
user's forward-pass model (paper section 5.1: "roughly two-thirds of the
computation happens during the backward pass").  This module plays that
role: given a traced forward graph and a loss node, it *appends* the
backward computation to the same graph, tagging every new node with
``pass_tag="backward"`` so the enumerator can reason about forward/backward
fusion conflicts (section 3.2, Figure 1).

Gradients are expressed in terms of the ordinary op vocabulary (matmuls
with transpose flags, elementwise ops, reductions), so the backward pass is
subject to exactly the same fusion / kernel-selection / stream adaptation
as the forward pass.
"""

from __future__ import annotations

from . import ops
from .graph import Node
from .tensor import TensorSpec
from .trace import Tracer, Var


def _reduce_to_shape(tracer: Tracer, grad: Var, target: TensorSpec) -> Var:
    """Sum a broadcast gradient back down to the shape of the operand.

    Handles the two broadcast forms the IR admits: extra leading dims
    (summed away) and interior dims of size 1 (summed with keepdims).
    """
    while grad.spec.rank > target.rank:
        grad = tracer.reduce_sum(grad, axis=0)
    if grad.spec.rank == target.rank:
        for axis in range(target.rank):
            if target.shape[axis] == 1 and grad.shape[axis] != 1:
                grad = tracer.reduce_sum(grad, axis=axis, keepdims=True)
    if grad.spec.shape != target.shape:
        raise ValueError(f"cannot reduce grad {grad.spec} to {target}")
    return grad


def _matmul_vjp(tracer: Tracer, node: Node, grad: Var, a: Var, b: Var) -> list[Var]:
    """Gradients of ``y = A' @ B'`` where primes apply the transpose flags.

    Each gradient is a single matmul with transpose flags -- no transpose
    copies are materialised, matching how real frameworks lower these.
    """
    op: ops.MatMul = node.op  # type: ignore[assignment]
    ta, tb = op.transpose_a, op.transpose_b
    if ta:
        grad_a = tracer.matmul(b, grad, transpose_a=tb, transpose_b=True)
    else:
        grad_a = tracer.matmul(grad, b, transpose_b=not tb)
    if tb:
        grad_b = tracer.matmul(grad, a, transpose_a=True, transpose_b=ta)
    else:
        grad_b = tracer.matmul(a, grad, transpose_a=not ta)
    return [grad_a, grad_b]


def _vjp(tracer: Tracer, node: Node, grad: Var, inputs: list[Var], out: Var) -> list[Var | None]:
    """Per-op vector-Jacobian products.  Returns one grad (or None) per input."""
    op = node.op
    assert op is not None

    if isinstance(op, ops.MatMul):
        ga, gb = _matmul_vjp(tracer, node, grad, inputs[0], inputs[1])
        return [ga, gb]

    if isinstance(op, ops.Add):
        return [
            _reduce_to_shape(tracer, grad, inputs[0].spec),
            _reduce_to_shape(tracer, grad, inputs[1].spec),
        ]
    if isinstance(op, ops.Sub):
        return [
            _reduce_to_shape(tracer, grad, inputs[0].spec),
            _reduce_to_shape(tracer, tracer.scale(grad, -1.0), inputs[1].spec),
        ]
    if isinstance(op, ops.Mul):
        return [
            _reduce_to_shape(tracer, tracer.mul(grad, inputs[1]), inputs[0].spec),
            _reduce_to_shape(tracer, tracer.mul(grad, inputs[0]), inputs[1].spec),
        ]
    if isinstance(op, ops.Div):
        a, b = inputs
        grad_a = _reduce_to_shape(tracer, tracer.div(grad, b), a.spec)
        grad_b = tracer.scale(tracer.div(tracer.mul(grad, a), tracer.mul(b, b)), -1.0)
        return [grad_a, _reduce_to_shape(tracer, grad_b, b.spec)]

    if isinstance(op, ops.Sigmoid):
        one_minus = tracer.add_scalar(tracer.scale(out, -1.0), 1.0)
        return [tracer.mul(tracer.mul(grad, out), one_minus)]
    if isinstance(op, ops.Tanh):
        one_minus_sq = tracer.add_scalar(tracer.scale(tracer.mul(out, out), -1.0), 1.0)
        return [tracer.mul(grad, one_minus_sq)]
    if isinstance(op, ops.Relu):
        return [tracer.mul(grad, tracer.emit(ops.Step(), [inputs[0]]))]
    if isinstance(op, ops.Log):
        return [tracer.div(grad, inputs[0])]
    if isinstance(op, ops.Exp):
        return [tracer.mul(grad, out)]
    if isinstance(op, ops.Scale):
        return [tracer.scale(grad, op.factor)]
    if isinstance(op, ops.AddScalar):
        return [grad]
    if isinstance(op, ops.Step):
        return [None]  # zero a.e.

    if isinstance(op, ops.Softmax):
        inner = tracer.reduce_sum(tracer.mul(grad, out), axis=-1, keepdims=True)
        return [tracer.mul(out, tracer.sub(grad, inner))]
    if isinstance(op, ops.ReduceSum):
        in_spec = inputs[0].spec
        ones = tracer.fill(in_spec.shape, 1.0, in_spec.dtype)
        if op.axis is None or op.keepdims:
            expanded = grad
        else:
            axis = op.axis % in_spec.rank
            keep_shape = list(grad.shape)
            if grad.spec.rank == in_spec.rank - 1:
                keep_shape.insert(axis, 1)
            expanded = tracer.reshape(grad, keep_shape)
        return [tracer.mul(ones, expanded)]

    if isinstance(op, ops.Embedding):
        table, indices = inputs
        vocab = table.spec.shape[0]
        return [tracer.emit(ops.EmbeddingGrad(vocab), [indices, grad]), None]

    if isinstance(op, ops.Concat):
        axis = op.axis % out.spec.rank
        grads: list[Var | None] = []
        offset = 0
        for inp in inputs:
            extent = inp.spec.shape[axis]
            grads.append(tracer.slice(grad, axis, offset, offset + extent))
            offset += extent
        return grads
    if isinstance(op, ops.Slice):
        in_spec = inputs[0].spec
        axis = op.axis % in_spec.rank
        return [tracer.emit(ops.PadZero(axis, op.start, in_spec.shape[axis]), [grad])]
    if isinstance(op, ops.PadZero):
        in_spec = inputs[0].spec
        axis = op.axis % in_spec.rank
        return [tracer.slice(grad, axis, op.start, op.start + in_spec.shape[axis])]
    if isinstance(op, ops.Transpose):
        return [tracer.transpose(grad)]
    if isinstance(op, ops.Reshape):
        return [tracer.reshape(grad, inputs[0].spec.shape)]
    if isinstance(op, ops.Fill):
        return []
    if isinstance(op, ops.EmbeddingGrad):
        raise ValueError("cannot differentiate through embedding_grad")

    raise NotImplementedError(f"no vjp rule for op {op.name!r}")


def backward(tracer: Tracer, loss: Var, wrt: list[Var] | None = None) -> dict[int, Var]:
    """Append the backward pass for ``loss`` to the tracer's graph.

    Returns a map from the node id of each differentiable leaf (parameters
    by default, or the nodes in ``wrt``) to the Var holding its gradient.
    Gradient nodes are marked as graph outputs so dead-code analysis keeps
    them live.
    """
    graph = tracer.graph
    targets = {v.node.node_id for v in wrt} if wrt is not None else {
        n.node_id for n in graph.params()
    }

    # Work out which nodes the loss actually depends on and which feed a target.
    needed = _influence_set(tracer, loss, targets)

    grads: dict[int, Var] = {}
    saved_tag = tracer.pass_tag
    tracer.pass_tag = "backward"
    try:
        with tracer.scope("backward"):
            seed = tracer.fill(loss.spec.shape, 1.0, loss.spec.dtype)
        grads[loss.node.node_id] = seed
        for node in reversed(graph.nodes[: loss.node.node_id + 1]):
            if node.node_id not in grads or node.is_leaf or node.node_id not in needed:
                continue
            grad_var = grads[node.node_id]
            input_vars = [tracer.var_for(graph.node(i)) for i in node.input_ids]
            out_var = tracer.var_for(node)
            with tracer.scope(node.scope or "backward"):
                input_grads = _vjp(tracer, node, grad_var, input_vars, out_var)
            for inp_id, g in zip(node.input_ids, input_grads):
                if g is None or inp_id not in needed:
                    continue
                if inp_id in grads:
                    with tracer.scope("autodiff/accum"):
                        grads[inp_id] = tracer.add(grads[inp_id], g)
                else:
                    grads[inp_id] = g
    finally:
        tracer.pass_tag = saved_tag

    result = {}
    for target_id in targets:
        if target_id in grads:
            result[target_id] = grads[target_id]
            graph.mark_output(grads[target_id].node)
    return result


def _influence_set(tracer: Tracer, loss: Var, targets: set[int]) -> set[int]:
    """Nodes on some path from a target leaf to the loss.

    Backward work is only emitted for these nodes, mirroring real autodiff
    engines that prune branches not reaching any parameter.
    """
    graph = tracer.graph
    # ancestors of loss
    ancestors = set()
    stack = [loss.node.node_id]
    while stack:
        nid = stack.pop()
        if nid in ancestors:
            continue
        ancestors.add(nid)
        stack.extend(graph.node(nid).input_ids)

    # nodes reaching a target, via reverse traversal over consumers
    reaches = set(targets & ancestors)
    frontier = list(reaches)
    while frontier:
        nid = frontier.pop()
        for consumer in graph.consumers(nid):
            if consumer in ancestors and consumer not in reaches:
                reaches.add(consumer)
                frontier.append(consumer)
    return reaches
