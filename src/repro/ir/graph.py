"""Data-flow graph representation.

A :class:`Graph` is a DAG of :class:`Node` objects.  Nodes are appended in a
valid topological order (an input must exist before its consumer), which is
what tracing naturally produces; the class enforces it.

Each node carries *provenance* metadata that Astra's enumerator consumes:

* ``scope`` -- the model-code scope the op came from (e.g. ``"layer0/step3"``),
  used for equivalence-class detection (paper section 4.5.5, "scope of the
  operations from the high level code");
* ``pass_tag`` -- ``"forward"`` or ``"backward"``, letting the enumerator
  reason about conflicting fusion choices between passes (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .ops import KIND_SOURCE, Op
from .tensor import TensorSpec

ROLE_INPUT = "input"
ROLE_PARAM = "param"
ROLE_COMPUTE = "compute"


@dataclass
class Node:
    """One operation (or graph input/parameter) in the DFG."""

    node_id: int
    op: Op | None
    input_ids: tuple[int, ...]
    spec: TensorSpec
    role: str = ROLE_COMPUTE
    scope: str = ""
    pass_tag: str = "forward"
    label: str = ""

    @property
    def is_leaf(self) -> bool:
        return self.role in (ROLE_INPUT, ROLE_PARAM)

    @property
    def kind(self) -> str:
        if self.op is None:
            return "leaf"
        return self.op.kind

    def __str__(self) -> str:
        opname = self.op.name if self.op else self.role
        args = ", ".join(f"%{i}" for i in self.input_ids)
        tag = f" [{self.scope}]" if self.scope else ""
        return f"%{self.node_id} = {opname}({args}) -> {self.spec}{tag}"


class Graph:
    """An append-only DAG of tensor operations.

    The node list is always a valid topological order.  ``consumers`` is
    maintained incrementally so dependence queries used throughout the
    enumerator are O(1).
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: list[Node] = []
        self._consumers: dict[int, list[int]] = {}
        self.outputs: list[int] = []

    # -- construction -------------------------------------------------------

    def add_input(self, spec: TensorSpec, label: str = "", role: str = ROLE_INPUT) -> Node:
        if role not in (ROLE_INPUT, ROLE_PARAM):
            raise ValueError(f"leaf role must be input or param, got {role!r}")
        node = Node(len(self.nodes), None, (), spec, role=role, label=label)
        self.nodes.append(node)
        self._consumers[node.node_id] = []
        return node

    def add_param(self, spec: TensorSpec, label: str = "") -> Node:
        return self.add_input(spec, label=label, role=ROLE_PARAM)

    def add_op(
        self,
        op: Op,
        inputs: Iterable[Node],
        scope: str = "",
        pass_tag: str = "forward",
        label: str = "",
    ) -> Node:
        input_nodes = list(inputs)
        for inp in input_nodes:
            if inp.node_id >= len(self.nodes) or self.nodes[inp.node_id] is not inp:
                raise ValueError(f"input {inp} does not belong to graph {self.name!r}")
        if op.kind != KIND_SOURCE and not input_nodes:
            raise ValueError(f"op {op.name} requires inputs")
        spec = op.infer_shape([inp.spec for inp in input_nodes])
        node = Node(
            len(self.nodes),
            op,
            tuple(inp.node_id for inp in input_nodes),
            spec,
            scope=scope,
            pass_tag=pass_tag,
            label=label,
        )
        self.nodes.append(node)
        self._consumers[node.node_id] = []
        for inp in input_nodes:
            self._consumers[inp.node_id].append(node.node_id)
        return node

    def mark_output(self, node: Node) -> None:
        if node.node_id not in self._consumers:
            raise ValueError(f"{node} is not in this graph")
        if node.node_id not in self.outputs:
            self.outputs.append(node.node_id)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def consumers(self, node_id: int) -> list[int]:
        return self._consumers[node_id]

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes if n.role == ROLE_INPUT]

    def params(self) -> list[Node]:
        return [n for n in self.nodes if n.role == ROLE_PARAM]

    def compute_nodes(self) -> list[Node]:
        return [n for n in self.nodes if not n.is_leaf]

    def gemm_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "gemm"]

    def total_flops(self) -> int:
        total = 0
        for node in self.nodes:
            if node.op is not None:
                in_specs = [self.nodes[i].spec for i in node.input_ids]
                total += node.op.flops(in_specs, node.spec)
        return total

    def depends_on(self, later: int, earlier: int) -> bool:
        """True if node ``later`` transitively depends on node ``earlier``.

        Walks the ancestor set of ``later``; node ids are topologically
        ordered so ancestors always have smaller ids, which bounds the walk.
        """
        if later <= earlier:
            return later == earlier
        seen = set()
        stack = [later]
        while stack:
            nid = stack.pop()
            if nid == earlier:
                return True
            if nid in seen or nid < earlier:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].input_ids)
        return False

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for node in self.nodes:
            for inp in node.input_ids:
                if inp >= node.node_id:
                    raise ValueError(f"node %{node.node_id} consumes later node %{inp}")
            if node.op is not None:
                in_specs = [self.nodes[i].spec for i in node.input_ids]
                inferred = node.op.infer_shape(in_specs)
                if inferred != node.spec:
                    raise ValueError(
                        f"node %{node.node_id} spec {node.spec} != inferred {inferred}"
                    )

    def dump(self, limit: int | None = None) -> str:
        """Human-readable listing in the paper's ``%N = mm(%a, %b)`` style."""
        lines = [f"graph {self.name} ({len(self.nodes)} nodes)"]
        shown = self.nodes if limit is None else self.nodes[:limit]
        lines.extend(str(node) for node in shown)
        if limit is not None and len(self.nodes) > limit:
            lines.append(f"... {len(self.nodes) - limit} more nodes")
        return "\n".join(lines)
