"""Critical-path attribution over executed mini-batch timelines.

Turns one executed mini-batch -- either a live
:class:`~repro.gpu.streams.ExecutionResult` or a previously exported
Chrome trace document -- into an attribution report:

* **critical path**: the chain of binding constraints that determines the
  epoch time.  The simulator starts every kernel at exactly
  ``max(issue_time, waited event times, stream FIFO)``, so walking back
  from the last-finishing kernel and following whichever constraint
  *equals* the start time yields an exact partition of ``[0, total]``
  into kernel segments plus a dispatch prefix/tail.  Per-kernel
  contributions therefore sum to the measured epoch time.
* **stream attribution**: per-stream busy time plus a classification of
  every idle gap as waiting-on-event (cross-stream stall) vs
  dispatch-gap (the serialized CPU had not issued the next kernel yet).
* **dependency-chain slack**: per kernel, how much it could grow before
  lengthening the GPU makespan, following same-stream FIFO and
  wait-event edges only.

The same edges :func:`repro.obs.trace._flow_events` draws as flow arrows
are used here, so what you see in Perfetto is what the analysis walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.streams import LaunchItem
from .trace import PID_CPU, PID_GPU

#: absolute tolerance when matching a constraint time against a start time;
#: simulator floats are exact, trace JSON round-trips are exact, so this
#: only absorbs ulp noise from re-deriving end = ts + dur
_TOL = 1e-6

#: critical-path segment kinds
SEG_KERNEL = "kernel"
SEG_DISPATCH = "dispatch"
SEG_GAP = "gap"

#: stream-gap classifications
STALL_WAIT = "stall_wait"
STALL_DISPATCH = "stall_dispatch"
IDLE = "idle"


@dataclass
class TimelineNode:
    """One executed kernel on the timeline."""

    index: int
    name: str
    kind: str
    stream: int
    issue: float
    start: float
    end: float
    unit: int | None = None
    kernel: object | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class TimelineGraph:
    """Executed kernels plus the dependency edges that ordered them.

    Two constructors: :meth:`from_execution` (live result + lowering,
    exact) and :meth:`from_chrome_trace` (a previously exported document;
    edges recovered from the flow arrows).
    """

    def __init__(self, nodes, total_time_us: float, cpu_time_us: float):
        #: nodes in dispatch order (edges always point index-forward)
        self.nodes: list[TimelineNode] = list(nodes)
        self.total_time_us = total_time_us
        self.cpu_time_us = cpu_time_us
        #: consumer index -> indices of wait-event producers
        self.wait_producers: dict[int, list[int]] = {}
        #: per-stream node indices in start order
        self.stream_nodes: dict[int, list[int]] = {}
        for node in self.nodes:
            self.stream_nodes.setdefault(node.stream, []).append(node.index)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_execution(cls, result, lowered=None, device=None) -> "TimelineGraph":
        """Build from a live :class:`ExecutionResult`; exact timestamps."""
        record_units = getattr(lowered, "record_units", None) if lowered else None
        nodes = []
        for i, rec in enumerate(result.records):
            if rec.start_time < 0:
                continue
            unit = None
            if record_units is not None and i < len(record_units):
                unit = record_units[i]
            nodes.append(TimelineNode(
                index=len(nodes), name=rec.kernel.name, kind=rec.kind,
                stream=rec.stream_id, issue=rec.issue_time,
                start=rec.start_time, end=rec.end_time,
                unit=unit, kernel=rec.kernel,
            ))
        graph = cls(nodes, result.total_time_us, result.cpu_time_us)
        if lowered is not None:
            graph._edges_from_lowering(result, lowered)
        return graph

    def _edges_from_lowering(self, result, lowered) -> None:
        # the k-th LaunchItem in dispatch order produced result.records[k]
        launches = [it for it in lowered.items if isinstance(it, LaunchItem)]
        if len(launches) != len(result.records):
            return
        # map record index -> node index (records with start < 0 were skipped)
        node_of = {}
        n = 0
        for i, rec in enumerate(result.records):
            if rec.start_time >= 0:
                node_of[i] = n
                n += 1
        recorded_by = {
            item.record: idx for idx, item in enumerate(launches)
            if item.record is not None
        }
        for idx, item in enumerate(launches):
            if idx not in node_of:
                continue
            for ev in item.waits:
                src = recorded_by.get(ev)
                if src is None or src not in node_of:
                    continue
                self.wait_producers.setdefault(node_of[idx], []).append(node_of[src])

    @classmethod
    def from_chrome_trace(cls, doc: dict) -> "TimelineGraph":
        """Rebuild the timeline from an exported trace document.

        GPU kernel slices appear in dispatch order; the CPU ``launch``
        slices pair with them positionally (issue time = ts + dur), and
        s/f flow pairs recover the cross-stream wait edges.
        """
        events = doc.get("traceEvents", [])
        gpu = [e for e in events if e.get("ph") == "X" and e.get("pid") == PID_GPU]
        launches = [e for e in events
                    if e.get("ph") == "X" and e.get("pid") == PID_CPU
                    and e.get("cat") == "dispatch"]
        nodes = []
        for i, ev in enumerate(gpu):
            args = ev.get("args", {})
            start = float(ev["ts"])
            end = start + float(ev.get("dur", 0.0))
            issue = start
            if len(launches) == len(gpu):
                lev = launches[i]
                issue = float(lev["ts"]) + float(lev.get("dur", 0.0))
            nodes.append(TimelineNode(
                index=i, name=ev.get("name", "?"),
                kind=ev.get("cat", args.get("kind", "?")),
                stream=int(ev["tid"]), issue=issue, start=start, end=end,
                unit=args.get("unit"), args=args,
            ))
        other = doc.get("otherData", {})
        total = float(other.get("total_time_us",
                                max((n.end for n in nodes), default=0.0)))
        cpu = float(other.get("cpu_time_us", total))
        graph = cls(nodes, total, cpu)
        graph._edges_from_flows(events)
        return graph

    def _edges_from_flows(self, events) -> None:
        starts = {e["id"]: e for e in events if e.get("ph") == "s"}
        for fin in (e for e in events if e.get("ph") == "f"):
            src = starts.get(fin.get("id"))
            if src is None:
                continue
            producer = self._node_at(src["tid"], src["ts"], edge="end")
            consumer = self._node_at(fin["tid"], fin["ts"], edge="start")
            if producer is None or consumer is None:
                continue
            self.wait_producers.setdefault(consumer.index, []).append(producer.index)

    def _node_at(self, stream: int, ts: float, edge: str) -> TimelineNode | None:
        """Resolve a flow-arrow endpoint to the slice boundary it touches."""
        best, best_err = None, _TOL * max(1.0, self.total_time_us)
        for idx in self.stream_nodes.get(stream, ()):
            node = self.nodes[idx]
            err = abs((node.end if edge == "end" else node.start) - ts)
            if err <= best_err:
                best, best_err = node, err
        return best

    # -- derived structure ---------------------------------------------------

    @property
    def gpu_makespan_us(self) -> float:
        return max((n.end for n in self.nodes), default=0.0)

    @property
    def max_issue_us(self) -> float:
        return max((n.issue for n in self.nodes), default=0.0)

    def same_stream_prev(self, index: int) -> TimelineNode | None:
        order = self.stream_nodes[self.nodes[index].stream]
        pos = order.index(index)
        return self.nodes[order[pos - 1]] if pos > 0 else None

    def same_stream_next(self, index: int) -> TimelineNode | None:
        order = self.stream_nodes[self.nodes[index].stream]
        pos = order.index(index)
        return self.nodes[order[pos + 1]] if pos + 1 < len(order) else None

    def successors(self, index: int) -> list[int]:
        succ = []
        nxt = self.same_stream_next(index)
        if nxt is not None:
            succ.append(nxt.index)
        for consumer, producers in self.wait_producers.items():
            if index in producers:
                succ.append(consumer)
        return succ


@dataclass
class CriticalSegment:
    """One contiguous span of the critical path."""

    kind: str          # SEG_KERNEL / SEG_DISPATCH / SEG_GAP
    start: float
    end: float
    index: int | None = None   # node index for kernel segments
    name: str = ""
    via: str = ""              # constraint that bound the *next* segment

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StreamAttribution:
    stream: int
    busy_us: float = 0.0
    stall_wait_us: float = 0.0
    stall_dispatch_us: float = 0.0
    idle_us: float = 0.0
    kernels: int = 0

    def utilization(self, total: float) -> float:
        return self.busy_us / total if total > 0 else 0.0


@dataclass
class AnalysisReport:
    """Everything the critical-path walk derived from one mini-batch."""

    total_time_us: float
    cpu_time_us: float
    gpu_makespan_us: float
    segments: list[CriticalSegment]
    kernels: list[dict]                 # ranked per-kernel-name contribution
    streams: list[StreamAttribution]
    slack_us: dict[int, float]          # node index -> slack
    critical_records: list[int]         # node indices on the path, time order
    graph: TimelineGraph | None = None

    @property
    def critical_kernel_us(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == SEG_KERNEL)

    @property
    def critical_dispatch_us(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == SEG_DISPATCH)

    @property
    def critical_gap_us(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == SEG_GAP)

    def top_kernels(self, n: int = 10, kind: str | None = None) -> list[dict]:
        rows = self.kernels
        if kind is not None:
            rows = [r for r in rows if r["kind"] == kind]
        return rows[:n]

    def top_critical_records(self, n: int = 3, kind: str | None = None) -> list[int]:
        """Node indices with the largest critical-path contribution,
        de-duplicated by unit (one record per unit)."""
        contrib: dict[int, float] = {}
        for seg in self.segments:
            if seg.kind == SEG_KERNEL and seg.index is not None:
                contrib[seg.index] = contrib.get(seg.index, 0.0) + seg.duration
        ranked = sorted(contrib, key=lambda i: (-contrib[i], i))
        out, seen_units = [], set()
        for idx in ranked:
            node = self.graph.nodes[idx] if self.graph else None
            if kind is not None and (node is None or node.kind != kind):
                continue
            unit = node.unit if node is not None else idx
            if unit in seen_units:
                continue
            seen_units.add(unit)
            out.append(idx)
            if len(out) >= n:
                break
        return out

    def to_dict(self) -> dict:
        return {
            "total_time_us": self.total_time_us,
            "cpu_time_us": self.cpu_time_us,
            "gpu_makespan_us": self.gpu_makespan_us,
            "critical": {
                "kernel_us": self.critical_kernel_us,
                "dispatch_us": self.critical_dispatch_us,
                "gap_us": self.critical_gap_us,
                "segments": [
                    {"kind": s.kind, "start": s.start, "end": s.end,
                     "index": s.index, "name": s.name, "via": s.via}
                    for s in self.segments
                ],
            },
            "kernels": self.kernels,
            "streams": [
                {"stream": s.stream, "busy_us": s.busy_us,
                 "stall_wait_us": s.stall_wait_us,
                 "stall_dispatch_us": s.stall_dispatch_us,
                 "idle_us": s.idle_us, "kernels": s.kernels,
                 "utilization": round(s.utilization(self.total_time_us), 4)}
                for s in self.streams
            ],
            "slack_us": {str(k): v for k, v in sorted(self.slack_us.items())},
        }

    def observe_into(self, metrics) -> None:
        """Publish ``analysis.*`` metrics into a registry."""
        metrics.gauge("analysis.total_time_us").set(self.total_time_us)
        metrics.gauge("analysis.gpu_makespan_us").set(self.gpu_makespan_us)
        metrics.gauge("analysis.critical.kernel_us").set(self.critical_kernel_us)
        metrics.gauge("analysis.critical.dispatch_us").set(self.critical_dispatch_us)
        metrics.gauge("analysis.critical.gap_us").set(self.critical_gap_us)
        metrics.gauge("analysis.critical.segments").set(len(self.segments))
        for row in self.streams:
            prefix = f"analysis.stream.{row.stream}"
            metrics.gauge(f"{prefix}.busy_us").set(row.busy_us)
            metrics.gauge(f"{prefix}.stall_wait_us").set(row.stall_wait_us)
            metrics.gauge(f"{prefix}.stall_dispatch_us").set(row.stall_dispatch_us)
        hist = metrics.histogram("analysis.slack_us")
        for value in self.slack_us.values():
            hist.observe(value)

    def render(self, top: int = 10) -> str:
        lines = [
            f"epoch time           {self.total_time_us:12.2f} us",
            f"  on critical path:  kernels {self.critical_kernel_us:10.2f} us"
            f" | dispatch {self.critical_dispatch_us:8.2f} us"
            f" | unattributed {self.critical_gap_us:6.2f} us",
            "",
            f"top kernels by critical-path contribution (of {len(self.kernels)}):",
            f"  {'kernel':<32} {'kind':<12} {'count':>5} "
            f"{'critical us':>12} {'share':>7} {'slack us':>10}",
        ]
        for row in self.kernels[:top]:
            lines.append(
                f"  {row['name'][:32]:<32} {row['kind']:<12} {row['count']:>5} "
                f"{row['critical_us']:>12.2f} {row['share']:>6.1%} "
                f"{row['min_slack_us']:>10.2f}"
            )
        lines.append("")
        lines.append("per-stream attribution:")
        lines.append(
            f"  {'stream':>6} {'kernels':>8} {'busy us':>12} {'wait us':>10} "
            f"{'dispatch us':>12} {'idle us':>10} {'util':>6}"
        )
        for s in self.streams:
            lines.append(
                f"  {s.stream:>6} {s.kernels:>8} {s.busy_us:>12.2f} "
                f"{s.stall_wait_us:>10.2f} {s.stall_dispatch_us:>12.2f} "
                f"{s.idle_us:>10.2f} {s.utilization(self.total_time_us):>6.1%}"
            )
        return "\n".join(lines)


def _binding_predecessor(graph: TimelineGraph, node: TimelineNode, tol: float):
    """The constraint that equals ``node.start``: a wait producer, the
    same-stream FIFO predecessor, or the dispatch thread (issue time)."""
    waits = [graph.nodes[p] for p in graph.wait_producers.get(node.index, ())]
    waits = [p for p in waits if abs(p.end - node.start) <= tol]
    if waits:
        # deterministic tie-break: latest-ending, then lowest index
        waits.sort(key=lambda p: (-p.end, p.index))
        return waits[0], "wait"
    prev = graph.same_stream_prev(node.index)
    if prev is not None and abs(prev.end - node.start) <= tol:
        return prev, "stream"
    if abs(node.issue - node.start) <= tol:
        return None, "dispatch"
    # fell between constraints (rounded trace input): pick the closest
    # earlier GPU predecessor and surface the remainder as a gap segment
    all_cands = [graph.nodes[p] for p in graph.wait_producers.get(node.index, ())]
    if prev is not None:
        all_cands.append(prev)
    all_cands = [p for p in all_cands if p.end <= node.start + tol]
    if all_cands:
        all_cands.sort(key=lambda p: (-p.end, p.index))
        return all_cands[0], "gap"
    return None, "dispatch"


def analyze(graph: TimelineGraph) -> AnalysisReport:
    """Run the full attribution over one timeline."""
    total = graph.total_time_us
    tol = _TOL * max(1.0, total)
    segments: list[CriticalSegment] = []
    critical: list[int] = []

    if graph.nodes:
        # walk back from the last-finishing kernel
        cur = max(graph.nodes, key=lambda n: (n.end, n.index))
        # dispatch / sync tail after the last kernel finished
        if total - cur.end > tol:
            segments.append(CriticalSegment(SEG_DISPATCH, cur.end, total,
                                            name="sync/dispatch tail"))
        while True:
            critical.append(cur.index)
            segments.append(CriticalSegment(
                SEG_KERNEL, cur.start, cur.end, index=cur.index, name=cur.name))
            pred, via = _binding_predecessor(graph, cur, tol)
            segments[-1].via = via
            if pred is None:
                if cur.start > tol:
                    segments.append(CriticalSegment(
                        SEG_DISPATCH, 0.0, cur.start, name="dispatch"))
                break
            if via == "gap" and cur.start - pred.end > tol:
                segments.append(CriticalSegment(SEG_GAP, pred.end, cur.start,
                                                name="unattributed"))
            cur = pred
    elif total > 0:
        segments.append(CriticalSegment(SEG_DISPATCH, 0.0, total, name="dispatch"))
    segments.reverse()
    critical.reverse()

    # per-kernel-name contribution table
    contrib: dict[int, float] = {}
    for seg in segments:
        if seg.kind == SEG_KERNEL and seg.index is not None:
            contrib[seg.index] = contrib.get(seg.index, 0.0) + seg.duration
    slack = _slack(graph)
    by_name: dict[str, dict] = {}
    for node in graph.nodes:
        row = by_name.setdefault(node.name, {
            "name": node.name, "kind": node.kind, "count": 0,
            "busy_us": 0.0, "critical_us": 0.0,
            "min_slack_us": float("inf"),
        })
        row["count"] += 1
        row["busy_us"] += node.duration
        row["critical_us"] += contrib.get(node.index, 0.0)
        row["min_slack_us"] = min(row["min_slack_us"], slack.get(node.index, 0.0))
    kernels = sorted(by_name.values(),
                     key=lambda r: (-r["critical_us"], -r["busy_us"], r["name"]))
    for row in kernels:
        row["share"] = row["critical_us"] / total if total > 0 else 0.0
        if row["min_slack_us"] == float("inf"):
            row["min_slack_us"] = 0.0

    return AnalysisReport(
        total_time_us=total,
        cpu_time_us=graph.cpu_time_us,
        gpu_makespan_us=graph.gpu_makespan_us,
        segments=segments,
        kernels=kernels,
        streams=_stream_attribution(graph, tol),
        slack_us=slack,
        critical_records=critical,
        graph=graph,
    )


def _stream_attribution(graph: TimelineGraph, tol: float) -> list[StreamAttribution]:
    rows = []
    total = graph.total_time_us
    for stream in sorted(graph.stream_nodes):
        row = StreamAttribution(stream=stream)
        prev_end = 0.0
        for idx in graph.stream_nodes[stream]:
            node = graph.nodes[idx]
            gap = node.start - prev_end
            if gap > tol:
                waits = [graph.nodes[p]
                         for p in graph.wait_producers.get(idx, ())]
                if any(abs(p.end - node.start) <= tol for p in waits):
                    row.stall_wait_us += gap
                elif abs(node.issue - node.start) <= tol:
                    row.stall_dispatch_us += gap
                else:
                    row.idle_us += gap
            row.busy_us += node.duration
            row.kernels += 1
            prev_end = node.end
        row.idle_us += max(0.0, total - prev_end)
        rows.append(row)
    return rows


def _slack(graph: TimelineGraph) -> dict[int, float]:
    """Dependency-chain slack against the GPU makespan: how much a kernel
    could grow before the longest duration-chain through it exceeds the
    makespan.  Edges point index-forward, so one reverse sweep suffices."""
    makespan = graph.gpu_makespan_us
    consumers: dict[int, list[int]] = {}
    for node in graph.nodes:
        nxt = graph.same_stream_next(node.index)
        if nxt is not None:
            consumers.setdefault(node.index, []).append(nxt.index)
    for consumer, producers in graph.wait_producers.items():
        for p in producers:
            consumers.setdefault(p, []).append(consumer)
    downstream: dict[int, float] = {}
    for node in reversed(graph.nodes):
        best = 0.0
        for c in consumers.get(node.index, ()):
            best = max(best, graph.nodes[c].duration + downstream.get(c, 0.0))
        downstream[node.index] = best
    return {
        n.index: max(0.0, makespan - (n.end + downstream[n.index]))
        for n in graph.nodes
    }


def analyze_execution(result, lowered=None, device=None) -> AnalysisReport:
    """Convenience: build the graph from a live result and analyze it."""
    return analyze(TimelineGraph.from_execution(result, lowered, device))


def analyze_trace(doc: dict) -> AnalysisReport:
    """Convenience: analyze a previously exported Chrome trace document."""
    return analyze(TimelineGraph.from_chrome_trace(doc))
