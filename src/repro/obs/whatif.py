"""Daydream-style what-if projection over a recorded timeline.

Answers "what would the epoch time be if kernel K were X times faster /
used a different GEMM library / were removed?" by *replaying* the
recorded timeline through the dependency graph with modified durations --
no simulator re-run.  The replay reuses the exact start rule the
simulator applies (``start = max(issue, wait-producer ends, stream
FIFO)``) with issue times held fixed: dispatch is serialized CPU work
whose cost does not depend on how long kernels run.

Exactness: for a single-stream schedule at base clock the projection is
*exact* (the replay is the simulator's own recurrence).  With concurrent
streams the simulator additionally waterfills SM slots, so durations of
overlapping kernels shift; that contention drift is the documented error
source and is bounded in tests (``tests/obs/test_whatif.py`` pins a 5%
gate against actual re-measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.kernels import GemmLaunch
from .analysis import TimelineGraph


@dataclass
class WhatIfChange:
    """One hypothetical edit to the timeline."""

    kind: str                  # "scale" | "swap_library" | "remove"
    index: int                 # node index in the TimelineGraph
    name: str = ""
    old_duration_us: float = 0.0
    new_duration_us: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "index": self.index, "name": self.name,
            "old_duration_us": self.old_duration_us,
            "new_duration_us": self.new_duration_us, "detail": self.detail,
        }


@dataclass
class Projection:
    """Result of replaying the timeline with a set of changes."""

    baseline_total_us: float
    projected_total_us: float
    changes: list[WhatIfChange] = field(default_factory=list)
    #: node index -> projected (start, end)
    times: dict[int, tuple[float, float]] = field(default_factory=dict)

    @property
    def delta_us(self) -> float:
        return self.projected_total_us - self.baseline_total_us

    @property
    def speedup(self) -> float:
        if self.projected_total_us <= 0:
            return float("inf")
        return self.baseline_total_us / self.projected_total_us

    def to_dict(self) -> dict:
        return {
            "baseline_total_us": self.baseline_total_us,
            "projected_total_us": self.projected_total_us,
            "delta_us": self.delta_us,
            "speedup": round(self.speedup, 4),
            "changes": [c.to_dict() for c in self.changes],
        }

    def render(self) -> str:
        lines = [
            f"baseline  {self.baseline_total_us:12.2f} us",
            f"projected {self.projected_total_us:12.2f} us "
            f"(delta {self.delta_us:+.2f} us, {self.speedup:.3f}x)",
        ]
        for c in self.changes:
            lines.append(
                f"  {c.kind:<13} [{c.index}] {c.name}: "
                f"{c.old_duration_us:.2f} -> {c.new_duration_us:.2f} us"
                + (f" ({c.detail})" if c.detail else "")
            )
        return "\n".join(lines)


def project(graph: TimelineGraph, changes: list[WhatIfChange],
            issue_shift: dict[int, float] | None = None) -> Projection:
    """Replay the timeline with ``changes`` applied.

    ``issue_shift`` optionally moves a node's issue time (used by
    :func:`remove_kernel` to give back the launch overhead of a removed
    kernel to every later launch).
    """
    new_dur = {c.index: max(0.0, c.new_duration_us) for c in changes}
    shift = issue_shift or {}
    last_done: dict[int, float] = {}
    times: dict[int, tuple[float, float]] = {}
    for node in graph.nodes:
        start = node.issue + shift.get(node.index, 0.0)
        start = max(start, last_done.get(node.stream, 0.0))
        for p in graph.wait_producers.get(node.index, ()):
            start = max(start, times[p][1])
        end = start + new_dur.get(node.index, node.duration)
        times[node.index] = (start, end)
        last_done[node.stream] = end

    # the measured total is max(dispatch-thread finish, GPU makespan) plus
    # the final sync/barrier tail; the tail and the dispatch floor do not
    # depend on kernel durations, so carry them over unchanged
    base = max(graph.max_issue_us, graph.gpu_makespan_us)
    tail = max(0.0, graph.total_time_us - base)
    makespan = max((end for _s, end in times.values()), default=0.0)
    max_issue = max(
        (n.issue + shift.get(n.index, 0.0) for n in graph.nodes), default=0.0
    )
    projected = max(max_issue, makespan) + tail
    return Projection(
        baseline_total_us=graph.total_time_us,
        projected_total_us=projected,
        changes=list(changes),
        times=times,
    )


def scale_kernel(graph: TimelineGraph, index: int, factor: float) -> Projection:
    """Project the timeline with one kernel's duration scaled by ``factor``."""
    if factor < 0:
        raise ValueError("scale factor must be >= 0")
    node = graph.nodes[index]
    change = WhatIfChange(
        kind="scale", index=index, name=node.name,
        old_duration_us=node.duration,
        new_duration_us=node.duration * factor,
        detail=f"x{factor:g}",
    )
    return project(graph, [change])


def _solo_duration(node, device) -> float | None:
    if node.kernel is not None:
        return node.kernel.duration_us(device)
    args = node.args
    if all(k in args for k in ("m", "k", "n", "library")):
        return GemmLaunch(args["m"], args["k"], args["n"],
                          args["library"]).duration_us(device)
    return None


def swap_library(graph: TimelineGraph, index: int, library: str,
                 device) -> Projection:
    """Project moving one GEMM to another kernel library.

    The new duration is the *solo* (contention-free) duration of the
    replacement kernel plus the contention penalty baked into the
    recording (``recorded - old_solo``).  The simulator's waterfill
    contention adds interference proportional to the *competing* work in
    the overlap window -- an absolute cost that does not scale with the
    victim's own duration -- so the penalty carries over additively, not
    multiplicatively.  On a single-stream schedule the penalty is zero
    and the projection is exact.
    """
    node = graph.nodes[index]
    old_solo = _solo_duration(node, device)
    is_gemm = isinstance(node.kernel, GemmLaunch) or (
        node.kernel is None and node.kind == "gemm"
    )
    if not is_gemm or old_solo is None or old_solo <= 0:
        raise ValueError(f"node {index} ({node.name}) is not a projectable GEMM")
    if node.kernel is not None:
        new_kernel = GemmLaunch(node.kernel.m, node.kernel.k, node.kernel.n,
                                library, getattr(node.kernel, "node_ids", ()))
    else:
        args = node.args
        new_kernel = GemmLaunch(args["m"], args["k"], args["n"], library)
    new_solo = new_kernel.duration_us(device)
    stretch = max(0.0, node.duration - old_solo)
    change = WhatIfChange(
        kind="swap_library", index=index, name=node.name,
        old_duration_us=node.duration,
        new_duration_us=new_solo + stretch,
        detail=f"-> {library} (solo {old_solo:.2f} -> {new_solo:.2f} us)",
    )
    return project(graph, [change])


def swap_libraries(graph: TimelineGraph, swaps: dict[int, str],
                   device) -> Projection:
    """Project several library swaps at once (one combined replay)."""
    changes = []
    for index, library in sorted(swaps.items()):
        single = swap_library(graph, index, library, device)
        changes.extend(single.changes)
    return project(graph, changes)


def remove_kernel(graph: TimelineGraph, index: int, device=None) -> Projection:
    """Project deleting one kernel: zero duration, and (when the device is
    known) its launch overhead handed back to every later launch."""
    node = graph.nodes[index]
    change = WhatIfChange(
        kind="remove", index=index, name=node.name,
        old_duration_us=node.duration, new_duration_us=0.0,
        detail="removed",
    )
    shift = {}
    if device is not None:
        overhead = device.launch_overhead_us
        shift = {n.index: -overhead for n in graph.nodes if n.index > index}
    return project(graph, [change], issue_shift=shift)
