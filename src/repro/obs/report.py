"""Structured run reports: JSON-lines per-mini-batch records + summary.

Every exploration mini-batch becomes one machine-readable record (phase,
context key, assignment delta, measured time, best-so-far), so a run can
be replayed, diffed against another seed, or plotted as a convergence
curve without re-running anything.  The summary document bundles the
convergence curve, per-phase profile-index hit rates and (optionally) the
full serialized :class:`~repro.core.wirer.AstraReport`, following the
same versioned-JSON conventions as :mod:`repro.serialize`.

:data:`NULL_REPORTER` is the zero-cost disabled variant used when no
report was requested.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serialize -> wirer)
    from ..core.wirer import AstraReport

#: record kinds, in the order they appear in a run
KIND_EXPLORE = "explore"
KIND_COMPARE = "compare"
KIND_PRODUCTION = "production"
#: a schedule-validation failure surfaced by repro.check (validated mode)
KIND_VIOLATION = "violation"
#: an injected/surfaced fault or recovery action (see repro.faults)
KIND_FAULT = "fault"

#: record kinds that carry no mini-batch measurement and must never
#: contribute to the running best or the convergence curve
_EVENT_KINDS = (KIND_VIOLATION, KIND_FAULT)


@dataclass
class MiniBatchRecord:
    """One exploration mini-batch, as logged by the custom-wirer."""

    seq: int
    phase: str
    kind: str
    #: context-mangled prefix the measurements were indexed under
    context: tuple
    #: adaptive variables whose choice changed since the previous record
    assignment_delta: dict[str, str]
    time_us: float
    best_so_far_us: float

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "phase": self.phase,
            "kind": self.kind,
            "context": list(self.context),
            "assignment_delta": dict(self.assignment_delta),
            "time_us": self.time_us,
            "best_so_far_us": self.best_so_far_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MiniBatchRecord":
        return cls(
            seq=data["seq"],
            phase=data["phase"],
            kind=data["kind"],
            context=_untuple(data["context"]),
            assignment_delta=dict(data["assignment_delta"]),
            time_us=data["time_us"],
            best_so_far_us=data["best_so_far_us"],
        )


def _untuple(part):
    """Inverse of the list encoding JSON applies to tuples, at any depth
    (context keys nest: strategy forks, bucket ids, compare labels)."""
    if isinstance(part, list):
        return tuple(_untuple(item) for item in part)
    return part


@dataclass
class RunReporter:
    """Collects per-mini-batch records during one optimization run."""

    enabled: bool = True
    records: list[MiniBatchRecord] = field(default_factory=list)

    def minibatch(
        self,
        phase: str,
        time_us: float,
        context: tuple = (),
        assignment_delta: dict[str, Any] | None = None,
        kind: str = KIND_EXPLORE,
    ) -> None:
        best = min(self.best_so_far(), time_us)
        self.records.append(MiniBatchRecord(
            seq=len(self.records),
            phase=phase,
            kind=kind,
            context=tuple(context),
            # repr keeps arbitrary choice objects JSON-safe, matching the
            # assignment encoding in serialize.report_to_dict
            assignment_delta={k: repr(v) for k, v in (assignment_delta or {}).items()},
            time_us=time_us,
            best_so_far_us=best,
        ))

    def violation(
        self,
        phase: str,
        kind: str,
        message: str,
        context: tuple = (),
    ) -> None:
        """One schedule-correctness violation (see :mod:`repro.check`).

        Violations carry no mini-batch time -- the schedule was rejected
        before (or instead of) execution -- so ``time_us`` is zero and
        the violation kind travels in ``assignment_delta``.
        """
        best = self.best_so_far()
        self.records.append(MiniBatchRecord(
            seq=len(self.records),
            phase=phase,
            kind=KIND_VIOLATION,
            context=tuple(context),
            assignment_delta={"violation": kind, "message": message},
            time_us=0.0,
            best_so_far_us=best if not math.isinf(best) else 0.0,
        ))

    def fault(
        self,
        phase: str,
        kind: str,
        message: str,
        context: tuple = (),
    ) -> None:
        """One fault surfaced to (or recovery action taken by) the wirer.

        Like violations, fault records carry no mini-batch time; the
        fault class and message travel in ``assignment_delta``.
        """
        best = self.best_so_far()
        self.records.append(MiniBatchRecord(
            seq=len(self.records),
            phase=phase,
            kind=KIND_FAULT,
            context=tuple(context),
            assignment_delta={"fault": kind, "message": message},
            time_us=0.0,
            best_so_far_us=best if not math.isinf(best) else 0.0,
        ))

    def violations(self) -> list[MiniBatchRecord]:
        return [r for r in self.records if r.kind == KIND_VIOLATION]

    def faults(self) -> list[MiniBatchRecord]:
        return [r for r in self.records if r.kind == KIND_FAULT]

    def best_so_far(self) -> float:
        # violation/fault records carry a placeholder 0.0 when nothing
        # has run yet; they must not reset the running best
        for record in reversed(self.records):
            if record.kind not in _EVENT_KINDS:
                return record.best_so_far_us
        return math.inf

    def convergence_curve(self) -> list[tuple[int, float]]:
        """(seq, best-so-far end-to-end time) for every logged mini-batch."""
        return [
            (r.seq, r.best_so_far_us)
            for r in self.records
            if r.kind not in _EVENT_KINDS
        ]

    # -- serialization ------------------------------------------------------

    def jsonl(self) -> str:
        """One JSON object per line, one line per mini-batch."""
        return "\n".join(json.dumps(r.to_dict()) for r in self.records)

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.jsonl())
            if self.records:
                fh.write("\n")

    @classmethod
    def from_jsonl(cls, text: str) -> "RunReporter":
        reporter = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                reporter.records.append(MiniBatchRecord.from_dict(json.loads(line)))
        return reporter

    def summary(
        self,
        report: "AstraReport | None" = None,
        native_time_us: float | None = None,
        metrics=None,
    ) -> dict:
        """Machine-readable summary of the run.

        Includes the convergence curve and, when an ``AstraReport`` is
        supplied, per-phase profile-index hit rates and the fully
        serialized report (via :mod:`repro.serialize`).
        """
        from .. import serialize  # deferred: serialize imports core.wirer

        doc: dict = {
            "version": serialize.FORMAT_VERSION,
            "minibatches": len(self.records),
            "convergence_curve": [[s, v] for s, v in self.convergence_curve()],
            "records": [r.to_dict() for r in self.records],
        }
        if native_time_us is not None:
            doc["native_time_us"] = native_time_us
        fault_records = self.faults()
        if fault_records:
            by_kind: dict[str, int] = {}
            for record in fault_records:
                fk = record.assignment_delta.get("fault", "unknown")
                by_kind[fk] = by_kind.get(fk, 0) + 1
            doc["faults"] = by_kind
        if report is not None:
            doc["astra"] = serialize.report_to_dict(report)
            if getattr(report, "memory", None):
                doc["memory"] = dict(report.memory)
            if getattr(report, "degraded", False):
                doc["degraded"] = True
            doc["phases"] = [
                {
                    "name": p.name,
                    "minibatches": p.minibatches,
                    "index_hits": p.index_hits,
                    "index_hit_rate": p.index_hit_rate,
                }
                for p in report.phases
            ]
            if native_time_us is not None and report.best_time_us > 0:
                doc["speedup_over_native"] = native_time_us / report.best_time_us
        if metrics is not None:
            doc["metrics"] = metrics.snapshot()
        return doc


class NullReporter(RunReporter):
    """Disabled reporter: records nothing, costs nothing."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def minibatch(self, phase, time_us, context=(), assignment_delta=None,
                  kind=KIND_EXPLORE) -> None:
        pass

    def violation(self, phase, kind, message, context=()) -> None:
        pass

    def fault(self, phase, kind, message, context=()) -> None:
        pass


#: shared disabled reporter -- the default in the custom-wirer
NULL_REPORTER = NullReporter()
