"""Observability: tracing, metrics, and structured run reports.

The subsystem that turns every benchmark run into an inspectable
artifact (see ``docs/observability.md``):

* :mod:`repro.obs.trace` -- host-side span recording and a Chrome
  trace-event (Perfetto-compatible) exporter for executed mini-batches;
* :mod:`repro.obs.metrics` -- counter/gauge/histogram/series registry
  fed by the custom-wirer and the profile index;
* :mod:`repro.obs.report` -- JSON-lines per-mini-batch run reports plus
  a machine-readable summary document.

Everything is zero-cost when disabled: the default hooks are null
objects, and the trace exporter is a pure function of data the simulator
already produces -- enabling observability never changes what gets
dispatched to the (simulated) GPU.
"""

from .analysis import (
    AnalysisReport,
    TimelineGraph,
    analyze,
    analyze_execution,
    analyze_trace,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
)
from .provenance import (
    NULL_PROVENANCE,
    ProvenanceLog,
    VariableDecision,
)
from .report import (
    KIND_COMPARE,
    KIND_EXPLORE,
    KIND_FAULT,
    KIND_PRODUCTION,
    KIND_VIOLATION,
    NULL_REPORTER,
    MiniBatchRecord,
    NullReporter,
    RunReporter,
)
from .trace import (
    NULL_TRACER,
    Tracer,
    chrome_trace,
    kernel_args,
    merge_host_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .whatif import (
    Projection,
    WhatIfChange,
    project,
    remove_kernel,
    scale_kernel,
    swap_libraries,
    swap_library,
)

__all__ = [
    "AnalysisReport", "TimelineGraph",
    "analyze", "analyze_execution", "analyze_trace",
    "Counter", "Gauge", "Histogram", "Series",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "MiniBatchRecord", "RunReporter", "NullReporter", "NULL_REPORTER",
    "KIND_EXPLORE", "KIND_COMPARE", "KIND_PRODUCTION",
    "KIND_VIOLATION", "KIND_FAULT",
    "ProvenanceLog", "VariableDecision", "NULL_PROVENANCE",
    "Projection", "WhatIfChange",
    "project", "remove_kernel", "scale_kernel", "swap_libraries", "swap_library",
    "Tracer", "NULL_TRACER",
    "chrome_trace", "kernel_args", "merge_host_trace",
    "validate_chrome_trace", "write_chrome_trace",
]
