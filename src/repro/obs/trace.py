"""Span/instant recording and Chrome trace-event export.

Two halves:

* :class:`Tracer` -- a host-side span/instant/counter recorder for the
  *optimizer itself* (which exploration phase ran when, in wall-clock
  time).  :data:`NULL_TRACER` is the zero-cost disabled variant.
* :func:`chrome_trace` -- renders one executed mini-batch
  (:class:`~repro.gpu.streams.ExecutionResult`, in simulated microseconds)
  as a Chrome trace-event document openable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: one track per
  simulated stream with a slice per kernel (args: kind, flops, library,
  waves, occupancy, unit id), a CPU-dispatch track showing the serialized
  launch overheads the paper's fusion optimization targets, and flow
  arrows for every cross-stream wait-event edge.

The exporter is a pure function of data the simulator already produces --
enabling it launches no extra kernels and records no extra events, so
traced and untraced executions are cycle-identical.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager, nullcontext

from ..gpu.device import GPUSpec
from ..gpu.kernels import GemmLaunch, Kernel
from ..gpu.streams import ExecutionResult, HostComputeItem, LaunchItem

#: trace-event process ids: the dispatch thread and the simulated device
PID_CPU = 0
PID_GPU = 1
#: host-side optimizer spans when merged into an execution trace (the
#: execution document already owns PID_CPU for the dispatch thread)
PID_HOST = 2

_VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "s", "f", "t"}


# ---------------------------------------------------------------------------
# host-side tracer (spans over the optimizer's own phases)
# ---------------------------------------------------------------------------


class Tracer:
    """Records host wall-clock spans/instants/counters as trace events."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._events: list[dict] = []
        #: worker pid -> tid on this tracer's process (tid 0 = main thread)
        self._worker_tids: dict[int, int] = {}

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def now_us(self) -> float:
        """Current position on this tracer's timeline, in microseconds."""
        return self._now_us()

    def worker_track(self, pid: int) -> int:
        """The tid assigned to a parallel worker process (allocated on
        first sight; rendered as a ``worker <pid>`` thread)."""
        tid = self._worker_tids.get(pid)
        if tid is None:
            tid = len(self._worker_tids) + 1
            self._worker_tids[pid] = tid
        return tid

    def absorb_worker_spans(self, spans, pid: int, base_us: float) -> None:
        """Merge spans recorded in a worker process onto this timeline.

        Worker spans carry timestamps relative to their own shard start;
        ``base_us`` places them on the parent timeline.  Each worker pid
        gets its own tid so concurrent shards render as parallel tracks.
        """
        tid = self.worker_track(pid)
        for span in spans:
            event = dict(span)
            event["pid"] = PID_CPU
            event["tid"] = tid
            event["ts"] = base_us + float(event.get("ts", 0.0))
            self._events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "astra", **args):
        start = self._now_us()
        try:
            yield self
        finally:
            self._events.append({
                "ph": "X", "pid": PID_CPU, "tid": 0, "name": name, "cat": cat,
                "ts": start, "dur": self._now_us() - start,
                "args": args,
            })

    def instant(self, name: str, cat: str = "astra", **args) -> None:
        self._events.append({
            "ph": "i", "s": "t", "pid": PID_CPU, "tid": 0, "name": name,
            "cat": cat, "ts": self._now_us(), "args": args,
        })

    def counter(self, name: str, value: float, cat: str = "astra") -> None:
        self._events.append({
            "ph": "C", "pid": PID_CPU, "tid": 0, "name": name, "cat": cat,
            "ts": self._now_us(), "args": {"value": value},
        })

    def chrome(self) -> dict:
        events = [_metadata(PID_CPU, 0, "optimizer (host)", "phases")]
        for pid, tid in sorted(self._worker_tids.items(), key=lambda kv: kv[1]):
            events.append(_metadata(PID_CPU, tid, "", f"worker {pid}"))
        events.extend(self._events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class _NullTracer:
    """Disabled tracer: span yields nothing, everything else is a no-op."""

    enabled = False

    def span(self, name: str, cat: str = "astra", **args):
        return nullcontext()

    def instant(self, name: str, cat: str = "astra", **args) -> None:
        pass

    def counter(self, name: str, value: float, cat: str = "astra") -> None:
        pass

    def now_us(self) -> float:
        return 0.0

    def worker_track(self, pid: int) -> int:
        return 0

    def absorb_worker_spans(self, spans, pid: int, base_us: float) -> None:
        pass

    def chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: shared disabled tracer -- the default everywhere instrumentation hooks in
NULL_TRACER = _NullTracer()


# ---------------------------------------------------------------------------
# mini-batch execution -> Chrome trace-event document
# ---------------------------------------------------------------------------


def _metadata(pid: int, tid: int | None, process: str, thread: str | None) -> dict:
    if tid is None:
        return {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": process}}
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": thread}}


def kernel_args(kernel: Kernel, device: GPUSpec | None = None) -> dict:
    """Per-slice args: everything the profiler knows about the launch."""
    args: dict = {"kind": kernel.kind, "flops": kernel.flops()}
    node_ids = getattr(kernel, "node_ids", ())
    if node_ids:
        args["nodes"] = len(node_ids)
    if isinstance(kernel, GemmLaunch):
        args.update(m=kernel.m, k=kernel.k, n=kernel.n, library=kernel.library)
        if device is not None:
            plan = kernel.impl.plan(kernel.m, kernel.k, kernel.n, device)
            args["tiles"] = plan.tiles
            args["split_k"] = plan.split_k
            args["waves"] = math.ceil(plan.tiles / device.sm_slots)
            args["occupancy"] = round(min(1.0, plan.tiles / device.sm_slots), 4)
    elif kernel.kind == "elementwise":
        args.update(num_elements=kernel.num_elements, fused_ops=kernel.fused_ops)
    elif kernel.kind in ("copy", "transfer"):
        args["bytes_moved"] = kernel.bytes_moved
        if kernel.kind == "transfer":
            args["direction"] = kernel.direction
    elif kernel.kind == "compound":
        args["efficiency"] = kernel.efficiency
    if device is not None and kernel.parallelism(device) > 0:
        args.setdefault(
            "occupancy",
            round(min(1.0, kernel.parallelism(device) / device.sm_slots), 4),
        )
    return args


def chrome_trace(
    result: ExecutionResult,
    lowered=None,
    device: GPUSpec | None = None,
    label: str = "repro",
) -> dict:
    """Render an :class:`ExecutionResult` as a Chrome trace-event document.

    ``lowered`` (a :class:`~repro.runtime.dispatcher.LoweredSchedule`)
    supplies per-record unit ids and the wait/record edges used to draw
    cross-stream flow arrows; without it the document still contains every
    kernel slice and the CPU-dispatch track.
    """
    events: list[dict] = [
        _metadata(PID_CPU, None, f"{label}: CPU dispatch", None),
        _metadata(PID_CPU, 0, "", "dispatch thread"),
        _metadata(PID_GPU, None, f"{label}: GPU (simulated)", None),
    ]
    for stream in result.stream_ids():
        events.append(_metadata(PID_GPU, stream, "", f"stream {stream}"))

    record_units = getattr(lowered, "record_units", None) if lowered else None
    launch_us = device.launch_overhead_us if device is not None else 0.0

    for i, rec in enumerate(result.records):
        args = kernel_args(rec.kernel, device)
        args["stream"] = rec.stream_id
        if record_units is not None and i < len(record_units):
            args["unit"] = record_units[i]
        if rec.start_time >= 0:
            events.append({
                "ph": "X", "pid": PID_GPU, "tid": rec.stream_id,
                "name": rec.kernel.name, "cat": rec.kind,
                "ts": rec.start_time, "dur": max(0.0, rec.duration),
                "args": args,
            })
        # launch overhead on the serialized dispatch thread
        events.append({
            "ph": "X", "pid": PID_CPU, "tid": 0,
            "name": f"launch {rec.kernel.name}", "cat": "dispatch",
            "ts": max(0.0, rec.issue_time - launch_us), "dur": launch_us,
            "args": {"stream": rec.stream_id, "kind": rec.kind},
        })

    events.extend(_flow_events(result, lowered))
    events.extend(_host_events(lowered))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.trace",
            "total_time_us": result.total_time_us,
            "cpu_time_us": result.cpu_time_us,
            "num_kernels": len(result.records),
            "num_streams": len(result.stream_ids()),
        },
    }


def _flow_events(result: ExecutionResult, lowered) -> list[dict]:
    """Flow arrows for every cross-stream wait-event edge in the schedule."""
    if lowered is None:
        return []
    # the k-th LaunchItem in dispatch order produced result.records[k]
    launches = [item for item in lowered.items if isinstance(item, LaunchItem)]
    if len(launches) != len(result.records):
        return []
    recorded_by = {
        item.record: idx for idx, item in enumerate(launches)
        if item.record is not None
    }
    events: list[dict] = []
    flow_id = 0
    for idx, item in enumerate(launches):
        for ev in item.waits:
            src = recorded_by.get(ev)
            if src is None:
                continue
            producer, consumer = result.records[src], result.records[idx]
            if producer.stream_id == consumer.stream_id:
                continue
            if producer.start_time < 0 or consumer.start_time < 0:
                continue
            common = {"cat": "sync", "name": str(ev), "id": flow_id, "pid": PID_GPU}
            events.append({**common, "ph": "s", "tid": producer.stream_id,
                           "ts": producer.end_time})
            events.append({**common, "ph": "f", "bp": "e",
                           "tid": consumer.stream_id, "ts": consumer.start_time})
            flow_id += 1
    return events


def _host_events(lowered) -> list[dict]:
    """Instants marking host-side compute stalls (their exact position on
    the dispatch timeline is only known to the simulator; the instants
    record presence and duration for inspection)."""
    if lowered is None:
        return []
    events = []
    for item in lowered.items:
        if isinstance(item, HostComputeItem):
            events.append({
                "ph": "i", "s": "p", "pid": PID_CPU, "tid": 0,
                "name": f"host:{item.label}", "cat": "host",
                "ts": 0.0, "args": {"duration_us": item.duration_us},
            })
    return events


#: first process id of the fleet-device tracks in a fleet timeline
PID_FLEET = 10


def fleet_trace(report) -> dict:
    """Render a fleet search winner as a Chrome trace-event document.

    One process track per fleet device carrying the winner's work on it
    (replica mini-batches for a data strategy, per-micro-batch stage
    beats for a pipeline), plus a ``fabric`` track carrying the exposed
    communication (the allreduce tail, or the stage handoffs).  Times
    are the simulated step's microseconds -- the same quantities
    ``repro fleet`` prints, drawn on a timeline.
    """
    detail = report.winner_detail
    events: list[dict] = []
    fabric_pid = PID_FLEET
    events.append(_metadata(fabric_pid, None, "fleet: fabric", None))
    events.append(_metadata(fabric_pid, 0, "", "interconnect"))

    lanes = detail.get("replicas") or detail.get("stages") or []
    for n, lane in enumerate(lanes):
        pid = PID_FLEET + 1 + n
        events.append(_metadata(
            pid, None,
            f"fleet: {lane['device']} ({lane['device_class']})", None,
        ))
        events.append(_metadata(pid, 0, "", "compute"))

    if detail.get("kind") == "data":
        for n, rep in enumerate(detail["replicas"]):
            events.append({
                "ph": "X", "pid": PID_FLEET + 1 + n, "tid": 0,
                "name": f"replica shard={rep['shard']}", "cat": "fleet",
                "ts": 0.0, "dur": max(0.0, rep["compute_us"]),
                "args": {"device_class": rep["device_class"],
                         "shard": rep["shard"]},
            })
        if detail.get("exposed_comm_us", 0.0) > 0.0:
            events.append({
                "ph": "X", "pid": fabric_pid, "tid": 0,
                "name": "allreduce (exposed)", "cat": "comm",
                "ts": detail["beat_us"], "dur": detail["exposed_comm_us"],
                "args": {"allreduce_us": detail["allreduce_us"]},
            })
    elif detail.get("kind") == "pipeline":
        beat = detail["beat_us"]
        micro = report.winner.microbatches
        for m in range(micro):
            for s, stage in enumerate(detail["stages"]):
                events.append({
                    "ph": "X", "pid": PID_FLEET + 1 + s, "tid": 0,
                    "name": f"micro {m} stage {s}", "cat": "fleet",
                    "ts": (m + s) * beat,
                    "dur": max(0.0, stage["compute_us"]),
                    "args": {"device_class": stage["device_class"],
                             "scopes": len(stage["scopes"])},
                })
                if s + 1 < len(detail["stages"]) and detail["transfer_us"] > 0:
                    events.append({
                        "ph": "X", "pid": fabric_pid, "tid": 0,
                        "name": f"handoff micro {m} stage {s}->{s + 1}",
                        "cat": "comm",
                        "ts": (m + s) * beat + stage["compute_us"],
                        "dur": detail["transfer_us"],
                        "args": {"boundary_bytes": detail["boundary_bytes"]},
                    })
    events.append({
        "ph": "i", "s": "g", "pid": fabric_pid, "tid": 0,
        "name": f"winner: {report.winner.label}", "cat": "fleet",
        "ts": 0.0,
        "args": {"per_sample_us": report.winner_per_sample_us,
                 "step_us": report.winner_step_us},
    })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.trace.fleet",
            "fleet": report.fleet,
            "strategy": report.winner.label,
            "step_us": report.winner_step_us,
        },
    }


def merge_host_trace(doc: dict, host_doc: dict, label: str = "optimizer") -> dict:
    """Merge a :class:`Tracer` document (optimizer phases + worker spans)
    into an execution trace document.

    The execution document owns PID_CPU (dispatch thread) and PID_GPU
    (streams); host events are re-homed to :data:`PID_HOST` so both
    timelines render side by side without colliding tracks.  Returns
    ``doc`` mutated in place.
    """
    events = doc.setdefault("traceEvents", [])
    events.append(_metadata(PID_HOST, None, f"{label} (host)", None))
    for ev in host_doc.get("traceEvents", ()):
        merged = dict(ev)
        merged["pid"] = PID_HOST
        events.append(merged)
    return doc


def write_chrome_trace(path, result: ExecutionResult, lowered=None,
                       device: GPUSpec | None = None, label: str = "repro") -> dict:
    """Export and write a ``.trace.json``; returns the document."""
    doc = chrome_trace(result, lowered=lowered, device=device, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict) -> dict:
    """Validate a document against the Chrome trace-event schema subset we
    emit; raises :class:`ValueError` on the first violation.

    Returns a summary: event count and the set of (pid, tid) tracks.
    Used by tests and the CI trace-smoke step.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    tracks: set[tuple[int, int]] = set()
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {n} is not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {n} has invalid phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(f"event {n} missing integer {field!r}")
        if "name" not in ev:
            raise ValueError(f"event {n} missing 'name'")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {n} has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {n} has invalid dur {dur!r}")
            tracks.add((ev["pid"], ev["tid"]))
        if ph in ("s", "f") and "id" not in ev:
            raise ValueError(f"flow event {n} missing 'id'")
    return {"events": len(events), "tracks": sorted(tracks)}
