"""Lightweight counter/gauge/histogram/series registry.

The observability counterpart of the profile index: where the index stores
*measurements that drive adaptation*, the registry stores *metrics that
describe the adaptation itself* -- configs explored, index hits vs misses
per phase, per-phase mini-batch time distributions, and the convergence
curve of the best-so-far end-to-end time.

Zero-cost-when-disabled: instrumented code holds a registry reference and
calls it unconditionally; :data:`NULL_REGISTRY` is a null-object registry
whose instruments do nothing, so production runs pay only an attribute
lookup and an empty method call -- no allocation, no branching on flags,
and (critically) no change to what gets dispatched to the simulated GPU.
"""

from __future__ import annotations

import json
import math


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution: count/sum/min/max plus power-of-two buckets.

    Buckets are keyed by the upper bound ``2**i`` (in the observed unit);
    the layout is fixed so histograms from different runs merge trivially.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        bound = 2.0 ** math.ceil(math.log2(value)) if value > 0 else 0.0
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-th percentile (``0 < q <= 100``) from the
        power-of-two buckets: find the bucket holding the target rank and
        interpolate linearly across its ``(bound/2, bound]`` range,
        clamped to the observed min/max (exact at the distribution tails,
        within a factor-of-two bucket elsewhere)."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile q must be in (0, 100], got {q!r}")
        if self.count == 0:
            return None
        target = q / 100.0 * self.count
        cumulative = 0
        for bound in sorted(self.buckets):
            in_bucket = self.buckets[bound]
            if cumulative + in_bucket >= target:
                lo = bound / 2.0 if bound > 0 else 0.0
                fraction = (target - cumulative) / in_bucket
                value = lo + fraction * (bound - lo)
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max

    def summary(self) -> dict:
        """The serving-latency view: p50/p90/p99."""
        return {f"p{q}": self.percentile(q) for q in (50, 90, 99)}

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            **self.summary(),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Series:
    """Append-only (step, value) sequence -- e.g. the convergence curve of
    the best-so-far end-to-end mini-batch time over exploration steps."""

    __slots__ = ("name", "points")

    def __init__(self, name: str):
        self.name = name
        self.points: list[tuple[int, float]] = []

    def append(self, value: float, step: int | None = None) -> None:
        if step is None:
            step = self.points[-1][0] + 1 if self.points else 0
        self.points.append((step, float(value)))

    @property
    def last(self) -> float | None:
        return self.points[-1][1] if self.points else None

    def snapshot(self) -> dict:
        return {"type": "series", "points": [[s, v] for s, v in self.points]}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram, "series": Series}


class MetricsRegistry:
    """Name-keyed store of instruments; get-or-create per name."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict:
        """Plain-data dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps({"version": 1, "metrics": self.snapshot()}, **kwargs)


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    points: list = []

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float, step: int | None = None) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every lookup returns the shared no-op instrument."""

    enabled = False

    def _get(self, name: str, cls):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}


#: shared disabled registry -- the default everywhere instrumentation hooks in
NULL_REGISTRY = NullRegistry()
