"""Exploration provenance: the decision history behind a wired schedule.

The wirer picks every adaptive variable's winner from first-writer-wins
profile-index measurements; once `finalize` has run, the report only says
*what* won.  A :class:`ProvenanceLog` records *why*: per variable, the
candidates considered (post-prune), the decisive measurement for each
candidate (exactly the value the index merged), FK-prune verdicts with
their cost-model estimates, quarantine events, and the compare-phase
numbers.  ``repro explain`` renders it as "winner vs runner-up, per
variable, with the measurements that decided it".

Determinism: events are recorded at the same call sites the serial loop
and the parallel merge (`_merge_wave`) share, in canonical order, with no
wall-clock timestamps -- so a serial run and a ``--workers N`` run of the
same exploration produce bit-identical logs.  This is asserted in tests.

Everything is zero-cost when disabled: :data:`NULL_PROVENANCE` is the
null-object default wherever the hooks live.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _quarantine_sentinel() -> float:
    # deferred: repro.core sits above obs in the layering
    from ..core.measurement import QUARANTINED_US
    return QUARANTINED_US


@dataclass
class VariableDecision:
    """Everything recorded about one adaptive variable in one context."""

    name: str
    context: tuple
    candidates: list = field(default_factory=list)
    #: choice -> decisive measurement (first write wins, like the index)
    measurements: dict = field(default_factory=dict)
    #: (choice, cost-model estimate) pairs removed by FK pruning
    pruned: list = field(default_factory=list)
    #: (choice, predicted us) pairs removed by the learned ranker
    model_pruned: list = field(default_factory=list)
    #: choices written as quarantined sentinels
    quarantined: list = field(default_factory=list)

    def ranked(self) -> list[tuple[object, float]]:
        """(choice, value) pairs in decision order: exactly the iteration
        ``AdaptiveVariable.finalize`` performs (choice order, strict <,
        first minimum wins), so index 0 is the winner."""
        measured = [(c, self.measurements[c]) for c in self.candidates
                    if c in self.measurements]
        best: list[tuple[object, float]] = []
        for choice, value in measured:
            if not best or value < best[0][1]:
                best.insert(0, (choice, value))
            else:
                best.append((choice, value))
        # keep winner at 0, remaining sorted by value for readability
        return best[:1] + sorted(best[1:], key=lambda cv: (cv[1], str(cv[0])))

    @property
    def winner(self):
        ranked = self.ranked()
        return ranked[0][0] if ranked else None

    @property
    def winner_us(self):
        ranked = self.ranked()
        return ranked[0][1] if ranked else None

    @property
    def runner_up(self):
        ranked = self.ranked()
        return ranked[1][0] if len(ranked) > 1 else None

    @property
    def runner_up_us(self):
        ranked = self.ranked()
        return ranked[1][1] if len(ranked) > 1 else None

    @property
    def margin_us(self):
        ranked = self.ranked()
        if len(ranked) < 2:
            return None
        return ranked[1][1] - ranked[0][1]


class ProvenanceLog:
    """Append-only, queryable record of exploration decisions."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._decisions: dict[tuple, VariableDecision] = {}
        self._seen: set = set()

    # -- recording hooks (called by the wirer) ------------------------------

    def _decision(self, context: tuple, name: str) -> VariableDecision:
        key = (context, name)
        decision = self._decisions.get(key)
        if decision is None:
            decision = VariableDecision(name=name, context=context)
            self._decisions[key] = decision
        return decision

    def candidates(self, context: tuple, name: str, choices) -> None:
        """The candidate list a variable entered measurement with
        (post-prune); recorded once per (context, variable)."""
        decision = self._decision(context, name)
        if decision.candidates:
            return
        decision.candidates = list(choices)
        self.events.append({"event": "candidates", "context": context,
                            "name": name, "choices": list(choices)})

    def measured(self, context: tuple, name: str, choice, value: float) -> None:
        """The decisive (first-merged) measurement for one candidate."""
        key = (context, name, choice)
        if key in self._seen:
            return
        self._seen.add(key)
        self._decision(context, name).measurements[choice] = value
        self.events.append({"event": "measure", "context": context,
                            "name": name, "choice": choice, "value": value})

    def pruned(self, context: tuple, name: str, choice,
               estimate_us: float | None = None) -> None:
        self._decision(context, name).pruned.append((choice, estimate_us))
        self.events.append({"event": "prune", "context": context,
                            "name": name, "choice": choice,
                            "estimate_us": estimate_us})

    def model_pruned(self, context: tuple, name: str, choice,
                     predicted_us: float | None = None) -> None:
        """A candidate removed by the learned ranker (docs/learning.md),
        with the model prediction that justified the cut."""
        self._decision(context, name).model_pruned.append(
            (choice, predicted_us)
        )
        self.events.append({"event": "model_prune", "context": context,
                            "name": name, "choice": choice,
                            "predicted_us": predicted_us})

    def quarantined(self, context: tuple, name: str, choice) -> None:
        decision = self._decision(context, name)
        decision.quarantined.append(choice)
        decision.measurements.setdefault(choice, _quarantine_sentinel())
        self.events.append({"event": "quarantine", "context": context,
                            "name": name, "choice": choice})

    def compared(self, context: tuple, label: str, value: float,
                 cached: bool = False) -> None:
        """An end-to-end compare-phase measurement (fk vs streams)."""
        self.events.append({"event": "compare", "context": context,
                            "label": label, "value": value, "cached": cached})

    def warm_seeded(self, source: str, entries: int,
                    digest: str | None = None) -> None:
        """Profile-index entries seeded from a store / serve daemon
        before exploration began (see docs/serving.md).  Recorded ahead
        of every exploration event, so warm and cold runs of the same
        job stay distinguishable in the log."""
        self.events.append({"event": "warm", "source": source,
                            "entries": entries, "digest": digest})

    def warm_events(self) -> list[dict]:
        return [e for e in self.events if e["event"] == "warm"]

    # -- queries ------------------------------------------------------------

    def decisions(self) -> list[VariableDecision]:
        return list(self._decisions.values())

    def decision(self, name: str, context: tuple | None = None):
        for (ctx, var_name), decision in self._decisions.items():
            if var_name == name and (context is None or ctx == context):
                return decision
        return None

    def compares(self) -> list[dict]:
        return [e for e in self.events if e["event"] == "compare"]

    def decisive(self) -> dict:
        """Per-variable winner/runner-up with the measurements that decided
        it -- the payload the bit-identity acceptance test compares."""
        out = {}
        for decision in self.decisions():
            out[decision.name] = {
                "context": decision.context,
                "winner": decision.winner,
                "winner_us": decision.winner_us,
                "runner_up": decision.runner_up,
                "runner_up_us": decision.runner_up_us,
            }
        return out

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"version": 1, "events": list(self.events)}

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceLog":
        """Rebuild by replaying events; tuples survive the JSON round-trip
        via :func:`~repro.core.profile_index.untuple`."""
        from ..core.profile_index import untuple

        log = cls()
        for raw in data.get("events", ()):
            ev = raw["event"]
            ctx = untuple(raw.get("context"))
            if ev == "candidates":
                log.candidates(ctx, raw["name"],
                               [untuple(c) for c in raw["choices"]])
            elif ev == "measure":
                log.measured(ctx, raw["name"], untuple(raw["choice"]),
                             raw["value"])
            elif ev == "prune":
                log.pruned(ctx, raw["name"], untuple(raw["choice"]),
                           raw.get("estimate_us"))
            elif ev == "model_prune":
                log.model_pruned(ctx, raw["name"], untuple(raw["choice"]),
                                 raw.get("predicted_us"))
            elif ev == "quarantine":
                log.quarantined(ctx, raw["name"], untuple(raw["choice"]))
            elif ev == "compare":
                log.compared(ctx, raw["label"], raw["value"],
                             raw.get("cached", False))
            elif ev == "warm":
                log.warm_seeded(raw.get("source"), raw.get("entries", 0),
                                raw.get("digest"))
        return log

    # -- rendering ----------------------------------------------------------

    def render(self, assignment: dict | None = None, top: int = 4) -> str:
        """The ``repro explain`` view: per variable, winner vs runner-up
        and the measurements that decided it."""
        quarantined_us = _quarantine_sentinel()
        lines = []
        for ev in self.warm_events():
            digest = ev.get("digest")
            suffix = f" (job {digest[:12]})" if digest else ""
            lines.append(f"warm-start: {ev['entries']} entries seeded from "
                         f"{ev['source']}{suffix}")
        if not self._decisions:
            lines.append("(no exploration decisions recorded)")
        for decision in self.decisions():
            ranked = decision.ranked()
            marker = ""
            if assignment is not None and decision.name in assignment:
                final = assignment[decision.name]
                marker = "" if final == decision.winner else \
                    f"  [!] final assignment {final!r} differs"
            lines.append(f"{decision.name}{marker}")
            if not ranked:
                lines.append("    (no measurements recorded)")
            for rank, (choice, value) in enumerate(ranked[:top]):
                tag = "winner    " if rank == 0 else \
                      "runner-up " if rank == 1 else "          "
                quarantined = " (quarantined)" if value >= quarantined_us else ""
                lines.append(f"    {tag}{_fmt_choice(choice):<28} "
                             f"{value:>12.3f} us{quarantined}")
            if len(ranked) > top:
                lines.append(f"    ... {len(ranked) - top} more measured")
            if decision.margin_us is not None and decision.runner_up_us is not None \
                    and decision.runner_up_us < quarantined_us:
                lines.append(f"    margin    {decision.margin_us:+.3f} us")
            for choice, estimate in decision.pruned:
                est = f" (est {estimate:.2f} us)" if estimate is not None else ""
                lines.append(f"    pruned    {_fmt_choice(choice):<28}{est}")
            for choice, predicted in decision.model_pruned:
                est = (f" (model {predicted:.2f} us)"
                       if predicted is not None else "")
                lines.append(f"    model-cut {_fmt_choice(choice):<28}{est}")
        comps = self.compares()
        if comps:
            lines.append("strategy compare (end-to-end):")
            for ev in comps:
                cached = " [cached]" if ev.get("cached") else ""
                lines.append(f"    {ev['label']:<28} "
                             f"{ev['value']:>12.3f} us{cached}")
        return "\n".join(lines)


def _fmt_choice(choice) -> str:
    text = repr(choice)
    return text if len(text) <= 28 else text[:25] + "..."


class _NullProvenance:
    """Disabled log: every hook is a no-op."""

    enabled = False
    events: list = []

    def candidates(self, context, name, choices) -> None:
        pass

    def measured(self, context, name, choice, value) -> None:
        pass

    def pruned(self, context, name, choice, estimate_us=None) -> None:
        pass

    def model_pruned(self, context, name, choice, predicted_us=None) -> None:
        pass

    def quarantined(self, context, name, choice) -> None:
        pass

    def compared(self, context, label, value, cached=False) -> None:
        pass

    def warm_seeded(self, source, entries, digest=None) -> None:
        pass

    def warm_events(self) -> list:
        return []

    def decisions(self) -> list:
        return []

    def decision(self, name, context=None):
        return None

    def decisive(self) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"version": 1, "events": []}

    def render(self, assignment=None, top: int = 4) -> str:
        return ""


#: shared disabled log -- the default everywhere the wirer hooks in
NULL_PROVENANCE = _NullProvenance()
