"""JSON serialization of graphs, plans and reports.

Lets a downstream user persist what Astra found: the traced graph
structure, the custom-wired execution plan, and the optimization report
(including the full adaptive-variable assignment), then reload the plan
against a freshly traced graph.  Re-wiring a job that was optimized
before costs zero mini-batches -- the deployment-side counterpart of the
profile index.
"""

from __future__ import annotations

import json
from typing import Any

from .core.wirer import AstraReport
from .core.session import SessionReport
from .gpu.kernels import (
    CompoundLaunch,
    CopyLaunch,
    ElementwiseLaunch,
    GemmLaunch,
    HostTransfer,
    Kernel,
)
from .ir.graph import Graph
from .runtime.plan import ExecutionPlan, Unit

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# graphs
# ---------------------------------------------------------------------------


def graph_to_dict(graph: Graph) -> dict:
    """Structural dump of a traced graph (op names, shapes, provenance)."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "outputs": list(graph.outputs),
        "nodes": [
            {
                "id": node.node_id,
                "op": node.op.name if node.op else None,
                "signature": list(node.op.signature()) if node.op else None,
                "inputs": list(node.input_ids),
                "shape": list(node.spec.shape),
                "dtype": node.spec.dtype,
                "role": node.role,
                "scope": node.scope,
                "pass": node.pass_tag,
                "label": node.label,
            }
            for node in graph.nodes
        ],
    }


# ---------------------------------------------------------------------------
# kernels / plans
# ---------------------------------------------------------------------------


def kernel_to_dict(kernel: Kernel) -> dict:
    if isinstance(kernel, GemmLaunch):
        return {"kind": "gemm", "m": kernel.m, "k": kernel.k, "n": kernel.n,
                "library": kernel.library, "node_ids": list(kernel.node_ids)}
    if isinstance(kernel, ElementwiseLaunch):
        return {"kind": "elementwise", "num_elements": kernel.num_elements,
                "fused_ops": kernel.fused_ops,
                "flops_per_element": kernel.flops_per_element,
                "bytes_per_element": kernel.bytes_per_element,
                "label": kernel.label, "node_ids": list(kernel.node_ids)}
    if isinstance(kernel, CopyLaunch):
        return {"kind": "copy", "bytes_moved": kernel.bytes_moved,
                "label": kernel.label, "node_ids": list(kernel.node_ids)}
    if isinstance(kernel, CompoundLaunch):
        return {"kind": "compound", "total_flops": kernel.total_flops,
                "efficiency": kernel.efficiency, "rows": kernel.rows,
                "label": kernel.label, "node_ids": list(kernel.node_ids)}
    if isinstance(kernel, HostTransfer):
        return {"kind": "transfer", "bytes_moved": kernel.bytes_moved,
                "direction": kernel.direction, "node_ids": list(kernel.node_ids)}
    raise TypeError(f"cannot serialize kernel {kernel!r}")


def kernel_from_dict(data: dict) -> Kernel:
    kind = data["kind"]
    node_ids = tuple(data.get("node_ids", ()))
    if kind == "gemm":
        return GemmLaunch(data["m"], data["k"], data["n"], data["library"],
                          node_ids=node_ids)
    if kind == "elementwise":
        return ElementwiseLaunch(
            num_elements=data["num_elements"], fused_ops=data["fused_ops"],
            flops_per_element=data["flops_per_element"],
            bytes_per_element=data["bytes_per_element"],
            label=data["label"], node_ids=node_ids,
        )
    if kind == "copy":
        return CopyLaunch(bytes_moved=data["bytes_moved"], label=data["label"],
                          node_ids=node_ids)
    if kind == "compound":
        return CompoundLaunch(
            total_flops=data["total_flops"], efficiency=data["efficiency"],
            rows=data.get("rows", 64), label=data["label"], node_ids=node_ids,
        )
    if kind == "transfer":
        return HostTransfer(bytes_moved=data["bytes_moved"],
                            direction=data["direction"], node_ids=node_ids)
    raise ValueError(f"unknown kernel kind {kind!r}")


def plan_to_dict(plan: ExecutionPlan) -> dict:
    return {
        "version": FORMAT_VERSION,
        "label": plan.label,
        "profile": plan.profile,
        "stream_of": {str(k): v for k, v in plan.stream_of.items()},
        "barriers_after": sorted(plan.barriers_after),
        "units": [
            {
                "id": unit.unit_id,
                "kernel": kernel_to_dict(unit.kernel) if unit.kernel else None,
                "node_ids": list(unit.node_ids),
                "label": unit.label,
                "pre_copies": [kernel_to_dict(k) for k in unit.pre_copies],
                "host_us": unit.host_us,
                "epoch": unit.epoch,
                "super_epoch": unit.super_epoch,
            }
            for unit in plan.units
        ],
    }


def plan_from_dict(data: dict) -> ExecutionPlan:
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {data.get('version')}")
    units = []
    for entry in data["units"]:
        unit = Unit(
            unit_id=entry["id"],
            kernel=kernel_from_dict(entry["kernel"]) if entry["kernel"] else None,
            node_ids=tuple(entry["node_ids"]),
            label=entry["label"],
            pre_copies=tuple(kernel_from_dict(k) for k in entry["pre_copies"]),
            host_us=entry["host_us"],
            epoch=entry["epoch"],
            super_epoch=entry["super_epoch"],
        )
        units.append(unit)
    return ExecutionPlan(
        units=units,
        stream_of={int(k): v for k, v in data["stream_of"].items()},
        barriers_after=frozenset(data["barriers_after"]),
        profile=data["profile"],
        label=data["label"],
    )


# ---------------------------------------------------------------------------
# lowered schedules (golden-schedule regression tests, repro check --json)
# ---------------------------------------------------------------------------


def schedule_to_dict(lowered) -> dict:
    """Structural dump of a lowered schedule's dispatch-item list.

    Events are encoded by index (their identity within one lowering),
    kernels by name/kind; together with per-item unit attribution this
    pins down exactly what the dispatcher emitted, which is what the
    golden-schedule tests under ``tests/data/`` compare against.
    """
    from .gpu.streams import (
        HostComputeItem,
        HostSyncItem,
        LaunchItem,
        RecordEventItem,
    )

    items = []
    for idx, item in enumerate(lowered.items):
        if isinstance(item, LaunchItem):
            items.append({
                "type": "launch",
                "stream": item.stream,
                "kernel": item.kernel.name,
                "kind": item.kernel.kind,
                "waits": [ev.index for ev in item.waits],
                "record": item.record.index if item.record is not None else None,
                "profiling": item.record_is_profiling,
                "unit": lowered.item_units.get(idx),
            })
        elif isinstance(item, RecordEventItem):
            items.append({
                "type": "record", "stream": item.stream, "event": item.event.index,
            })
        elif isinstance(item, HostSyncItem):
            items.append({
                "type": "sync",
                "event": item.event.index if item.event is not None else None,
            })
        elif isinstance(item, HostComputeItem):
            items.append({
                "type": "host",
                "duration_us": item.duration_us,
                "label": item.label,
                "unit": lowered.item_units.get(idx),
            })
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot serialize dispatch item {item!r}")
    return {
        "version": FORMAT_VERSION,
        "label": lowered.plan.label,
        "items": items,
        "unit_stream": {str(k): v for k, v in sorted(lowered.unit_stream.items())},
    }


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


def report_to_dict(report: AstraReport | SessionReport) -> dict:
    if isinstance(report, SessionReport):
        return {
            "version": FORMAT_VERSION,
            "native_time_us": report.native_time_us,
            "speedup_over_native": report.speedup_over_native,
            "astra": report_to_dict(report.astra),
        }
    provenance = getattr(report, "provenance", None)
    provenance_doc = (
        provenance.to_dict()
        if provenance is not None and getattr(provenance, "enabled", False)
        and getattr(provenance, "events", None)
        else None
    )
    return {
        "version": FORMAT_VERSION,
        "best_time_us": report.best_time_us,
        "configs_explored": report.configs_explored,
        "profiling_overhead": report.profiling_overhead,
        "profile_entries": report.profile_entries,
        "best_strategy": report.best_strategy.label,
        "strategy_times": {str(k): v for k, v in report.strategy_times.items()},
        "phases": [
            {"name": p.name, "minibatches": p.minibatches, "index_hits": p.index_hits,
             "index_hit_rate": p.index_hit_rate}
            for p in report.phases
        ],
        "timeline": [[phase, t] for phase, t in report.timeline],
        "assignment": {k: repr(v) for k, v in report.assignment.items()},
        "plan": plan_to_dict(report.best_plan),
        "degraded": report.degraded,
        "fault_summary": dict(report.fault_summary),
        "memory": dict(report.memory),
        "fast_path": dict(report.fast_path),
        "warm": dict(getattr(report, "warm", {}) or {}),
        "provenance": provenance_doc,
    }


def dumps(obj: Any, **kwargs) -> str:
    """JSON-encode any of the serializable objects above."""
    if isinstance(obj, Graph):
        payload = graph_to_dict(obj)
    elif isinstance(obj, ExecutionPlan):
        payload = plan_to_dict(obj)
    elif isinstance(obj, (AstraReport, SessionReport)):
        payload = report_to_dict(obj)
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(payload, **kwargs)


def load_plan(text: str) -> ExecutionPlan:
    """Reload a serialized plan (for re-wiring a previously optimized job)."""
    return plan_from_dict(json.loads(text))
