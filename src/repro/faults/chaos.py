"""Chaos harness: sweep a fault matrix and prove the runtime survives it.

Behind ``repro chaos <model>``: run the Astra exploration under each cell
of a fault matrix (one fault class armed per cell, plus a clean control
and an everything-at-once storm), assert the degradation invariant on
every cell, and cross-check the fault accounting:

* **termination** -- every cell produces a report (a preempted cell must
  checkpoint, resume, and then produce a report);
* **degradation invariant** -- the returned plan, measured on a clean
  executor, is never slower than native;
* **accounting** -- every injected fault appears in the injector ledger,
  the ``fault.injected.*`` metrics gauges, and (for surfaced faults) the
  run-report fault records; the three views must agree.

The harness is deliberately deterministic: cells derive their seeds from
the base seed, so a chaos run is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import (
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    PreemptionError,
)
from .plan import FaultPlan, FaultSpec, FaultWindow


@dataclass(frozen=True)
class ChaosCell:
    """One cell of the fault matrix: a named fault plan to survive."""

    name: str
    plan: FaultPlan


@dataclass
class CellResult:
    """What happened when one cell ran."""

    name: str
    ok: bool
    best_time_us: float
    native_time_us: float
    speedup: float
    degraded: bool
    resumed: bool
    #: injected-fault counts from the injector ledger (kind -> count)
    injected: dict = field(default_factory=dict)
    #: problems found by the invariant checks (empty when ok)
    problems: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "best_time_us": self.best_time_us,
            "native_time_us": self.native_time_us,
            "speedup": self.speedup,
            "degraded": self.degraded,
            "resumed": self.resumed,
            "injected": dict(self.injected),
            "problems": list(self.problems),
        }


@dataclass
class ChaosReport:
    """Resilience report for one model's chaos sweep."""

    model: str
    cells: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "model": self.model,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self) -> str:
        lines = [
            f"chaos sweep: {self.model}",
            f"{'cell':<16} {'verdict':<8} {'astra(ms)':>10} {'native(ms)':>11} "
            f"{'speedup':>8}  notes",
        ]
        for cell in self.cells:
            notes = []
            if cell.degraded:
                notes.append("degraded->native")
            if cell.resumed:
                notes.append("preempted+resumed")
            if cell.injected:
                injected = ",".join(
                    f"{k}:{v}" for k, v in sorted(cell.injected.items())
                )
                notes.append(f"injected[{injected}]")
            notes.extend(cell.problems)
            lines.append(
                f"{cell.name:<16} {'ok' if cell.ok else 'FAIL':<8} "
                f"{cell.best_time_us / 1000:>10.3f} "
                f"{cell.native_time_us / 1000:>11.3f} "
                f"{cell.speedup:>8.2f}  {'; '.join(notes)}"
            )
        lines.append(f"chaos {self.model}: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def default_matrix(seed: int = 0, preempt_at: int = 6) -> list[ChaosCell]:
    """The standard fault matrix: a clean control, one cell per fault
    class, and a storm with everything armed at once."""
    cells = [
        ChaosCell("clean", FaultPlan.none()),
        ChaosCell(
            "slowdown",
            FaultPlan.single(FAULT_SLOWDOWN, rate=0.3, seed=seed, factor=6.0),
        ),
        ChaosCell(
            "throttle",
            FaultPlan.single(
                FAULT_THROTTLE, seed=seed, factor=2.5,
                window=FaultWindow(2, 10),
            ),
        ),
        # rates are per-opportunity (per kernel launch / per profiled
        # timestamp), so small numbers still fault a large fraction of
        # mini-batches; these are set where retry + robust measurement
        # usually recovers, leaving the degradation path to oom/storm
        ChaosCell(
            "launch_fail",
            FaultPlan.single(FAULT_LAUNCH, rate=0.004, seed=seed),
        ),
        ChaosCell(
            "event_drop",
            FaultPlan.single(FAULT_EVENT_DROP, rate=0.05, seed=seed),
        ),
        ChaosCell(
            "event_corrupt",
            FaultPlan.single(FAULT_EVENT_CORRUPT, rate=0.2, seed=seed, factor=3.0),
        ),
        ChaosCell(
            "oom",
            # cap usable memory hard enough that arena-backed strategies
            # are pruned and exploration must cope (or degrade)
            FaultPlan.single(
                FAULT_OOM, seed=seed, mem_limit_bytes=1,
                window=FaultWindow(0, None),
            ),
        ),
        ChaosCell(
            "preempt",
            FaultPlan.single(FAULT_PREEMPT, seed=seed, at=preempt_at),
        ),
        ChaosCell(
            "storm",
            FaultPlan(
                specs=(
                    FaultSpec(FAULT_SLOWDOWN, rate=0.2, factor=4.0),
                    FaultSpec(FAULT_THROTTLE, rate=1.0, factor=2.0,
                              window=FaultWindow(3, 9)),
                    FaultSpec(FAULT_LAUNCH, rate=0.03),
                    FaultSpec(FAULT_EVENT_DROP, rate=0.1),
                    FaultSpec(FAULT_EVENT_CORRUPT, rate=0.1, factor=3.0),
                ),
                seed=seed,
            ),
        ),
    ]
    return cells


def _run_cell(
    model,
    cell: ChaosCell,
    budget: int,
    seed: int,
    device=None,
    features="all",
    checkpoint_path=None,
):
    """Run one cell to completion, resuming across preemptions.

    Returns (session_report, wirer, resumed_flag)."""
    # deferred: repro.core imports repro.faults at module level
    from ..core.measurement import ROBUST
    from ..core.session import AstraSession
    from ..obs.metrics import MetricsRegistry
    from ..obs.report import RunReporter

    resumed = False
    attempts = 0
    while True:
        session = AstraSession(
            model,
            **({"device": device} if device is not None else {}),
            features=features,
            seed=seed,
            policy=ROBUST if cell.plan.specs else None,
            faults=cell.plan if cell.plan.specs else None,
            checkpoint_path=checkpoint_path,
            metrics=MetricsRegistry(),
            reporter=RunReporter(),
        )
        try:
            return session.optimize(max_minibatches=budget), session, resumed
        except PreemptionError:
            # the scheduler took the device; the wirer checkpointed (when
            # a path is configured).  A preempt plan fires once, so the
            # restarted session runs to completion.
            if checkpoint_path is None:
                raise
            resumed = True
            attempts += 1
            if attempts > 3:
                raise


def run_chaos(
    model,
    model_name: str = "model",
    budget: int = 60,
    seed: int = 0,
    device=None,
    features: str = "all",
    cells: list[ChaosCell] | None = None,
    checkpoint_dir: str | None = None,
) -> ChaosReport:
    """Sweep the fault matrix over one traced model.

    Every cell is checked for the degradation invariant (final plan no
    slower than native on a clean device) and for fault accounting
    (injector ledger == ``fault.injected.*`` gauges == report summary).
    """
    import os
    import tempfile

    report = ChaosReport(model=model_name)
    cells = cells if cells is not None else default_matrix(seed=seed)
    tmpdir = None
    if checkpoint_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        checkpoint_dir = tmpdir.name
    try:
        for cell in cells:
            ckpt = os.path.join(checkpoint_dir, f"{model_name}-{cell.name}.ckpt")
            session_report, session, resumed = _run_cell(
                model, cell, budget, seed,
                device=device, features=features, checkpoint_path=ckpt,
            )
            report.cells.append(
                _check_cell(cell, session_report, session, resumed)
            )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    return report


def _check_cell(cell: ChaosCell, session_report, session, resumed) -> CellResult:
    problems: list[str] = []
    wirer = session.wirer
    astra = session_report.astra

    # degradation invariant: the shipped plan is never slower than native
    # on a clean device (small tolerance for float accumulation order)
    clean_time = session.measure_clean(astra.best_plan)
    native_time = session_report.native_time_us
    if clean_time > native_time * 1.0001:
        problems.append(
            f"degradation violated: plan {clean_time:.1f}us > "
            f"native {native_time:.1f}us"
        )

    injected: dict = {}
    if wirer.injector is not None:
        summary = wirer.injector.summary()
        injected = dict(summary["injected"])
        # accounting view 1: report.fault_summary mirrors the ledger
        if astra.fault_summary.get("injected", {}) != injected:
            problems.append("fault_summary does not match injector ledger")
        # accounting view 2: fault.injected.* gauges mirror the ledger
        snapshot = wirer.metrics.snapshot()
        for kind, count in injected.items():
            gauge = snapshot.get(f"fault.injected.{kind}", {}).get("value")
            if gauge != count:
                problems.append(
                    f"gauge fault.injected.{kind}={gauge} != ledger {count}"
                )
        # accounting view 3: injected fault classes appear among the
        # run-report fault records (summary records are always written)
        recorded = {
            r.assignment_delta.get("fault")
            for r in wirer.reporter.faults()
        }
        for kind in injected:
            if injected[kind] and kind not in recorded:
                problems.append(f"injected {kind} missing from run report")

    return CellResult(
        name=cell.name,
        ok=not problems,
        best_time_us=astra.best_time_us,
        native_time_us=native_time,
        speedup=session_report.speedup_over_native,
        degraded=astra.degraded,
        resumed=resumed,
        injected=injected,
        problems=problems,
    )
