"""Typed fault events: what the injection layer produces and the runtime
half consumes.

Astra's premise is that mini-batch measurements are trustworthy enough to
drive online optimization; real fleets violate that premise in specific,
nameable ways (clock throttling, multi-tenant interference, lost profiling
events, transient launch failures, preemption).  This module gives each
violation a *type*, so the executor can surface "this measurement is
untrustworthy because X" instead of silently-wrong numbers, and the wirer
can pick a recovery policy per fault class (retry, re-measure, quarantine,
prune, degrade, checkpoint).

Two kinds of objects live here:

* :class:`FaultError` subclasses -- faults that *abort* a mini-batch
  (launch failure, device OOM, preemption).  They carry enough context to
  be retried, pruned, or checkpointed.
* :class:`FaultEvent` records -- faults that *taint* a mini-batch without
  aborting it (a dropped or corrupted cudaEvent timestamp).  The executor
  attaches them to the :class:`~repro.runtime.executor.MiniBatchResult`
  and withholds the affected measurements from the profile index.

Every injected fault, aborting or not, is also appended to the injector's
ledger as a :class:`FaultRecord` so chaos runs can assert that each fault
is accounted for in ``fault.*`` metrics and run-report records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: fault classes, in taxonomy order (see docs/robustness.md)
FAULT_SLOWDOWN = "slowdown"          # transient per-kernel straggler
FAULT_THROTTLE = "clock_throttle"    # windowed whole-device slowdown
FAULT_LAUNCH = "launch_fail"         # kernel launch returns an error
FAULT_EVENT_DROP = "event_drop"      # cudaEvent timestamp lost
FAULT_EVENT_CORRUPT = "event_corrupt"  # cudaEvent timestamp perturbed
FAULT_OOM = "oom"                    # arena exceeds device memory
FAULT_PREEMPT = "preempt"            # job preempted mid-exploration

FAULT_KINDS = (
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    FAULT_LAUNCH,
    FAULT_EVENT_DROP,
    FAULT_EVENT_CORRUPT,
    FAULT_OOM,
    FAULT_PREEMPT,
)

#: serving-layer fault classes (see docs/serving.md "Failure modes and
#: recovery"): these hit the daemon around the measurements rather than
#: the measurements themselves, so they are injected by the
#: ``repro chaos-serve`` harness (real SIGKILLs, torn files, flipped
#: bytes) instead of the in-process ``FaultInjector``
FAULT_JOB_TIMEOUT = "job_timeout"    # a served job exceeded its deadline
FAULT_DAEMON_CRASH = "daemon_crash"  # the serve daemon died mid-job
FAULT_TORN_WRITE = "torn_write"      # a store segment was cut short
FAULT_BIT_FLIP = "bit_flip"          # a committed segment byte flipped

SERVE_FAULT_KINDS = (
    FAULT_JOB_TIMEOUT,
    FAULT_DAEMON_CRASH,
    FAULT_TORN_WRITE,
    FAULT_BIT_FLIP,
)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as logged in the injector's ledger."""

    kind: str
    minibatch: int
    detail: str = ""


class FaultError(RuntimeError):
    """Base of every fault that aborts a mini-batch.

    ``kind`` matches the taxonomy constant; ``transient`` tells the wirer
    whether retrying the same configuration can possibly succeed.
    """

    kind = "fault"
    transient = True

    def __init__(self, message: str, minibatch: int = -1):
        super().__init__(message)
        self.minibatch = minibatch

    # subclasses take domain arguments, not the base (message, minibatch)
    # pair, so the default exception reduce protocol re-raises a TypeError
    # on unpickle; each subclass pins its own constructor arguments.  The
    # parallel engine ships worker-side faults back to the wirer this way.
    def __reduce__(self):
        return (type(self), (str(self), self.minibatch))


class KernelLaunchError(FaultError):
    """A kernel launch failed; the mini-batch's work is lost.

    Transient by definition (the paper's measurement loops, like Learning
    to Optimize Tensor Programs, simply re-run failed measurements)."""

    kind = FAULT_LAUNCH
    transient = True

    def __init__(self, label: str, minibatch: int = -1):
        super().__init__(f"kernel launch failed: {label}", minibatch)
        self.label = label

    def __reduce__(self):
        return (KernelLaunchError, (self.label, self.minibatch))


class DeviceOOMError(FaultError):
    """The plan's arena does not fit device memory.

    Deterministic for a given (plan, capacity): retrying the same
    allocation strategy cannot succeed, so the wirer prunes it."""

    kind = FAULT_OOM
    transient = False

    def __init__(self, arena_bytes: int, capacity_bytes: int, minibatch: int = -1):
        super().__init__(
            f"arena {arena_bytes} B exceeds device memory {capacity_bytes} B",
            minibatch,
        )
        self.arena_bytes = arena_bytes
        self.capacity_bytes = capacity_bytes

    def __reduce__(self):
        return (
            DeviceOOMError,
            (self.arena_bytes, self.capacity_bytes, self.minibatch),
        )


class JobTimeoutError(FaultError):
    """A served optimization job exceeded its per-job deadline.

    Raised by the daemon's job supervisor (not the injector): the worker
    abandons the wedged attempt and either retries with backoff or
    dead-letters the job.  Transient -- a deadline miss is usually load,
    not poison, so a bounded number of retries is worth it."""

    kind = FAULT_JOB_TIMEOUT
    transient = True

    def __init__(self, job_id: str, deadline_s: float, minibatch: int = -1):
        super().__init__(
            f"job {job_id} exceeded its {deadline_s:g}s deadline", minibatch
        )
        self.job_id = job_id
        self.deadline_s = deadline_s

    def __reduce__(self):
        return (JobTimeoutError, (self.job_id, self.deadline_s, self.minibatch))


class PreemptionError(FaultError):
    """The job was preempted; exploration state must be checkpointed.

    Raised *between* mini-batches (before any work is dispatched), so the
    profile index holds only complete measurements when the checkpoint is
    cut.  ``checkpoint_path`` is filled in by whoever saved state."""

    kind = FAULT_PREEMPT
    transient = False

    def __init__(self, minibatch: int):
        super().__init__(f"job preempted at mini-batch {minibatch}", minibatch)
        self.checkpoint_path: str | None = None

    def __reduce__(self):
        return (PreemptionError, (self.minibatch,))


@dataclass(frozen=True)
class FaultEvent:
    """A non-aborting fault that taints part of one mini-batch's profile.

    ``unit_id`` is the schedule unit whose measurement is affected (-1
    when the fault is not attributable to one unit)."""

    kind: str
    detail: str = ""
    unit_id: int = -1


@dataclass
class MinibatchFaultLog:
    """Faults injected while executing one mini-batch.

    The simulator fills it in as it runs; the executor reads it back to
    decide which measurements to withhold.  ``dropped_records`` /
    ``corrupted_records`` index into the simulator's kernel-record list;
    ``corruption_factors`` gives the multiplicative timestamp error for
    each corrupted record (detectably absurd or plausibly wrong -- the
    executor catches the former, min-of-k + MAD re-measurement the
    latter)."""

    minibatch: int = -1
    dropped_records: set[int] = field(default_factory=set)
    corrupted_records: dict[int, float] = field(default_factory=dict)
    slowdowns: int = 0
    throttled: bool = False

    @property
    def any_measurement_faults(self) -> bool:
        return bool(self.dropped_records or self.corrupted_records)
