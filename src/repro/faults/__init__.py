"""Fault injection and resilience: the hostile-fleet half of the repro.

The paper hedges its "predictable execution" requirement against real
fleets (base clocks via nvidia-smi, a profile index designed to survive
restarts); this subsystem reproduces the hostility and proves the runtime
half survives it:

* :mod:`repro.faults.events` -- the typed fault taxonomy
  (:class:`FaultError` aborts, :class:`FaultEvent` taints);
* :mod:`repro.faults.plan` -- declarative, seeded :class:`FaultPlan`
  (per-class rates, factors, mini-batch windows);
* :mod:`repro.faults.injector` -- the stateful, deterministic
  :class:`FaultInjector` the simulator and executor consult, with the
  ledger that makes every injected fault accountable;
* :mod:`repro.faults.checkpoint` -- :class:`ExplorationCheckpoint`
  save/restore so a preempted exploration resumes instead of re-exploring;
* :mod:`repro.faults.chaos` -- the chaos harness behind ``repro chaos``:
  sweep a fault matrix, assert the degradation invariant, print a
  resilience report.

See ``docs/robustness.md`` for the taxonomy and the recovery policies.
"""

from .events import (
    FAULT_BIT_FLIP,
    FAULT_DAEMON_CRASH,
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_JOB_TIMEOUT,
    FAULT_KINDS,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    FAULT_TORN_WRITE,
    SERVE_FAULT_KINDS,
    DeviceOOMError,
    FaultError,
    FaultEvent,
    FaultRecord,
    JobTimeoutError,
    KernelLaunchError,
    MinibatchFaultLog,
    PreemptionError,
)
from .plan import FaultPlan, FaultSpec, FaultWindow
from .injector import FaultInjector
from .checkpoint import ExplorationCheckpoint
from .chaos import ChaosCell, ChaosReport, default_matrix, run_chaos

__all__ = [
    "FAULT_KINDS", "SERVE_FAULT_KINDS",
    "FAULT_SLOWDOWN", "FAULT_THROTTLE", "FAULT_LAUNCH",
    "FAULT_EVENT_DROP", "FAULT_EVENT_CORRUPT", "FAULT_OOM", "FAULT_PREEMPT",
    "FAULT_JOB_TIMEOUT", "FAULT_DAEMON_CRASH", "FAULT_TORN_WRITE",
    "FAULT_BIT_FLIP",
    "FaultError", "FaultEvent", "FaultRecord", "MinibatchFaultLog",
    "KernelLaunchError", "DeviceOOMError", "PreemptionError",
    "JobTimeoutError",
    "FaultPlan", "FaultSpec", "FaultWindow",
    "FaultInjector",
    "ExplorationCheckpoint",
    "ChaosCell", "ChaosReport", "default_matrix", "run_chaos",
]
