"""Declarative fault plans: which faults, how often, and when.

A :class:`FaultPlan` is the seeded, reproducible description of a hostile
environment -- the fault-injection analog of an
:class:`~repro.runtime.plan.ExecutionPlan`.  It is pure data: per
fault-class rates, multiplicative factors, and mini-batch windows.  The
stateful half (RNG, ledger, counters) lives in
:class:`~repro.faults.injector.FaultInjector`, built via
:meth:`FaultPlan.injector`, so one plan can drive many independent,
identically-distributed runs.

Windows are half-open mini-batch intervals ``[start, end)``: fault
opportunities outside a spec's window never fire, which models throttle
episodes, noisy-neighbor bursts, and scheduled preemption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from .events import (
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_KINDS,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
)


@dataclass(frozen=True)
class FaultWindow:
    """Half-open mini-batch interval ``[start, end)``; ``end=None`` = open."""

    start: int = 0
    end: int | None = None

    def contains(self, minibatch: int) -> bool:
        if minibatch < self.start:
            return False
        return self.end is None or minibatch < self.end

    def to_dict(self) -> dict:
        return {"start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultWindow":
        return cls(start=data.get("start", 0), end=data.get("end"))


@dataclass(frozen=True)
class FaultSpec:
    """One fault class armed with a rate, a factor, and a window.

    Field semantics per class:

    * ``slowdown`` -- each kernel execution is slowed by ``factor`` with
      probability ``rate`` (a transient straggler / noisy neighbor);
    * ``clock_throttle`` -- every kernel inside ``window`` runs ``factor``
      times slower (a deterministic throttle episode; ``rate`` ignored);
    * ``launch_fail`` -- each kernel launch fails with probability
      ``rate``, aborting the mini-batch;
    * ``event_drop`` -- each profiled timestamp is lost with probability
      ``rate``;
    * ``event_corrupt`` -- each profiled timestamp is perturbed by up to
      ``factor`` with probability ``rate``;
    * ``oom`` -- inside ``window`` the device's usable memory is capped at
      ``mem_limit_bytes`` (plans whose arena exceeds it abort; ``rate``
      ignored) -- modelling a co-tenant occupying part of the device;
    * ``preempt`` -- the job is preempted at mini-batch ``at`` (once).
    """

    kind: str
    rate: float = 0.0
    factor: float = 1.0
    window: FaultWindow = field(default_factory=FaultWindow)
    #: preemption point (``preempt`` only)
    at: int | None = None
    #: usable-memory cap (``oom`` only); None = the device's capacity
    mem_limit_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.factor < 1.0 and self.kind in (FAULT_SLOWDOWN, FAULT_THROTTLE):
            raise ValueError(f"{self.kind} factor must be >= 1, got {self.factor}")
        if self.kind == FAULT_PREEMPT and self.at is None:
            raise ValueError("preempt spec needs an 'at' mini-batch")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "factor": self.factor,
            "window": self.window.to_dict(),
            "at": self.at,
            "mem_limit_bytes": self.mem_limit_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            rate=data.get("rate", 0.0),
            factor=data.get("factor", 1.0),
            window=FaultWindow.from_dict(data.get("window") or {}),
            at=data.get("at"),
            mem_limit_bytes=data.get("mem_limit_bytes"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` -- the whole hostile environment.

    Deterministic: the same plan driving the same (deterministic) workload
    injects the same faults at the same points, so every chaos result is
    reproducible and every recovery test is exact.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        kinds = [s.kind for s in self.specs]
        # one spec per kind keeps injector dispatch unambiguous
        dupes = {k for k in kinds if kinds.count(k) > 1}
        if dupes:
            raise ValueError(f"duplicate fault specs for {sorted(dupes)}")

    def spec(self, kind: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    @property
    def active_kinds(self) -> tuple[str, ...]:
        return tuple(s.kind for s in self.specs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def injector(self):
        """Build a fresh stateful injector for one run of this plan."""
        from .injector import FaultInjector

        return FaultInjector(self)

    # -- serialization (CLI --faults files) -------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    def dumps(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if data.get("version") != 1:
            raise ValueError(f"unsupported fault-plan version {data.get('version')}")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", [])),
            seed=data.get("seed", 0),
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- common shapes ----------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def single(cls, kind: str, rate: float = 0.1, seed: int = 0,
               **overrides) -> "FaultPlan":
        """One armed fault class with sensible defaults (chaos matrix cells)."""
        defaults: dict = {"rate": rate}
        if kind == FAULT_SLOWDOWN:
            defaults["factor"] = 4.0
        elif kind == FAULT_THROTTLE:
            defaults.update(factor=2.0, rate=0.0, window=FaultWindow(2, 12))
        elif kind == FAULT_EVENT_CORRUPT:
            defaults["factor"] = 3.0
        elif kind == FAULT_OOM:
            defaults["rate"] = 0.0
        elif kind == FAULT_PREEMPT:
            defaults.update(rate=0.0, at=8)
        defaults.update(overrides)
        return cls(specs=(FaultSpec(kind=kind, **defaults),), seed=seed)
