"""Exploration checkpoints: preempted jobs resume instead of re-exploring.

Section 4.6's profile index is "designed to survive restarts": because
every measurement lives under a context-mangled key and every phase
consults the index before spending a mini-batch, the index *is* the
durable exploration state.  A checkpoint is therefore mostly the
serialized index plus the run's bookkeeping (work-conservation timeline,
spent-budget cursor, per-phase stats) and the RNG states that keep
autoboost jitter and fault injection bit-identical across the restart.

On resume the custom-wirer replays its phase structure: every already-
measured configuration hits the index (no mini-batch spent), update trees
finalize to the same best assignments, and the end-to-end comparisons are
answered from their own index keys -- so an interrupted exploration
converges to the same configuration as an uninterrupted one without
re-spending mini-batches on already-profiled configurations.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..core.profile_index import ProfileIndex

CHECKPOINT_VERSION = 1


@dataclass
class ExplorationCheckpoint:
    """Serializable snapshot of one :class:`~repro.core.wirer.CustomWirer`.

    ``signature`` fingerprints (graph, device, features, seed); restoring
    onto a mismatched wirer raises, because index keys would silently
    never match and the run would quietly re-explore everything.
    """

    signature: dict
    index_doc: dict
    total_spent: int = 0
    timeline: list = field(default_factory=list)
    overhead_samples: list = field(default_factory=list)
    best_so_far: float | None = None
    #: phase name -> [minibatches, index_hits] carried into resumed stats
    phase_carry: dict = field(default_factory=dict)
    simulator_rng: dict | None = None
    injector_state: dict | None = None
    preempted_at: int | None = None
    completed: bool = False

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "signature": self.signature,
            "index": self.index_doc,
            "total_spent": self.total_spent,
            "timeline": [[phase, t] for phase, t in self.timeline],
            "overhead_samples": list(self.overhead_samples),
            "best_so_far": self.best_so_far,
            "phase_carry": {k: list(v) for k, v in self.phase_carry.items()},
            "simulator_rng": self.simulator_rng,
            "injector_state": self.injector_state,
            "preempted_at": self.preempted_at,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationCheckpoint":
        if data.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')}"
            )
        return cls(
            signature=data["signature"],
            index_doc=data["index"],
            total_spent=data.get("total_spent", 0),
            timeline=[(phase, t) for phase, t in data.get("timeline", [])],
            overhead_samples=list(data.get("overhead_samples", [])),
            best_so_far=data.get("best_so_far"),
            phase_carry={
                k: tuple(v) for k, v in data.get("phase_carry", {}).items()
            },
            simulator_rng=data.get("simulator_rng"),
            injector_state=data.get("injector_state"),
            preempted_at=data.get("preempted_at"),
            completed=data.get("completed", False),
        )

    def dumps(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def loads(cls, text: str) -> "ExplorationCheckpoint":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Atomic write: a preemption racing the save must never leave a
        torn checkpoint -- a corrupt file is worse than none."""
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            fh.write(self.dumps())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ExplorationCheckpoint":
        with open(path) as fh:
            return cls.loads(fh.read())

    # -- accessors ---------------------------------------------------------

    def profile_index(self) -> ProfileIndex:
        return ProfileIndex.loads(json.dumps(self.index_doc))

    def check_signature(self, signature: dict) -> None:
        if self.signature != signature:
            mismatched = sorted(
                k for k in set(self.signature) | set(signature)
                if self.signature.get(k) != signature.get(k)
            )
            raise ValueError(
                f"checkpoint does not match this run (differs in {mismatched}); "
                "refusing to resume -- index keys would silently never match"
            )
