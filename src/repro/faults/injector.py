"""The stateful fault injector: one per run, consulted by the simulator
and the executor at every fault opportunity.

Determinism contract: the injector draws from its own seeded RNG in the
order opportunities arise, and the simulator visits opportunities in a
deterministic order, so a fixed ``(FaultPlan, workload, seed)`` triple
always injects the same faults -- chaos results are exactly reproducible
and recovery tests can assert exact outcomes.

The injector also keeps the *ledger*: every injected fault becomes a
:class:`~repro.faults.events.FaultRecord` and a ``fault.injected.<kind>``
counter, which is what lets a chaos run prove that no injected fault went
unaccounted for.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import GPUSpec
from .events import (
    FAULT_EVENT_CORRUPT,
    FAULT_EVENT_DROP,
    FAULT_LAUNCH,
    FAULT_OOM,
    FAULT_PREEMPT,
    FAULT_SLOWDOWN,
    FAULT_THROTTLE,
    FaultRecord,
    MinibatchFaultLog,
    PreemptionError,
)
from .plan import FaultPlan

#: domain-separation tag for per-candidate injector substreams (parallel
#: engine): keeps candidate streams disjoint from the run-level stream
#: seeded with the bare plan seed
_CANDIDATE_STREAM_TAG = 0xFA17


class FaultInjector:
    """Stateful decision-maker for one :class:`~repro.faults.plan.FaultPlan`.

    The executor calls :meth:`begin_minibatch` before dispatching each
    mini-batch (which is where scheduled preemption fires, so state is
    never torn mid-batch), and the simulator consults the per-kernel and
    per-event hooks while it runs.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.minibatch = -1  # incremented by begin_minibatch
        self.ledger: list[FaultRecord] = []
        self.counts: dict[str, int] = {}
        self._preempted = False
        self._log = MinibatchFaultLog()

    # -- splittable sub-states (parallel engine) ---------------------------

    @classmethod
    def for_candidate(
        cls, plan: FaultPlan, base_minibatch: int, preempted: bool = False
    ) -> "FaultInjector":
        """A derived injector for one exploration candidate.

        The sub-state is keyed by the candidate's *global mini-batch
        ordinal* (the budget already spent when its first sample runs),
        not by which worker executes it -- so a wave of candidates
        injects the same faults whether it runs on one worker or eight,
        and a resumed run re-derives identical sub-states from the
        checkpointed spent count.  Windowed faults (throttle, OOM,
        preemption) see the true global cursor; rate faults draw from the
        candidate's own substream.
        """
        child = cls(plan)
        child._rng = np.random.default_rng(
            (plan.seed, _CANDIDATE_STREAM_TAG, base_minibatch)
        )
        child.minibatch = base_minibatch - 1  # begin_minibatch increments
        child._preempted = preempted
        return child

    def absorb(
        self, records, minibatch: int, preempted: bool = False
    ) -> None:
        """Merge a candidate sub-state's side effects back into this one.

        Called by the wirer's canonical merge, in candidate order, so the
        ledger and the mini-batch cursor end up identical for any worker
        count.  The cursor only moves forward: sequential phases that
        follow (stream, compare, production) must see every fault window
        the exploration already passed through.
        """
        for record in records:
            self.ledger.append(record)
            self.counts[record.kind] = self.counts.get(record.kind, 0) + 1
        self.minibatch = max(self.minibatch, minibatch)
        if preempted:
            self._preempted = True

    # -- bookkeeping ------------------------------------------------------

    def record(self, kind: str, detail: str = "") -> None:
        self.ledger.append(FaultRecord(kind, self.minibatch, detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def observe_into(self, registry) -> None:
        """Publish cumulative ``fault.injected.<kind>`` counts as gauges.

        Gauges, not counters: the injector is the source of truth and this
        may be called repeatedly (idempotent publication)."""
        for kind, count in sorted(self.counts.items()):
            registry.gauge(f"fault.injected.{kind}").set(count)
        registry.gauge("fault.injected.total").set(len(self.ledger))

    def summary(self) -> dict:
        return {
            "minibatches": self.minibatch + 1,
            "injected": dict(sorted(self.counts.items())),
            "total": len(self.ledger),
        }

    # -- lifecycle hooks (executor) ---------------------------------------

    def begin_minibatch(self) -> MinibatchFaultLog:
        """Advance the mini-batch cursor; fire scheduled preemption.

        Raises :class:`PreemptionError` exactly once when the cursor
        reaches the plan's preemption point."""
        self.minibatch += 1
        self._log = MinibatchFaultLog(minibatch=self.minibatch)
        spec = self.plan.spec(FAULT_PREEMPT)
        if (
            spec is not None
            and not self._preempted
            and spec.at is not None
            and self.minibatch >= spec.at
        ):
            self._preempted = True
            self.record(FAULT_PREEMPT, f"at mini-batch {self.minibatch}")
            raise PreemptionError(self.minibatch)
        return self._log

    @property
    def current_log(self) -> MinibatchFaultLog:
        return self._log

    def effective_memory_bytes(self, device: GPUSpec) -> int:
        """Usable device memory this mini-batch (co-tenant OOM window)."""
        spec = self.plan.spec(FAULT_OOM)
        if (
            spec is not None
            and spec.mem_limit_bytes is not None
            and spec.window.contains(max(0, self.minibatch))
        ):
            return min(device.memory_bytes, spec.mem_limit_bytes)
        return device.memory_bytes

    # -- per-kernel hooks (simulator) -------------------------------------

    def kernel_multiplier(self, label: str = "") -> float:
        """Composed slowdown for one kernel execution: throttle window
        times transient straggler, on top of any autoboost jitter the
        simulator already applies."""
        multiplier = 1.0
        throttle = self.plan.spec(FAULT_THROTTLE)
        if throttle is not None and throttle.window.contains(self.minibatch):
            multiplier *= throttle.factor
            if not self._log.throttled:
                self._log.throttled = True
                self.record(FAULT_THROTTLE, f"x{throttle.factor:g}")
        slow = self.plan.spec(FAULT_SLOWDOWN)
        if (
            slow is not None
            and slow.rate > 0
            and slow.window.contains(self.minibatch)
            and self._rng.random() < slow.rate
        ):
            multiplier *= slow.factor
            self._log.slowdowns += 1
            self.record(FAULT_SLOWDOWN, label or f"x{slow.factor:g}")
        return multiplier

    def launch_fails(self, label: str = "") -> bool:
        spec = self.plan.spec(FAULT_LAUNCH)
        if (
            spec is not None
            and spec.rate > 0
            and spec.window.contains(self.minibatch)
            and self._rng.random() < spec.rate
        ):
            self.record(FAULT_LAUNCH, label)
            return True
        return False

    def event_fault(self, record_index: int) -> None:
        """Decide drop/corruption for one profiled timestamp.

        Marks the fault in the current mini-batch log; the executor reads
        the log back and withholds or sanity-checks the measurement."""
        drop = self.plan.spec(FAULT_EVENT_DROP)
        if (
            drop is not None
            and drop.rate > 0
            and drop.window.contains(self.minibatch)
            and self._rng.random() < drop.rate
        ):
            self._log.dropped_records.add(record_index)
            self.record(FAULT_EVENT_DROP, f"record {record_index}")
            return
        corrupt = self.plan.spec(FAULT_EVENT_CORRUPT)
        if (
            corrupt is not None
            and corrupt.rate > 0
            and corrupt.window.contains(self.minibatch)
            and self._rng.random() < corrupt.rate
        ):
            # a corrupted timestamp inflates or deflates the apparent
            # duration by up to `factor`; large errors are detectably
            # absurd (executor plausibility check), small ones survive as
            # plausible-but-wrong samples for MAD rejection to catch
            factor = float(self._rng.uniform(1.0, max(1.0, corrupt.factor)))
            if self._rng.random() < 0.5:
                factor = 1.0 / factor
            self._log.corrupted_records[record_index] = factor
            self.record(FAULT_EVENT_CORRUPT, f"record {record_index} x{factor:.3f}")

    # -- persistence (checkpointing) --------------------------------------

    def state(self) -> dict:
        return {
            "minibatch": self.minibatch,
            "preempted": self._preempted,
            "rng": _encode_rng_state(self._rng.bit_generator.state),
            "counts": dict(self.counts),
            "ledger": [
                {"kind": r.kind, "minibatch": r.minibatch, "detail": r.detail}
                for r in self.ledger
            ],
        }

    def restore(self, state: dict) -> None:
        self.minibatch = state["minibatch"]
        self._preempted = state["preempted"]
        self._rng.bit_generator.state = _decode_rng_state(state["rng"])
        self.counts = dict(state["counts"])
        self.ledger = [
            FaultRecord(r["kind"], r["minibatch"], r["detail"])
            for r in state["ledger"]
        ]


def _encode_rng_state(state: dict) -> dict:
    """numpy Generator state -> JSON-safe dict (ints become strings: PCG64
    state words exceed 2**64 and some JSON consumers mangle big ints)."""
    def enc(value):
        if isinstance(value, dict):
            return {k: enc(v) for k, v in value.items()}
        if isinstance(value, (int, np.integer)):
            return str(int(value))
        return value

    return enc(state)


def _decode_rng_state(state: dict) -> dict:
    def dec(value):
        if isinstance(value, dict):
            return {k: dec(v) for k, v in value.items()}
        if isinstance(value, str) and (value.isdigit() or value.lstrip("-").isdigit()):
            return int(value)
        return value

    return dec(state)
