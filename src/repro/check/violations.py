"""Violation taxonomy and validation reports.

Every defect the schedule-correctness subsystem can detect is one
:class:`Violation` with a ``kind`` drawn from the fixed taxonomy below
(documented in ``docs/validation.md``):

* ``raw-race`` -- a producer->consumer data dependency of the source DFG
  is not enforced by the schedule's happens-before order;
* ``war-race`` -- two tensors share arena bytes but their lifetimes are
  not ordered, so a writer can clobber memory a reader still needs;
* ``missing-event`` -- a wait (or host sync) references an event no
  dispatch item ever records: the waiter blocks forever;
* ``deadlock`` -- the happens-before relation is cyclic (e.g. two streams
  waiting on each other's events);
* ``use-while-freed`` -- a buffer is returned to the arena while a unit
  that reads it is still unordered with respect to the free point;
* ``double-free`` -- the same tensor's buffer is freed twice;
* ``contiguity-broken`` -- a contiguity group's members are not laid out
  back to back, so the copy-free fused GEMM would read garbage;
* ``contiguity-group-overlap`` -- two tensors' arena ranges overlap in a
  no-reuse arena (typically two groups placed on top of each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: producer->consumer dependency not enforced by happens-before order
RAW_RACE = "raw-race"
#: overlapping arena ranges with unordered lifetimes (write-after-read)
WAR_RACE = "war-race"
#: wait/sync on an event that is never recorded
MISSING_EVENT = "missing-event"
#: cyclic happens-before relation: the schedule can never complete
DEADLOCK = "deadlock"
#: buffer freed while a reader is still unordered with the free point
USE_WHILE_FREED = "use-while-freed"
#: the same buffer freed twice
DOUBLE_FREE = "double-free"
#: contiguity-group members not adjacent in memory
GROUP_BROKEN = "contiguity-broken"
#: two tensors' arena byte ranges overlap in a no-reuse arena
GROUP_OVERLAP = "contiguity-group-overlap"

ALL_KINDS = (
    RAW_RACE,
    WAR_RACE,
    MISSING_EVENT,
    DEADLOCK,
    USE_WHILE_FREED,
    DOUBLE_FREE,
    GROUP_BROKEN,
    GROUP_OVERLAP,
)


@dataclass(frozen=True)
class Violation:
    """One detected schedule-correctness defect."""

    kind: str
    #: schedule units involved (producer/consumer, freer/reader, ...)
    unit_ids: tuple[int, ...]
    message: str
    #: DFG tensors involved, when the defect is about specific buffers
    node_ids: tuple[int, ...] = ()

    def __str__(self) -> str:
        units = ",".join(f"u{u}" for u in self.unit_ids)
        nodes = ",".join(f"%{n}" for n in self.node_ids)
        where = " ".join(part for part in (units, nodes) if part)
        return f"[{self.kind}] {where}: {self.message}" if where else (
            f"[{self.kind}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "unit_ids": list(self.unit_ids),
            "node_ids": list(self.node_ids),
            "message": self.message,
        }


@dataclass
class ValidationReport:
    """Outcome of validating one lowered schedule."""

    violations: list[Violation] = field(default_factory=list)
    #: kernel launches / host-compute items examined
    launches: int = 0
    #: producer->consumer unit edges checked for happens-before coverage
    dependencies: int = 0
    #: distinct events recorded by the schedule
    events: int = 0
    #: tensors examined by the memory checkers
    tensors: int = 0
    label: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts

    def kinds(self) -> set[str]:
        return {v.kind for v in self.violations}

    def summary(self) -> str:
        head = (
            f"{self.launches} launches, {self.dependencies} dependencies, "
            f"{self.events} events, {self.tensors} tensors checked"
        )
        if self.ok:
            return f"OK ({head})"
        lines = [f"{len(self.violations)} violation(s) ({head}):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "label": self.label,
            "launches": self.launches,
            "dependencies": self.dependencies,
            "events": self.events,
            "tensors": self.tensors,
            "violations": [v.to_dict() for v in self.violations],
        }


class ScheduleValidationError(RuntimeError):
    """Raised by validated execution when a schedule fails the checker."""

    def __init__(self, report: ValidationReport):
        self.report = report
        label = f" for {report.label!r}" if report.label else ""
        super().__init__(f"schedule validation failed{label}: {report.summary()}")

    def __reduce__(self):
        # default exception pickling would re-call __init__ with the
        # formatted message instead of the report; rebuild from the
        # report so the error crosses process boundaries intact
        return (ScheduleValidationError, (self.report,))
