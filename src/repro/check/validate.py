"""Top-level schedule validation entry points.

:func:`validate_schedule` is what the executor (``validate=True``), the
wirer, and the ``repro check`` CLI command all call.  The default pass
checks what can be decided for *any* schedule, concurrent or not:

* happens-before construction (``missing-event``, ``deadlock``),
* RAW race detection over every DFG dependency edge,
* arena-layout checks when the plan carries an
  :class:`~repro.gpu.memory.AllocationPlan`.

``deep=True`` additionally derives a lifetime-reuse plan and explicit
frees from the schedule and replays them (``war-race``,
``use-while-freed``, ``double-free``).  Reuse derivation linearizes the
schedule, which is only meaningful for sequential (single-stream)
programs -- native plans, golden schedules -- so deep mode is opt-in.
"""

from __future__ import annotations

from ..runtime.dispatcher import LoweredSchedule
from .hb import HappensBefore
from .memory import (
    check_arena_layout,
    check_frees,
    check_reuse_plan,
    derive_frees,
    schedule_node_order,
)
from .races import check_races
from .violations import ScheduleValidationError, ValidationReport


def validate_schedule(
    lowered: LoweredSchedule, deep: bool = False, label: str = ""
) -> ValidationReport:
    """Statically validate one lowered schedule; never raises."""
    report = ValidationReport(label=label or lowered.plan.label)
    items = lowered.items
    item_units = lowered.item_units

    hb = HappensBefore(items, item_units)
    report.launches = hb.work_count
    report.events = hb.event_count
    report.violations.extend(hb.violations)

    # A deadlocked schedule never runs; race/lifetime checks against a
    # cyclic relation would only pile noise on top of the real defect.
    if not hb.has_deadlock:
        check_races(lowered.graph, lowered.plan, item_units, hb, report)

    allocation = getattr(lowered.plan, "allocation", None)
    if allocation is not None:
        check_arena_layout(allocation, report)

    if deep and not hb.has_deadlock:
        from ..gpu.liveness import plan_with_reuse

        order = schedule_node_order(lowered.graph, lowered.plan, item_units)
        reuse = plan_with_reuse(lowered.graph, order=order)
        check_reuse_plan(lowered.graph, lowered.plan, reuse, item_units, hb, report)
        frees = derive_frees(lowered.graph, lowered.plan, item_units, hb)
        check_frees(lowered.graph, lowered.plan, frees, item_units, hb, report)

    return report


def assert_valid(
    lowered: LoweredSchedule, deep: bool = False, label: str = ""
) -> ValidationReport:
    """Validate and raise :class:`ScheduleValidationError` on violations."""
    report = validate_schedule(lowered, deep=deep, label=label)
    if not report.ok:
        raise ScheduleValidationError(report)
    return report
