"""Schedule-correctness subsystem: static race/liveness validation.

Astra's exploration is only trustworthy if every configuration it tries
-- stream assignments, dispatch orders, fusion ladders, allocation
strategies -- still respects the DFG's data dependencies and memory
lifetimes.  This package is the oracle: it reconstructs the simulator's
happens-before guarantees from a lowered schedule
(:class:`~repro.check.hb.HappensBefore`), checks every dependency edge
and allocation decision against them, and reports typed
:class:`~repro.check.violations.Violation`\\ s.

Entry points: :func:`validate_schedule` / :func:`assert_valid` for one
lowered schedule, ``Executor(validate=True)`` for validated execution,
and the ``repro check <model>`` CLI command.  See ``docs/validation.md``.
"""

from .hb import HappensBefore
from .memory import (
    FreeEvent,
    check_arena_layout,
    check_frees,
    check_reuse_plan,
    derive_frees,
    schedule_node_order,
    tensor_accessors,
)
from .races import check_races, dependency_edges, unit_item_spans
from .validate import assert_valid, validate_schedule
from .violations import (
    ALL_KINDS,
    DEADLOCK,
    DOUBLE_FREE,
    GROUP_BROKEN,
    GROUP_OVERLAP,
    MISSING_EVENT,
    RAW_RACE,
    USE_WHILE_FREED,
    WAR_RACE,
    ScheduleValidationError,
    ValidationReport,
    Violation,
)

__all__ = [
    "ALL_KINDS",
    "DEADLOCK",
    "DOUBLE_FREE",
    "GROUP_BROKEN",
    "GROUP_OVERLAP",
    "MISSING_EVENT",
    "RAW_RACE",
    "USE_WHILE_FREED",
    "WAR_RACE",
    "FreeEvent",
    "HappensBefore",
    "ScheduleValidationError",
    "ValidationReport",
    "Violation",
    "assert_valid",
    "check_arena_layout",
    "check_frees",
    "check_races",
    "check_reuse_plan",
    "dependency_edges",
    "derive_frees",
    "schedule_node_order",
    "tensor_accessors",
    "unit_item_spans",
    "validate_schedule",
]
