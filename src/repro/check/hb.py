"""Happens-before closure over a lowered dispatch-item list.

This module statically reconstructs the ordering guarantees the
discrete-event simulator (:mod:`repro.gpu.streams`) actually provides,
so the race detector can ask "does item *i* always complete before item
*j* starts?" without running anything.

The model mirrors the simulator's semantics exactly:

* **same-stream FIFO** -- a stream executes its kernels one at a time in
  launch order, so each :class:`LaunchItem` happens after the previous
  launch on its stream;
* **record/wait events** -- an event completes when its recording work
  completes (a ``record=`` on a launch stamps at that kernel's end; a
  bare :class:`RecordEventItem` piggybacks on the last kernel launched
  into its stream, or completes immediately if the stream is idle);
  a waiting launch starts only after every waited event completes;
* **dispatch barriers** -- :class:`HostSyncItem` blocks the dispatch
  thread (on one event, or on *all* in-flight work when ``event is
  None``), and :class:`HostComputeItem` stalls it for its duration; in
  both cases nothing dispatched later can start before the barrier
  resolves.

The relation is built as a DAG over *ordering nodes*: one per work item
(launch / host compute) plus virtual nodes for event records and
barriers.  An edge ``a -> b`` means "a completes before b starts".  The
closure is a bitset reachability computed in topological order; a cycle
means the schedule deadlocks (the simulator would raise at runtime),
and a wait on an event no item ever records is reported as
``missing-event``.
"""

from __future__ import annotations

from collections import deque

from ..gpu.events import EventId
from ..gpu.streams import (
    DispatchItem,
    HostComputeItem,
    HostSyncItem,
    LaunchItem,
    RecordEventItem,
)
from .violations import DEADLOCK, MISSING_EVENT, Violation


class HappensBefore:
    """Static happens-before relation for one dispatch-item list.

    ``item_units`` maps item indices (launches and host computes) to the
    schedule unit that emitted them; it is only used to attribute
    violations to units and may be partial.
    """

    def __init__(
        self,
        items: list[DispatchItem],
        item_units: dict[int, int] | None = None,
    ):
        self.items = items
        self.item_units = dict(item_units or {})
        #: missing-event / deadlock violations found while building
        self.violations: list[Violation] = []
        #: number of launch + host-compute items (the race detector's nodes)
        self.work_count = 0
        #: number of distinct events the schedule records
        self.event_count = 0

        self._item_node: dict[int, int] = {}
        self._node_item: list[int | None] = []
        self._in_edges: list[list[int]] = []
        self._labels: list[str] = []
        self._build()
        self._close()

    # -- construction ----------------------------------------------------

    def _new_node(self, label: str, item_index: int | None = None) -> int:
        nid = len(self._in_edges)
        self._in_edges.append([])
        self._labels.append(label)
        self._node_item.append(item_index)
        if item_index is not None:
            self._item_node[item_index] = nid
        return nid

    def _build(self) -> None:
        last_on_stream: dict[int, int] = {}
        last_barrier: int | None = None
        # event -> ordering node whose completion stamps it (first record wins,
        # matching the simulator: once stamped, an event stays complete)
        event_source: dict[EventId, int] = {}
        # (waiting node, event, waiting item index) resolved after the walk,
        # because a wait may legally name an event recorded later in dispatch
        # order (cross-stream); unresolvable waits are missing-event.
        pending_waits: list[tuple[int, EventId, int]] = []

        for idx, item in enumerate(self.items):
            if isinstance(item, LaunchItem):
                node = self._new_node(
                    f"launch[{idx}] {item.kernel.name} s{item.stream}", idx
                )
                self.work_count += 1
                edges = self._in_edges[node]
                prev = last_on_stream.get(item.stream)
                if prev is not None:
                    edges.append(prev)
                if last_barrier is not None:
                    edges.append(last_barrier)
                for event in item.waits:
                    pending_waits.append((node, event, idx))
                if item.record is not None:
                    event_source.setdefault(item.record, node)
                last_on_stream[item.stream] = node
            elif isinstance(item, RecordEventItem):
                # The record is itself subject to dispatch order: it cannot
                # stamp before preceding barriers resolve, and it stamps no
                # earlier than the last kernel launched into its stream.
                node = self._new_node(f"record[{idx}] {item.event} s{item.stream}")
                edges = self._in_edges[node]
                prev = last_on_stream.get(item.stream)
                if prev is not None:
                    edges.append(prev)
                if last_barrier is not None:
                    edges.append(last_barrier)
                event_source.setdefault(item.event, node)
            elif isinstance(item, HostComputeItem):
                # Host work is both a work node and a dispatch barrier: it
                # completes before anything dispatched after it starts.
                node = self._new_node(f"host[{idx}] {item.label}", idx)
                self.work_count += 1
                if last_barrier is not None:
                    self._in_edges[node].append(last_barrier)
                last_barrier = node
            elif isinstance(item, HostSyncItem):
                what = "all" if item.event is None else str(item.event)
                node = self._new_node(f"sync[{idx}] {what}")
                edges = self._in_edges[node]
                if last_barrier is not None:
                    edges.append(last_barrier)
                if item.event is None:
                    # blocks until every in-flight kernel completes; the last
                    # launch per stream dominates the rest via stream FIFO
                    edges.extend(last_on_stream.values())
                else:
                    pending_waits.append((node, item.event, idx))
                last_barrier = node
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown dispatch item {item!r}")

        self.event_count = len(event_source)
        for node, event, idx in pending_waits:
            source = event_source.get(event)
            if source is None:
                unit = self.item_units.get(idx)
                self.violations.append(
                    Violation(
                        MISSING_EVENT,
                        unit_ids=(unit,) if unit is not None else (),
                        message=(
                            f"{self._labels[node]} waits on {event}, "
                            "which no item records"
                        ),
                    )
                )
            else:
                self._in_edges[node].append(source)

    # -- closure ---------------------------------------------------------

    def _close(self) -> None:
        n_nodes = len(self._in_edges)
        out: list[list[int]] = [[] for _ in range(n_nodes)]
        indegree = [0] * n_nodes
        for child, parents in enumerate(self._in_edges):
            indegree[child] = len(parents)
            for parent in parents:
                out[parent].append(child)

        # Kahn topological order; reach[n] is a bitset of ancestor nodes.
        reach = [0] * n_nodes
        processed = [False] * n_nodes
        queue = deque(n for n in range(n_nodes) if indegree[n] == 0)
        done = 0
        while queue:
            node = queue.popleft()
            processed[node] = True
            done += 1
            mask = reach[node] | (1 << node)
            for child in out[node]:
                reach[child] |= mask
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        self._reach = reach
        self._processed = processed

        if done != n_nodes:
            stuck = [n for n in range(n_nodes) if not processed[n]]
            units = sorted(
                {
                    self.item_units[self._node_item[n]]
                    for n in stuck
                    if self._node_item[n] is not None
                    and self._node_item[n] in self.item_units
                }
            )
            shown = ", ".join(self._labels[n] for n in stuck[:4])
            more = f" (+{len(stuck) - 4} more)" if len(stuck) > 4 else ""
            self.violations.append(
                Violation(
                    DEADLOCK,
                    unit_ids=tuple(units),
                    message=(
                        f"cyclic happens-before relation; the dispatch list can "
                        f"never complete: {shown}{more}"
                    ),
                )
            )

    # -- queries ---------------------------------------------------------

    @property
    def has_deadlock(self) -> bool:
        return not all(self._processed)

    def is_work_item(self, item_index: int) -> bool:
        return item_index in self._item_node

    def ordered(self, item_i: int, item_j: int) -> bool:
        """True if work item ``item_i`` is guaranteed to complete before
        work item ``item_j`` starts, on every execution of the schedule.

        Conservative under a deadlock: unreachable portions report
        unordered (the deadlock itself is already a violation).
        """
        a = self._item_node[item_i]
        b = self._item_node[item_j]
        return bool((self._reach[b] >> a) & 1)

    def describe_item(self, item_index: int) -> str:
        return self._labels[self._item_node[item_index]]
