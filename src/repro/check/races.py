"""RAW race detection over lowered schedules.

Every producer->consumer tensor edge of the source :class:`Graph` must be
enforced by the schedule: the producing unit's last dispatch item has to
be happens-before-ordered ahead of the consuming unit's *first* item
(pre-copies may already read the producer's outputs, e.g. the gather
copy feeding a fused GEMM).  Edges inside one unit are enforced by the
kernel itself and are not checked.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..runtime.plan import ExecutionPlan
from .hb import HappensBefore
from .violations import RAW_RACE, ValidationReport, Violation


def unit_item_spans(item_units: dict[int, int]) -> dict[int, tuple[int, int]]:
    """unit id -> (first, last) work-item index it emitted.

    Within one unit the items are totally ordered (host syncs and host
    compute block dispatch, pre-copies and the main kernel share the
    unit's stream in FIFO order), so the span's endpoints bound every
    access the unit makes.
    """
    spans: dict[int, tuple[int, int]] = {}
    for idx, uid in item_units.items():
        if uid in spans:
            lo, hi = spans[uid]
            spans[uid] = (min(lo, idx), max(hi, idx))
        else:
            spans[uid] = (idx, idx)
    return spans


def dependency_edges(
    graph: Graph, plan: ExecutionPlan
) -> dict[tuple[int, int], set[int]]:
    """(producer unit, consumer unit) -> tensor node ids carried across.

    Mirrors :meth:`Dispatcher.unit_dependencies` exactly: nodes not
    covered by any unit (reshapes, fills) are transparent, and a covered
    leaf counts as produced by its covering (pack) unit.
    """
    node_unit: dict[int, int] = {}
    for unit in plan.units:
        for nid in unit.node_ids:
            node_unit[nid] = unit.unit_id

    cache: dict[int, frozenset[int]] = {}

    def producing_units(node_id: int) -> frozenset[int]:
        if node_id in cache:
            return cache[node_id]
        node = graph.node(node_id)
        if node_id in node_unit:
            result = frozenset((node_unit[node_id],))
        elif node.is_leaf:
            result = frozenset()
        else:
            acc: set[int] = set()
            for inp in node.input_ids:
                acc |= producing_units(inp)
            result = frozenset(acc)
        cache[node_id] = result
        return result

    edges: dict[tuple[int, int], set[int]] = {}
    for unit in plan.units:
        for nid in unit.node_ids:
            for inp in graph.node(nid).input_ids:
                for producer in producing_units(inp):
                    if producer != unit.unit_id:
                        edges.setdefault((producer, unit.unit_id), set()).add(inp)
    return edges


def check_races(
    graph: Graph,
    plan: ExecutionPlan,
    item_units: dict[int, int],
    hb: HappensBefore,
    report: ValidationReport,
) -> None:
    """Append a ``raw-race`` violation for every unenforced dependency."""
    spans = unit_item_spans(item_units)
    edges = dependency_edges(graph, plan)
    report.dependencies += len(edges)
    for (producer, consumer), node_ids in sorted(
        edges.items(), key=lambda kv: kv[0]
    ):
        p_span = spans.get(producer)
        c_span = spans.get(consumer)
        if p_span is None or c_span is None:
            continue  # a unit that emitted no work cannot race
        if not hb.ordered(p_span[1], c_span[0]):
            report.violations.append(
                Violation(
                    RAW_RACE,
                    unit_ids=(producer, consumer),
                    node_ids=tuple(sorted(node_ids)),
                    message=(
                        f"unit {consumer} reads outputs of unit {producer}, but "
                        f"{hb.describe_item(c_span[0])} is not ordered after "
                        f"{hb.describe_item(p_span[1])}"
                    ),
                )
            )
