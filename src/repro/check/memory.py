"""Memory-safety checks: arena layout, reuse lifetimes, and frees.

Three families of checks, all replaying allocation decisions against the
schedule's happens-before order:

* :func:`check_arena_layout` -- validates a no-reuse
  :class:`~repro.gpu.memory.AllocationPlan`: every contiguity group must
  actually be contiguous (``contiguity-broken``) and no two placed
  tensors may overlap (``contiguity-group-overlap``);
* :func:`check_reuse_plan` -- validates a
  :class:`~repro.gpu.liveness.ReusePlan` against the schedule: two
  tensors sharing arena bytes must have happens-before-ordered lifetimes
  (``war-race``), where a tensor's lifetime is the span of the units that
  write or read its buffer;
* :func:`check_frees` -- replays explicit :class:`FreeEvent`\\ s,
  catching ``double-free`` and ``use-while-freed``.

The buffer model matches :mod:`repro.gpu.liveness` exactly: every DFG
node id owns its own buffer; a tensor is written by the units covering
it and read by the units covering its direct consumers.  Accesses inside
a single unit are assumed reads-before-writes (a fused kernel may
legally operate in place), so same-unit pairs never race.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.liveness import ReusePlan
from ..gpu.memory import AllocationPlan
from ..ir.graph import Graph
from ..runtime.plan import ExecutionPlan
from .hb import HappensBefore
from .races import unit_item_spans
from .violations import (
    DOUBLE_FREE,
    GROUP_BROKEN,
    GROUP_OVERLAP,
    USE_WHILE_FREED,
    WAR_RACE,
    ValidationReport,
    Violation,
)


@dataclass(frozen=True)
class FreeEvent:
    """Return ``node_id``'s buffer to the arena once the work item at
    ``after_item`` completes."""

    node_id: int
    after_item: int


# -- buffer/access model ---------------------------------------------------


def tensor_accessors(graph: Graph, plan: ExecutionPlan) -> dict[int, frozenset[int]]:
    """node id -> units that touch that node's buffer.

    Writers are the units covering the node (a leaf covered by a pack
    unit is written by the pack copy); readers are the units covering the
    node's direct consumers.  Uncovered nodes (reshapes, fills) own their
    own buffer per the liveness model and contribute no work of their
    own.
    """
    covering: dict[int, set[int]] = {}
    for unit in plan.units:
        for nid in unit.node_ids:
            covering.setdefault(nid, set()).add(unit.unit_id)

    accessors: dict[int, set[int]] = {}
    for node in graph.nodes:
        nid = node.node_id
        units = set(covering.get(nid, ()))
        for consumer in graph.consumers(nid):
            units |= covering.get(consumer, set())
        if units:
            accessors[nid] = units
    return {nid: frozenset(units) for nid, units in accessors.items()}


def schedule_node_order(
    graph: Graph, plan: ExecutionPlan, item_units: dict[int, int]
) -> list[int]:
    """All node ids ordered by when the schedule materializes them.

    Covered nodes sit at their unit's first work item; leaves precede
    everything; uncovered nodes inherit the latest position among their
    inputs.  The result is a valid execution order for
    :func:`~repro.gpu.liveness.plan_with_reuse` (consumers never precede
    producers; ties break by node id, which is trace order).
    """
    spans = unit_item_spans(item_units)
    position: dict[int, float] = {}
    for unit in plan.units:
        if unit.unit_id not in spans:
            continue
        first = float(spans[unit.unit_id][0])
        for nid in unit.node_ids:
            position[nid] = min(position.get(nid, first), first)

    def pos_of(nid: int) -> float:
        if nid in position:
            return position[nid]
        node = graph.node(nid)
        if node.is_leaf:
            result = -1.0
        else:
            result = max((pos_of(inp) for inp in node.input_ids), default=-1.0)
        position[nid] = result
        return result

    for node in graph.nodes:
        pos_of(node.node_id)
    return sorted(position, key=lambda nid: (position[nid], nid))


# -- arena layout (no-reuse AllocationPlan) --------------------------------


def check_arena_layout(allocation: AllocationPlan, report: ValidationReport) -> None:
    graph = allocation.graph
    for group in allocation.groups:
        if not allocation.is_contiguous(group.node_ids):
            report.violations.append(
                Violation(
                    GROUP_BROKEN,
                    unit_ids=(),
                    node_ids=tuple(group.node_ids),
                    message=(
                        f"contiguity group {group.label!r} is not laid out "
                        "back to back; a copy-free fused GEMM over it would "
                        "read the wrong bytes"
                    ),
                )
            )

    ranges: list[tuple[int, int, int]] = []
    for node in graph.nodes:
        size = node.spec.size_bytes
        if size <= 0:
            continue
        offset = allocation.offset_of(node.node_id)
        ranges.append((offset, offset + size, node.node_id))
    report.tensors += len(ranges)

    # the arena never reuses space, so ANY byte overlap is a layout bug
    ranges.sort()
    high_end, high_nid = -1, -1
    for offset, end, nid in ranges:
        if offset < high_end:
            report.violations.append(
                Violation(
                    GROUP_OVERLAP,
                    unit_ids=(),
                    node_ids=(high_nid, nid),
                    message=(
                        f"tensors %{high_nid} ({_group_of(allocation, high_nid)}) "
                        f"and %{nid} ({_group_of(allocation, nid)}) overlap in "
                        "a no-reuse arena"
                    ),
                )
            )
        if end > high_end:
            high_end, high_nid = end, nid


def _group_of(allocation: AllocationPlan, nid: int) -> str:
    label = allocation.group_label(nid)
    return f"group {label!r}" if label is not None else "ungrouped"


# -- lifetime-aware reuse (ReusePlan) --------------------------------------


def check_reuse_plan(
    graph: Graph,
    plan: ExecutionPlan,
    reuse: ReusePlan,
    item_units: dict[int, int],
    hb: HappensBefore,
    report: ValidationReport,
    alignment: int = 256,
) -> None:
    """Every pair of tensors sharing arena bytes must have lifetimes
    ordered one way or the other by happens-before."""
    spans = unit_item_spans(item_units)
    accessors = tensor_accessors(graph, plan)

    def aligned(n: int) -> int:
        rem = n % alignment
        return n if rem == 0 else n + alignment - rem

    ranges: list[tuple[int, int, int, tuple[int, ...]]] = []
    for nid, offset in reuse.offsets.items():
        units = tuple(sorted(u for u in accessors.get(nid, ()) if u in spans))
        if not units:
            continue
        size = aligned(max(1, graph.node(nid).spec.size_bytes))
        ranges.append((offset, offset + size, nid, units))
    report.tensors += len(ranges)

    def fully_ordered(first: tuple[int, ...], then: tuple[int, ...]) -> bool:
        for ua in first:
            for ub in then:
                if ua == ub:
                    continue  # intra-unit accesses cannot race
                if not hb.ordered(spans[ua][1], spans[ub][0]):
                    return False
        return True

    ranges.sort()
    active: list[tuple[int, int, int, tuple[int, ...]]] = []
    for offset, end, nid, units in ranges:
        active = [a for a in active if a[1] > offset]
        for _aoff, _aend, other, other_units in active:
            if fully_ordered(other_units, units) or fully_ordered(units, other_units):
                continue
            report.violations.append(
                Violation(
                    WAR_RACE,
                    unit_ids=tuple(sorted(set(other_units) | set(units))),
                    node_ids=(other, nid),
                    message=(
                        f"tensors %{other} and %{nid} share arena bytes but "
                        "their lifetimes are not happens-before ordered"
                    ),
                )
            )
        active.append((offset, end, nid, units))


# -- explicit frees --------------------------------------------------------


def derive_frees(
    graph: Graph,
    plan: ExecutionPlan,
    item_units: dict[int, int],
    hb: HappensBefore,
) -> list[FreeEvent]:
    """Frees a correct allocator would issue: each non-leaf, non-output
    tensor is freed after the access unit that dominates all others
    (exists for sequential schedules; unordered concurrent readers mean
    the tensor is conservatively never freed)."""
    spans = unit_item_spans(item_units)
    accessors = tensor_accessors(graph, plan)
    keep = set(graph.outputs)
    frees: list[FreeEvent] = []
    for nid in sorted(accessors):
        if graph.node(nid).is_leaf or nid in keep:
            continue
        lasts = sorted({spans[u][1] for u in accessors[nid] if u in spans})
        for candidate in lasts:
            if all(
                other == candidate or hb.ordered(other, candidate)
                for other in lasts
            ):
                frees.append(FreeEvent(nid, candidate))
                break
    return frees


def check_frees(
    graph: Graph,
    plan: ExecutionPlan,
    frees: list[FreeEvent],
    item_units: dict[int, int],
    hb: HappensBefore,
    report: ValidationReport,
) -> None:
    spans = unit_item_spans(item_units)
    accessors = tensor_accessors(graph, plan)
    freed_at: dict[int, int] = {}
    for free in frees:
        free_unit = item_units.get(free.after_item)
        if free.node_id in freed_at:
            prior_unit = item_units.get(freed_at[free.node_id])
            report.violations.append(
                Violation(
                    DOUBLE_FREE,
                    unit_ids=tuple(
                        sorted({u for u in (prior_unit, free_unit) if u is not None})
                    ),
                    node_ids=(free.node_id,),
                    message=f"tensor %{free.node_id} is freed twice",
                )
            )
            continue
        freed_at[free.node_id] = free.after_item
        for unit in sorted(accessors.get(free.node_id, ())):
            span = spans.get(unit)
            if span is None:
                continue
            last = span[1]
            if (
                last == free.after_item
                or unit == free_unit
                or hb.ordered(last, free.after_item)
            ):
                continue
            report.violations.append(
                Violation(
                    USE_WHILE_FREED,
                    unit_ids=(unit,) if free_unit is None else (free_unit, unit),
                    node_ids=(free.node_id,),
                    message=(
                        f"tensor %{free.node_id} is freed after "
                        f"{hb.describe_item(free.after_item)} but unit {unit} "
                        "still accesses it without ordering"
                    ),
                )
            )
