"""Command-line front-end: ``python -m repro <command>``.

Commands:

* ``optimize``  — trace a model, run the Astra exploration, print the report
  (``--json`` for a machine-readable document with the convergence curve
  and profile-index hit rates; ``--metrics-out`` / ``--report-out`` to
  persist the metrics registry and the per-mini-batch JSONL report)
* ``sweep``     — speedups across mini-batch sizes for one model
* ``baselines`` — native / XLA-style / cuDNN-style / Astra side by side
* ``inspect``   — dump what the enumerator found (fusion groups, strategies,
  epochs) for a model, without running any exploration
* ``trace``     — emit a Chrome trace-event ``.trace.json`` of one executed
  mini-batch, openable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``; see ``docs/observability.md``
* ``check``     — schedule-correctness validation: deep-check the native
  lowering, then run the full exploration in validated mode so every
  configuration Astra tries is race/liveness-checked; exits non-zero on
  any violation (see ``docs/validation.md``)
* ``chaos``     — fault-injection sweep: run the exploration under each
  cell of a fault matrix (stragglers, throttling, launch failures,
  dropped/corrupted timestamps, device OOM, preemption), assert the
  degradation invariant and the fault accounting, and print a resilience
  report; exits non-zero if any cell fails (see ``docs/robustness.md``)
* ``bench``     — time the exploration itself: baseline (no cache, no
  pruning) vs fast path, per phase, writing ``BENCH_<model>.json``;
  exits non-zero if the fast path's winner diverges from the exhaustive
  winner or the cache never hits (see ``docs/performance.md``);
  ``--compare`` diffs the fresh document against a committed baseline
  and exits non-zero on a winner change or a relative-throughput
  regression; ``--learned`` adds the learned-top-k leg
  (see ``docs/learning.md``)
* ``train``     — harvest exhaustive-exploration corpora and fit the
  learned cost model, writing a versioned artifact that ``optimize
  --learned`` / ``bench --learned`` consume (see ``docs/learning.md``)
* ``analyze``   — critical-path analysis of a ``.trace.json`` produced by
  ``repro trace``: per-kernel critical-path contribution, per-stream
  busy/stall attribution, dependency slack; ``--scale`` / ``--swap``
  project what-if timelines without re-running (see
  ``docs/observability.md``)
* ``explain``   — run the exploration with provenance recording and print,
  per adaptive variable, the winner, the runner-up, and the measurements
  that decided it (see ``docs/observability.md``)
* ``fleet``     — heterogeneous fleet strategy search: data-parallel
  degree, pipeline stage cuts and per-stage device placement explored as
  adaptive variables over a mixed P100/V100 fleet, with admissible-bound
  pruning verified against the exhaustive sweep; ``--bench`` writes
  ``BENCH_fleet_<model>.json`` (see ``docs/distributed.md``)
"""

from __future__ import annotations

import argparse
import json
import sys

from . import AstraSession
from .baselines import cudnn_applicable, run_cudnn, run_native, run_xla
from .baselines.native import native_plan
from .core import AstraFeatures, Enumerator, count_configurations
from .gpu import DEVICES, P100
from .models import MODEL_BUILDERS
from .obs import MetricsRegistry, RunReporter
from .obs.trace import PID_GPU, validate_chrome_trace, write_chrome_trace
from .runtime.executor import Executor

_CONFIG_MODULES = {
    "scrnn": "repro.models.scrnn",
    "milstm": "repro.models.milstm",
    "sublstm": "repro.models.sublstm",
    "stacked_lstm": "repro.models.stacked_lstm",
    "gnmt": "repro.models.gnmt",
}


def _build(args):
    module = __import__(_CONFIG_MODULES[args.model], fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(
        batch_size=args.batch, seq_len=args.seq_len,
        use_embedding=not args.no_embedding,
    )
    return MODEL_BUILDERS[args.model](config)


def _obs_hooks(args) -> tuple[MetricsRegistry | None, RunReporter | None]:
    """Instantiate observability hooks only when some output wants them."""
    wants = args.json or args.metrics_out or getattr(args, "report_out", None)
    if not wants:
        return None, None
    return MetricsRegistry(), RunReporter()


def _write_obs_outputs(args, metrics, reporter) -> None:
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.to_json(indent=2))
    if getattr(args, "report_out", None) and reporter is not None:
        reporter.write_jsonl(args.report_out)


def cmd_optimize(args) -> int:
    from .core.measurement import ROBUST
    from .faults import FaultPlan, PreemptionError
    from .perf import FastPath

    model = _build(args)
    device = DEVICES[args.device]
    metrics, reporter = _obs_hooks(args)
    faults = None
    if getattr(args, "faults", None):
        with open(args.faults) as fh:
            faults = FaultPlan.loads(fh.read())
    # the CLI defaults to the full fast path; --no-cache / --no-prune are
    # the escape hatches back to from-scratch lowering / exhaustive search
    fast = FastPath(cache=not args.no_cache, prune=not args.no_prune)
    session = AstraSession(
        model, device=device, features=args.features, seed=args.seed,
        metrics=metrics, reporter=reporter,
        policy=ROBUST if getattr(args, "robust", False) else None,
        faults=faults,
        checkpoint_path=getattr(args, "checkpoint", None),
        fast=fast,
        workers=getattr(args, "workers", None),
        store=getattr(args, "store", None),
        server=getattr(args, "server", None),
        learned=getattr(args, "learned", None),
    )
    try:
        report = session.optimize(max_minibatches=args.budget)
    except PreemptionError as exc:
        print(f"preempted at mini-batch {exc.minibatch}"
              + (f"; exploration state saved to {exc.checkpoint_path} -- "
                 "rerun the same command to resume"
                 if exc.checkpoint_path else " (no --checkpoint path set)"),
              file=sys.stderr)
        return 3
    finally:
        session.close()
    astra = report.astra
    _write_obs_outputs(args, metrics, reporter)
    if args.json:
        doc = reporter.summary(
            astra, native_time_us=report.native_time_us, metrics=metrics
        )
        doc["model"] = args.model
        doc["batch"] = args.batch
        doc["device"] = args.device
        doc["fast_path"] = astra.fast_path
        print(json.dumps(doc, indent=2))
        return 0
    print(f"model: {args.model}  batch={args.batch}  device={args.device}  "
          f"features=Astra_{args.features}")
    print(f"native:   {report.native_time_us / 1000:9.3f} ms/mini-batch")
    print(f"astra:    {astra.best_time_us / 1000:9.3f} ms/mini-batch")
    print(f"speedup:  {report.speedup_over_native:9.2f} x")
    print(f"explored: {astra.configs_explored} mini-batches  "
          f"(profiling overhead {astra.profiling_overhead * 100:.2f}%)")
    fast_path = astra.fast_path
    if fast_path:
        cache_stats = fast_path.get("cache") or {}
        parts = [
            f"cache {'on' if fast_path.get('cache_enabled') else 'off'}",
            f"prune {'on' if fast_path.get('prune_enabled') else 'off'}",
        ]
        if cache_stats:
            parts.append(f"cache hit rate {cache_stats.get('hit_rate', 0.0) * 100:.1f}%")
        if fast_path.get("prune_enabled"):
            parts.append(f"{fast_path.get('choices_pruned', 0)} of "
                         f"{fast_path.get('choices_total', 0)} choices pruned")
        print(f"fast path: {'  '.join(parts)}")
        par = fast_path.get("parallel")
        if par:
            print(f"parallel: {par['workers']} workers ({par['pool']} pool)  "
                  f"{par['candidates']} candidates in {par['rounds']} rounds  "
                  f"worker busy {par['worker_busy_s']:.2f}s")
        learned = fast_path.get("learned")
        if learned:
            if learned.get("rejected"):
                print(f"learned: artifact rejected ({learned['rejected']}); "
                      f"fell back to full measurement")
            else:
                whatif = learned.get("whatif", {})
                print(f"learned: model {learned.get('fingerprint', '?')[:12]} "
                      f"({learned.get('records', 0)} records)  "
                      f"cut {learned.get('choices_pruned', 0)} choices over "
                      f"{learned.get('vars_ranked', 0)} variables  "
                      f"what-if {whatif.get('checked', 0)} checks "
                      f"(max {whatif.get('max_rel_error', 0.0) * 100:.1f}%"
                      f"{', ok' if whatif.get('ok') else ', REJECTED'})")
    warm = astra.warm
    if warm:
        sources = ", ".join(
            f"{s['source']}: {s['seeded_entries']}" for s in warm.get("sources", ())
        )
        digest = warm.get("digest") or ""
        print(f"warm start: {warm.get('seeded_entries', 0)} entries seeded "
              f"({sources})  job {digest[:12]}")
    print(f"allocation strategy: {astra.best_strategy.label}")
    if astra.memory:
        print(f"memory:   arena {astra.memory['arena_bytes'] / 1024**2:.1f} MiB "
              f"of {astra.memory['capacity_bytes'] / 1024**3:.0f} GiB "
              f"({astra.memory['utilization'] * 100:.2f}%)")
    if astra.degraded:
        print("DEGRADED: exploration could not beat native; "
              "custom-wired to the native plan")
    if astra.fault_summary.get("injected"):
        injected = ", ".join(f"{k}={v}" for k, v in
                             sorted(astra.fault_summary["injected"].items()))
        print(f"faults injected: {injected}")
    if args.verbose:
        print("\nchosen configuration:")
        for name, choice in sorted(astra.assignment.items()):
            print(f"  {name} -> {choice}")
    return 0


def cmd_sweep(args) -> int:
    device = DEVICES[args.device]
    batches = [int(b) for b in args.batches.split(",")]
    rows: list[dict] = []
    metrics_by_batch: dict[str, dict] = {}
    if not args.json:
        print(f"{'batch':>6}  {'native(ms)':>11}  {'astra(ms)':>10}  {'speedup':>8}")
    for batch in batches:
        args.batch = batch
        model = _build(args)
        metrics, reporter = _obs_hooks(args)
        report = AstraSession(
            model, device=device, features=args.features, seed=args.seed,
            metrics=metrics, reporter=reporter,
        ).optimize(max_minibatches=args.budget)
        rows.append({
            "batch": batch,
            "native_time_us": report.native_time_us,
            "astra_time_us": report.best_time_us,
            "speedup_over_native": report.speedup_over_native,
            "configs_explored": report.configs_explored,
            "convergence_curve": (
                [[s, v] for s, v in reporter.convergence_curve()]
                if reporter is not None else []
            ),
        })
        if metrics is not None:
            metrics_by_batch[str(batch)] = metrics.snapshot()
        if not args.json:
            print(f"{batch:6d}  {report.native_time_us / 1000:11.3f}  "
                  f"{report.best_time_us / 1000:10.3f}  "
                  f"{report.speedup_over_native:8.2f}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump({"version": 1, "metrics_by_batch": metrics_by_batch}, fh,
                      indent=2)
    if args.json:
        print(json.dumps({
            "version": 1, "model": args.model, "device": args.device,
            "sweep": rows,
        }, indent=2))
    return 0


def cmd_baselines(args) -> int:
    model = _build(args)
    device = DEVICES[args.device]
    native = run_native(model.graph, device).total_time_us
    xla = run_xla(model.graph, device).total_time_us
    print(f"native:   {native / 1000:9.3f} ms   1.00x")
    print(f"xla:      {xla / 1000:9.3f} ms   {native / xla:.2f}x")
    if cudnn_applicable(model.graph):
        cudnn = run_cudnn(model.graph, device).total_time_us
        print(f"cudnn:    {cudnn / 1000:9.3f} ms   {native / cudnn:.2f}x")
    else:
        print("cudnn:    not applicable (long-tail structure)")
    report = AstraSession(
        model, device=device, features=args.features, seed=args.seed
    ).optimize(max_minibatches=args.budget)
    print(f"astra:    {report.best_time_us / 1000:9.3f} ms   "
          f"{report.speedup_over_native:.2f}x")
    return 0


def cmd_inspect(args) -> int:
    model = _build(args)
    device = DEVICES[args.device]
    features = AstraFeatures.preset(args.features)
    enum = Enumerator(model.graph, device, features)
    graph = model.graph
    print(f"graph: {len(graph)} nodes, {len(graph.gemm_nodes())} GEMMs, "
          f"{graph.total_flops() / 1e9:.2f} Gflops/mini-batch")
    print(f"allocation strategies: "
          f"{[s.label for s in enum.strategies]}")
    print(f"fusion groups ({len(enum.analysis.groups)}):")
    for group in enum.analysis.groups:
        dims = group.launch_dims(group.members)
        print(f"  {group.group_id:56s} axis={group.axis} size={group.size} "
              f"max-fused={dims[0]}x{dims[1]}x{dims[2]}")
    print(f"lone ladders: "
          f"{sum(1 for m in enum.analysis.singletons if m.is_ladder)}, "
          f"plain GEMMs: "
          f"{sum(1 for m in enum.analysis.singletons if not m.is_ladder)}")
    tree = enum.build_fk_tree(enum.strategies[0])
    print(f"fk update tree: {sum(1 for _ in tree.variables())} variables, "
          f"<= {count_configurations(tree)} trials (parallel mode)")
    if features.streams:
        partition, stree = enum.prepare_stream_phase(
            enum.strategies[0], tree.assignment()
        )
        print(f"stream phase: {partition.num_super_epochs} super-epochs, "
              f"{len(partition.epochs)} epochs, "
              f"<= {count_configurations(stree)} trials")
    return 0


def cmd_trace(args) -> int:
    from .obs.trace import Tracer, chrome_trace, merge_host_trace

    model = _build(args)
    device = DEVICES[args.device]
    graph = model.graph
    workers = getattr(args, "workers", None)
    tracer = Tracer() if (workers and args.plan == "astra") else None
    if args.plan == "native":
        plan = native_plan(graph)
        label = f"{args.model}/native"
    else:
        session = AstraSession(
            model, device=device, features=args.features, seed=args.seed,
            tracer=tracer, workers=workers,
        )
        try:
            plan = session.optimize(max_minibatches=args.budget).astra.best_plan
        finally:
            session.close()
        label = f"{args.model}/astra"
    executor = Executor(graph, device, seed=args.seed)
    lowered = executor.dispatcher.lower(plan)
    result = executor.run_lowered(lowered).raw
    out = args.output or f"{args.model}.trace.json"
    doc = chrome_trace(result, lowered=lowered, device=device, label=label)
    if tracer is not None:
        # fold the optimizer's own timeline (with per-worker tracks) in
        # next to the simulated mini-batch
        merge_host_trace(doc, tracer.chrome())
    with open(out, "w") as fh:
        json.dump(doc, fh)
    summary = validate_chrome_trace(doc)
    gpu_tracks = sum(1 for pid, _tid in summary["tracks"] if pid == PID_GPU)
    print(f"wrote {out}: {summary['events']} events, "
          f"{len(result.records)} kernels on {gpu_tracks} stream track(s) "
          f"+ CPU dispatch; mini-batch {result.total_time_us / 1000:.3f} ms "
          f"({plan.label})")
    if tracer is not None:
        print(f"includes the optimizer host timeline ({workers} workers)")
    print("open it in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _parse_indexed(value: str, flag: str, cast):
    try:
        index_text, detail = value.split(":", 1)
        return int(index_text), cast(detail)
    except (ValueError, TypeError):
        raise SystemExit(
            f"bad {flag} {value!r}: expected INDEX:"
            f"{'FACTOR' if cast is float else 'LIBRARY'}"
        )


def cmd_analyze(args) -> int:
    from .obs.analysis import analyze_trace

    with open(args.trace) as fh:
        doc = json.load(fh)
    report = analyze_trace(doc)
    device = DEVICES[args.device]
    projections = []
    try:
        for value in args.scale or ():
            from .obs.whatif import scale_kernel

            index, factor = _parse_indexed(value, "--scale", float)
            projections.append(scale_kernel(report.graph, index, factor))
        if args.swap:
            from .obs.whatif import swap_libraries

            swaps = dict(
                _parse_indexed(value, "--swap", str) for value in args.swap
            )
            projections.append(swap_libraries(report.graph, swaps, device))
    except (KeyError, IndexError, ValueError) as exc:
        raise SystemExit(f"cannot project: {exc}")
    if args.json:
        out = report.to_dict()
        out["projections"] = [p.to_dict() for p in projections]
        print(json.dumps(out, indent=2))
        return 0
    print(report.render(top=args.top))
    for projection in projections:
        print()
        print(projection.render())
    return 0


def cmd_explain(args) -> int:
    from .obs.provenance import ProvenanceLog

    model = _build(args)
    device = DEVICES[args.device]
    provenance = ProvenanceLog()
    session = AstraSession(
        model, device=device, features=args.features, seed=args.seed,
        provenance=provenance, workers=getattr(args, "workers", None),
    )
    try:
        report = session.optimize(max_minibatches=args.budget)
    finally:
        session.close()
    astra = report.astra
    if args.json:
        print(json.dumps({
            "version": 1,
            "model": args.model,
            "batch": args.batch,
            "device": args.device,
            "features": args.features,
            "best_time_us": astra.best_time_us,
            "speedup_over_native": report.speedup_over_native,
            "assignment": {k: repr(v) for k, v in astra.assignment.items()},
            "provenance": provenance.to_dict(),
        }, indent=2))
        return 0
    print(f"model: {args.model}  batch={args.batch}  device={args.device}  "
          f"features=Astra_{args.features}")
    print(f"astra: {astra.best_time_us / 1000:.3f} ms/mini-batch  "
          f"({report.speedup_over_native:.2f}x over native, "
          f"{astra.configs_explored} mini-batches explored)")
    print()
    print(provenance.render(assignment=astra.assignment))
    return 0


def cmd_check(args) -> int:
    from .check import ScheduleValidationError, validate_schedule

    model = _build(args)
    device = DEVICES[args.device]
    graph = model.graph
    reports = []

    # 1. the native lowering, deep-checked (lifetime reuse + frees)
    executor = Executor(graph, device, seed=args.seed)
    lowered = executor.dispatcher.lower(native_plan(graph))
    reports.append(validate_schedule(lowered, deep=True,
                                     label=f"{args.model}/native"))

    # 2. every configuration the exploration tries, in validated mode
    metrics = MetricsRegistry()
    reporter = RunReporter()
    session = AstraSession(
        model, device=device, features=args.features, seed=args.seed,
        metrics=metrics, reporter=reporter, validate=True,
    )
    error = None
    try:
        session.optimize(max_minibatches=args.budget)
    except ScheduleValidationError as exc:
        error = exc
        reports.append(exc.report)

    snapshot = metrics.snapshot()
    validated = snapshot.get("check.schedules_validated", {}).get("value", 0)
    failures = [r for r in reports if not r.ok]

    if args.json:
        print(json.dumps({
            "version": 1,
            "model": args.model,
            "batch": args.batch,
            "device": args.device,
            "ok": not failures,
            "schedules_validated": validated,
            "reports": [r.to_dict() for r in reports],
            "violation_records": [r.to_dict() for r in reporter.violations()],
        }, indent=2))
    else:
        for report in reports:
            print(f"{report.label}: {report.summary()}")
        print(f"exploration: {validated} schedule(s) validated"
              + ("" if error is None else " (aborted on violation)"))
        verdict = "FAILED" if failures else "OK"
        print(f"check {args.model}: {verdict}")
    return 1 if failures else 0


def cmd_chaos(args) -> int:
    from .faults.chaos import run_chaos

    model = _build(args)
    device = DEVICES[args.device]
    report = run_chaos(
        model,
        model_name=args.model,
        budget=args.budget,
        seed=args.seed,
        device=device,
        features=args.features,
        checkpoint_dir=args.checkpoint_dir,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    from .perf.bench import DEFAULT_VARIANTS, bench_model, render_bench

    variants = (
        tuple(v.strip() for v in args.variants.split(",") if v.strip())
        if args.variants else DEFAULT_VARIANTS
    )
    doc = bench_model(
        args.model,
        batch=args.batch,
        seq_len=args.seq_len,
        device_name=args.device,
        seed=args.seed,
        budget=args.budget,
        variants=variants,
        quick=args.quick,
        workers=args.workers,
        learned=args.learned,
    )
    out = args.output or f"BENCH_{args.model}.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(render_bench(doc))
        print(f"wrote {out}")
    compare_ok = True
    if args.compare:
        from .perf.bench import compare_bench, render_compare

        with open(args.compare) as fh:
            baseline = json.load(fh)
        diff = compare_bench(doc, baseline)
        print(render_compare(diff))
        compare_ok = diff["ok"]
    return 0 if doc["ok"] and compare_ok else 1


def cmd_train(args) -> int:
    from .learn import LearnedCostModel, harvest_run

    model_names = [m.strip() for m in args.models.split(",") if m.strip()]
    device_names = [d.strip() for d in args.devices.split(",") if d.strip()]
    for name in model_names:
        if name not in MODEL_BUILDERS:
            raise SystemExit(
                f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}"
            )
    for name in device_names:
        if name not in DEVICES:
            raise SystemExit(f"unknown device {name!r}; have {sorted(DEVICES)}")
    records = []
    jobs = []
    for name in model_names:
        module = __import__(_CONFIG_MODULES[name],
                            fromlist=["DEFAULT_CONFIG"])
        config = module.DEFAULT_CONFIG.scaled(
            batch_size=args.batch, seq_len=args.seq_len,
        )
        for device_name in device_names:
            job_records = harvest_run(
                MODEL_BUILDERS[name](config), DEVICES[device_name],
                args.features, seed=args.seed, budget=args.budget,
            )
            jobs.append({"model": name, "device": device_name,
                         "records": len(job_records)})
            records.extend(job_records)
    if not records:
        raise SystemExit("harvest produced 0 training records")
    model = LearnedCostModel.fit(records, seed=args.seed)
    text = model.dumps()
    with open(args.output, "w") as fh:
        fh.write(text)
    if args.store:
        from .serve.store import ProfileStore

        ProfileStore(args.store).put_model(text)
    doc = {
        "version": 1,
        "artifact": args.output,
        "fingerprint": model.fingerprint,
        "records": model.records,
        "confident": model.confident(),
        "quantiles": model.quantiles,
        "calibration": model.calibration,
        "schema": model.schema,
        "devices": sorted(model.devices),
        "jobs": jobs,
        "store": args.store,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    print(f"trained {model.fingerprint} on {model.records} records "
          f"({model.calibration} calibration)")
    for job in jobs:
        print(f"  {job['model']:>12} @ {job['device']}: "
              f"{job['records']} records")
    print(f"uncertainty: q95 {model.quantiles.get('q95', 0.0) * 100:.2f}%  "
          f"q99 {model.quantiles.get('q99', 0.0) * 100:.2f}%  "
          f"confident={model.confident()}")
    print(f"wrote {args.output}"
          + (f" (also published to {args.store})" if args.store else ""))
    return 0


def _render_fleet_report(report, fleet, verify: dict | None) -> str:
    lines = [
        f"fleet search: {report.model}  batch={report.batch_size}  "
        f"fleet={report.fleet} ({fleet.describe()})",
        "calibration: " + "  ".join(
            f"{cls} {us:.1f} us" for cls, us in report.calibration.items()
        ),
    ]
    for row in report.table:
        if row["per_sample_us"] is not None:
            status = f"{row['per_sample_us']:10.3f}"
        elif row["pruned"]:
            status = "    pruned"
        else:
            status = "       cut"
        lines.append(
            f"  {row['label']:<48} bound {row['bound_us']:10.3f}  {status}"
        )
    lines.append(
        f"winner: {report.winner.label}  "
        f"{report.winner_per_sample_us:.3f} us/sample  "
        f"(step {report.winner_step_us:.1f} us"
        + (", heterogeneous placement" if report.hetero_winner else "")
        + ")"
    )
    lines.append(
        f"search: measured {report.strategies_measured} of "
        f"{report.strategies_total} strategies "
        f"({report.measured_fraction * 100:.0f}%), "
        f"{report.strategies_pruned} pruned by bound, "
        f"{report.strategies_cut_learned} cut by model"
        + (f"  [pruning stood down: {report.standdown}]"
           if report.standdown else "")
        + (f"  [learned stood down: {report.learned_standdown}]"
           if report.learned_standdown else "")
    )
    if report.best_homogeneous_us is not None:
        kind = "measured" if report.best_homogeneous_measured else "bound"
        lines.append(
            f"best homogeneous: {report.best_homogeneous_label}  "
            f"{report.best_homogeneous_us:.3f} us/sample ({kind})"
            + ("  -- beaten by the heterogeneous winner"
               if report.hetero_winner
               and report.winner_per_sample_us < report.best_homogeneous_us
               else "")
        )
    if report.engine:
        lines.append(
            f"engine: {report.engine.get('workers', 1)} workers "
            f"({report.engine.get('pool', '?')} pool), "
            f"{report.engine.get('candidates', 0)} strategies dispatched in "
            f"{report.engine.get('rounds', 0)} rounds"
        )
    if verify is not None:
        lines.append(
            f"verify: pruned vs exhaustive winner "
            f"{'IDENTICAL' if verify['winner_match'] else 'DIVERGED'} "
            f"(exhaustive measured {verify['exhaustive_measured']} "
            f"strategies; pruned measured {report.strategies_measured})"
        )
    return "\n".join(lines)


def cmd_fleet(args) -> int:
    from .faults import FaultPlan
    from .fleet import get_fleet, run_fleet_search
    from .obs.trace import fleet_trace

    batch = args.batch if args.batch is not None else (64 if args.quick else 256)

    if args.bench:
        from .fleet import bench_fleet, render_fleet_bench

        doc = bench_fleet(
            args.model, batch=batch, seq_len=args.seq_len,
            fleet_name=args.fleet, seed=args.seed, workers=args.workers,
            microbatches=args.microbatches, quick=args.quick,
        )
        out = args.output or f"BENCH_fleet_{args.model}.json"
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(render_fleet_bench(doc))
            print(f"wrote {out}")
        compare_ok = True
        if args.compare:
            from .fleet import compare_fleet_bench, render_fleet_compare

            with open(args.compare) as fh:
                baseline = json.load(fh)
            diff = compare_fleet_bench(doc, baseline)
            print(render_fleet_compare(diff))
            compare_ok = diff["ok"]
        return 0 if doc["ok"] and compare_ok else 1

    module = __import__(_CONFIG_MODULES[args.model],
                        fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(
        batch_size=batch, seq_len=args.seq_len,
        use_embedding=not args.no_embedding,
    )
    builder = MODEL_BUILDERS[args.model]
    fleet = get_fleet(args.fleet)
    faults = None
    if args.faults:
        with open(args.faults) as fh:
            faults = FaultPlan.loads(fh.read())
    learned = None
    learned_rejected = None
    if args.learned:
        from .learn import FleetStrategyModel, ModelArtifactError, StaleModelError

        # same contract as optimize --learned: a missing, corrupt or stale
        # artifact never fails the run -- it falls back to the measured path
        try:
            learned = FleetStrategyModel.load_path(args.learned)
        except (ModelArtifactError, StaleModelError) as exc:
            learned_rejected = str(exc)
            print(f"learned: artifact rejected ({exc}); "
                  "continuing without the model cut")
    metrics = MetricsRegistry() if (args.json or args.metrics_out) else None

    report = run_fleet_search(
        builder, config, fleet, model_name=args.model,
        workers=args.workers, exhaustive=args.exhaustive,
        use_astra=args.astra, learned=learned, faults=faults,
        seed=args.seed, microbatches=args.microbatches, metrics=metrics,
    )

    failures: list[str] = []
    verify = None
    if not args.exhaustive and not args.no_verify:
        exhaustive = run_fleet_search(
            builder, config, fleet, model_name=args.model,
            workers=args.workers, exhaustive=True,
            use_astra=args.astra, faults=faults,
            seed=args.seed, microbatches=args.microbatches,
        )
        winner_match = (
            report.winner.key() == exhaustive.winner.key()
            and report.winner_per_sample_us == exhaustive.winner_per_sample_us
        )
        verify = {
            "winner_match": winner_match,
            "exhaustive_winner": exhaustive.winner.label,
            "exhaustive_per_sample_us": exhaustive.winner_per_sample_us,
            "exhaustive_measured": exhaustive.strategies_measured,
        }
        if not winner_match:
            failures.append(
                f"pruned winner {report.winner.label} diverged from "
                f"exhaustive winner {exhaustive.winner.label}"
            )
        if report.standdown is None and report.strategies_pruned <= 0:
            failures.append("bound pruning retired 0 strategies on a clean run")

    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics.to_json(indent=2))
    if args.trace_out:
        doc = fleet_trace(report)
        validate_chrome_trace(doc)
        with open(args.trace_out, "w") as fh:
            json.dump(doc, fh)

    if args.json:
        doc = report.to_dict()
        doc["verify"] = verify
        doc["failures"] = failures
        doc["ok"] = not failures
        if learned_rejected:
            doc["learned_rejected"] = learned_rejected
        print(json.dumps(doc, indent=2))
    else:
        print(_render_fleet_report(report, fleet, verify))
        for failure in failures:
            print(f"FAILURE: {failure}")
    return 0 if not failures else 1


def cmd_serve(args) -> int:
    from .serve import AstraServer

    server = AstraServer(
        args.store, host=args.host, port=args.port,
        queue_size=args.queue_size, job_workers=args.job_workers,
        quiet=not args.verbose,
        max_attempts=args.max_attempts, deadline_s=args.deadline,
    )
    stats = server.store.stats()
    queue_stats = server.queue.stats()
    # flush=True: supervising harnesses (repro chaos-serve) parse the URL
    # from a pipe, so it must leave the process before any job runs
    print(f"serving on {server.url}", flush=True)
    print(f"store: {stats['root']}  schema {stats['schema']}  "
          f"{stats['jobs']} jobs, {stats['segments']} segments", flush=True)
    print(f"queue: capacity {args.queue_size}, {args.job_workers} worker(s), "
          f"{queue_stats['recovered_jobs']} recovered job(s)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining job queue ...")
        server.queue.close(drain=True)
    return 0


def cmd_chaos_serve(args) -> int:
    from .serve.chaos import run_serve_chaos

    report = run_serve_chaos(
        model=args.model,
        batch=args.batch,
        seq_len=args.seq_len,
        device=args.device,
        features=args.features,
        seed=args.seed,
        budget=args.budget,
        quick=args.quick,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Astra (ASPLOS 2019) reproduction: adaptive optimization "
                    "of deep-learning training on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, positional_model: bool = False):
        if positional_model:
            p.add_argument("model", choices=sorted(MODEL_BUILDERS))
        else:
            p.add_argument("--model", choices=sorted(MODEL_BUILDERS),
                           default="sublstm")
        p.add_argument("--batch", type=int, default=16)
        p.add_argument("--seq-len", type=int, default=5, dest="seq_len")
        p.add_argument("--device", choices=sorted(DEVICES), default="P100")
        p.add_argument("--features", choices=["F", "FK", "FKS", "all"], default="all")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--budget", type=int, default=3000,
                       help="max exploration mini-batches")
        p.add_argument("--no-embedding", action="store_true")

    def obs_flags(p):
        p.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON report")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics-registry snapshot as JSON")

    p = sub.add_parser("optimize", help="optimize one training job")
    common(p)
    obs_flags(p)
    p.add_argument("--report-out", default=None, metavar="PATH",
                   help="write the per-mini-batch run report as JSON lines")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="checkpoint the exploration state here; if the file "
                        "already exists, resume from it instead of restarting")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="JSON FaultPlan to inject during the exploration "
                        "(see docs/robustness.md)")
    p.add_argument("--robust", action="store_true",
                   help="measure min-of-k with MAD outlier rejection instead "
                        "of trusting single samples")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the compilation cache (lower every plan "
                        "from scratch)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable cost-model pruning (exhaustive search; "
                        "converges to the same winner, just slower)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="measure exploration candidates on N parallel "
                        "worker processes (same winner, same epoch time; "
                        "see docs/performance.md)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="persistent profile-index store: warm-start this "
                        "job from matching prior runs and publish its "
                        "measurements back (see docs/serving.md)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="a `repro serve` daemon to warm-start from and "
                        "publish to; unreachable daemon degrades to a "
                        "cold run")
    p.add_argument("--learned", default=None, metavar="PATH",
                   help="learned cost-model artifact from `repro train` "
                        "('store' loads the one published in --store): "
                        "rank choices and measure only the top-k band; "
                        "stale/unconfident artifacts fall back to full "
                        "measurement (see docs/learning.md)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser("sweep", help="speedups across batch sizes")
    common(p)
    obs_flags(p)
    p.add_argument("--batches", default="8,16,32,64,128,256")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("baselines", help="compare against native/XLA/cuDNN")
    common(p)
    p.set_defaults(fn=cmd_baselines)

    p = sub.add_parser("inspect", help="dump the enumerator's static analysis")
    common(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser(
        "trace",
        help="emit a Chrome/Perfetto trace of one executed mini-batch",
    )
    common(p, positional_model=True)
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="output path (default: <model>.trace.json)")
    p.add_argument("--plan", choices=["astra", "native"], default="astra",
                   help="trace the custom-wired plan (runs the exploration "
                        "first) or the native single-stream baseline")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="explore on N worker processes and merge the "
                        "optimizer's host timeline (per-worker tracks) "
                        "into the trace")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "analyze",
        help="critical-path and what-if analysis of a .trace.json",
    )
    p.add_argument("trace", metavar="TRACE_JSON",
                   help="a trace file produced by `repro trace`")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the critical-kernel table (default 10)")
    p.add_argument("--scale", action="append", metavar="INDEX:FACTOR",
                   help="project the timeline with kernel INDEX scaled by "
                        "FACTOR (repeatable)")
    p.add_argument("--swap", action="append", metavar="INDEX:LIBRARY",
                   help="project the timeline with kernel INDEX's GEMM "
                        "moved to LIBRARY (repeatable; combined into one "
                        "projection)")
    p.add_argument("--device", choices=sorted(DEVICES), default="P100",
                   help="device model used to re-cost swapped kernels")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable analysis document")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="run the exploration with provenance and print why each "
             "variable's winner won",
    )
    common(p, positional_model=True)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="explore on N worker processes (the provenance log "
                        "is bit-identical to a serial run)")
    p.add_argument("--json", action="store_true",
                   help="print the provenance log as JSON")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser(
        "check",
        help="validate schedule correctness (races, liveness, layout)",
    )
    common(p, positional_model=True)
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable validation report")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "chaos",
        help="fault-injection sweep: prove the exploration survives a "
             "hostile device (see docs/robustness.md)",
    )
    common(p, positional_model=True)
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable resilience report")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="directory for per-cell checkpoints (default: a "
                        "temporary directory, removed afterwards)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="time the exploration itself: baseline vs fast path, per phase",
    )
    common(p, positional_model=True)
    p.add_argument("--variants", default=None, metavar="V1,V2",
                   help="comma-separated feature variants to bench "
                        "(default: FK,all)")
    p.add_argument("--quick", action="store_true",
                   help="primary variant only, no timing gate: the CI smoke "
                        "configuration")
    p.add_argument("--workers", type=int, default=4, metavar="N",
                   help="worker processes for the parallel leg (default 4)")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="output path (default: BENCH_<model>.json)")
    p.add_argument("--json", action="store_true",
                   help="print the full bench document instead of the table")
    p.add_argument("--compare", default=None, metavar="PATH",
                   help="diff against a committed BENCH_*.json: exit "
                        "non-zero on a winner change or a >20%% relative-"
                        "throughput regression")
    p.add_argument("--learned", default=None, metavar="PATH",
                   help="cost-model artifact from `repro train`: add the "
                        "learned-top-k leg and gate it on winner identity, "
                        "<=50%% of exhaustive measurements, a non-zero "
                        "model hit rate and the what-if cross-check")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "train",
        help="fit the learned cost model from exhaustive exploration "
             "corpora (see docs/learning.md)",
    )
    p.add_argument("--models", default="scrnn,milstm", metavar="M1,M2",
                   help="models whose exhaustive runs feed the corpus "
                        "(default: scrnn,milstm)")
    p.add_argument("--devices", default="P100,V100", metavar="D1,D2",
                   help="devices to harvest on (default: P100,V100)")
    p.add_argument("--batch", type=int, default=4)
    p.add_argument("--seq-len", type=int, default=3, dest="seq_len")
    p.add_argument("--features", choices=["F", "FK", "FKS", "all"],
                   default="FK")
    p.add_argument("--seed", type=int, default=0,
                   help="harvest and fit seed (training is deterministic "
                        "in it)")
    p.add_argument("--budget", type=int, default=400,
                   help="exploration budget per harvest job (default 400)")
    p.add_argument("-o", "--output", default="astra-model.json",
                   metavar="PATH",
                   help="artifact path (default: astra-model.json)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="also publish the artifact into this profile store "
                        "(verified against the store schema first)")
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable training summary")
    p.set_defaults(fn=cmd_train)

    from .fleet.spec import FLEETS

    p = sub.add_parser(
        "fleet",
        help="heterogeneous fleet strategy search: data/pipeline "
             "partitioning and device placement as adaptive variables "
             "(see docs/distributed.md)",
    )
    p.add_argument("model", choices=sorted(MODEL_BUILDERS))
    p.add_argument("--fleet", choices=sorted(FLEETS), default="hetero",
                   help="fleet description to search over (default: hetero, "
                        "2xP100+2xV100 over NVLink)")
    p.add_argument("--batch", type=int, default=None,
                   help="global batch size (default 256, where parallelism "
                        "pays; 64 with --quick)")
    p.add_argument("--seq-len", type=int, default=5, dest="seq_len")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="measure surviving strategies on N parallel worker "
                        "processes (same winner, any N)")
    p.add_argument("--microbatches", type=int, default=4, metavar="M",
                   help="micro-batches streamed through pipeline "
                        "strategies (default 4)")
    p.add_argument("--exhaustive", action="store_true",
                   help="measure every enumerated strategy: no bound "
                        "pruning, no learned cut")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the pruned-vs-exhaustive winner-identity "
                        "verification sweep (verification is the default)")
    p.add_argument("--astra", action="store_true",
                   help="price compute primitives with a per-device inner "
                        "Astra optimization instead of the native plan "
                        "(bound pruning stands down: stream overlap breaks "
                        "its admissibility)")
    p.add_argument("--learned", default=None, metavar="PATH",
                   help="FleetStrategyModel artifact: cut bound survivors "
                        "to the predicted top-k band (stale/unconfident "
                        "artifacts stand down; see docs/learning.md)")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="JSON FaultPlan to inject into every primitive "
                        "measurement (bound pruning stands down; see "
                        "docs/robustness.md)")
    p.add_argument("--quick", action="store_true",
                   help="batch 64 instead of 256: the CI smoke "
                        "configuration (all gates still apply)")
    p.add_argument("--no-embedding", action="store_true")
    obs_flags(p)
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the winner's per-device fleet timeline as a "
                        "Chrome trace-event document")
    p.add_argument("--bench", action="store_true",
                   help="time exhaustive vs pruned search and write "
                        "BENCH_fleet_<model>.json (see docs/distributed.md)")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="bench output path (default: "
                        "BENCH_fleet_<model>.json)")
    p.add_argument("--compare", default=None, metavar="PATH",
                   help="diff the fresh bench document against a committed "
                        "BENCH_fleet_*.json: exit non-zero on a winner "
                        "change or a >20%% strategies/sec-multiple "
                        "regression")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "serve",
        help="run the optimization-as-a-service daemon "
             "(see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="port to bind (default 0: pick an ephemeral port "
                        "and print it)")
    p.add_argument("--store", default=".astra-store", metavar="PATH",
                   help="profile-store directory shared by all jobs "
                        "(default: .astra-store)")
    p.add_argument("--queue-size", type=int, default=16, metavar="N",
                   help="bounded job-queue capacity; full queue => 503")
    p.add_argument("--job-workers", type=int, default=1, metavar="N",
                   help="concurrent job-executor threads (default 1: "
                        "strictly serial, deterministic store growth)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.add_argument("--max-attempts", type=int, default=3, metavar="N",
                   help="attempts before a transiently-failing job is "
                        "dead-lettered (default 3)")
    p.add_argument("--deadline", type=float, default=None, metavar="SEC",
                   help="per-attempt deadline; a wedged attempt is "
                        "abandoned and retried (default: none)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "chaos-serve",
        help="daemon-level chaos: SIGKILL/restart the real daemon, tear "
             "and flip store segments, gate on zero lost work "
             "(see docs/serving.md)",
    )
    p.add_argument("--model", choices=sorted(MODEL_BUILDERS),
                   default="scrnn")
    p.add_argument("--batch", type=int, default=4)
    p.add_argument("--seq-len", type=int, default=3, dest="seq_len")
    p.add_argument("--device", choices=sorted(DEVICES), default="P100")
    p.add_argument("--features", choices=["F", "FK", "FKS", "all"],
                   default="all")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=int, default=400,
                   help="exploration budget per job (default 400: small "
                        "enough for CI, large enough to publish segments)")
    p.add_argument("--quick", action="store_true",
                   help="kill/recover + bit-flip cells only: the CI smoke "
                        "configuration")
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable chaos report")
    p.set_defaults(fn=cmd_chaos_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
