"""Command-line front-end: ``python -m repro <command>``.

Commands:

* ``optimize``  — trace a model, run the Astra exploration, print the report
* ``sweep``     — speedups across mini-batch sizes for one model
* ``baselines`` — native / XLA-style / cuDNN-style / Astra side by side
* ``inspect``   — dump what the enumerator found (fusion groups, strategies,
  epochs) for a model, without running any exploration
"""

from __future__ import annotations

import argparse
import sys

from . import AstraSession
from .baselines import cudnn_applicable, run_cudnn, run_native, run_xla
from .core import AstraFeatures, Enumerator, count_configurations
from .gpu import DEVICES, P100
from .models import MODEL_BUILDERS

_CONFIG_MODULES = {
    "scrnn": "repro.models.scrnn",
    "milstm": "repro.models.milstm",
    "sublstm": "repro.models.sublstm",
    "stacked_lstm": "repro.models.stacked_lstm",
    "gnmt": "repro.models.gnmt",
}


def _build(args):
    module = __import__(_CONFIG_MODULES[args.model], fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(
        batch_size=args.batch, seq_len=args.seq_len,
        use_embedding=not args.no_embedding,
    )
    return MODEL_BUILDERS[args.model](config)


def cmd_optimize(args) -> int:
    model = _build(args)
    device = DEVICES[args.device]
    session = AstraSession(model, device=device, features=args.features, seed=args.seed)
    report = session.optimize(max_minibatches=args.budget)
    astra = report.astra
    print(f"model: {args.model}  batch={args.batch}  device={args.device}  "
          f"features=Astra_{args.features}")
    print(f"native:   {report.native_time_us / 1000:9.3f} ms/mini-batch")
    print(f"astra:    {astra.best_time_us / 1000:9.3f} ms/mini-batch")
    print(f"speedup:  {report.speedup_over_native:9.2f} x")
    print(f"explored: {astra.configs_explored} mini-batches  "
          f"(profiling overhead {astra.profiling_overhead * 100:.2f}%)")
    print(f"allocation strategy: {astra.best_strategy.label}")
    if args.verbose:
        print("\nchosen configuration:")
        for name, choice in sorted(astra.assignment.items()):
            print(f"  {name} -> {choice}")
    return 0


def cmd_sweep(args) -> int:
    device = DEVICES[args.device]
    batches = [int(b) for b in args.batches.split(",")]
    print(f"{'batch':>6}  {'native(ms)':>11}  {'astra(ms)':>10}  {'speedup':>8}")
    for batch in batches:
        args.batch = batch
        model = _build(args)
        report = AstraSession(
            model, device=device, features=args.features, seed=args.seed
        ).optimize(max_minibatches=args.budget)
        print(f"{batch:6d}  {report.native_time_us / 1000:11.3f}  "
              f"{report.best_time_us / 1000:10.3f}  "
              f"{report.speedup_over_native:8.2f}")
    return 0


def cmd_baselines(args) -> int:
    model = _build(args)
    device = DEVICES[args.device]
    native = run_native(model.graph, device).total_time_us
    xla = run_xla(model.graph, device).total_time_us
    print(f"native:   {native / 1000:9.3f} ms   1.00x")
    print(f"xla:      {xla / 1000:9.3f} ms   {native / xla:.2f}x")
    if cudnn_applicable(model.graph):
        cudnn = run_cudnn(model.graph, device).total_time_us
        print(f"cudnn:    {cudnn / 1000:9.3f} ms   {native / cudnn:.2f}x")
    else:
        print("cudnn:    not applicable (long-tail structure)")
    report = AstraSession(
        model, device=device, features=args.features, seed=args.seed
    ).optimize(max_minibatches=args.budget)
    print(f"astra:    {report.best_time_us / 1000:9.3f} ms   "
          f"{report.speedup_over_native:.2f}x")
    return 0


def cmd_inspect(args) -> int:
    model = _build(args)
    device = DEVICES[args.device]
    features = AstraFeatures.preset(args.features)
    enum = Enumerator(model.graph, device, features)
    graph = model.graph
    print(f"graph: {len(graph)} nodes, {len(graph.gemm_nodes())} GEMMs, "
          f"{graph.total_flops() / 1e9:.2f} Gflops/mini-batch")
    print(f"allocation strategies: "
          f"{[s.label for s in enum.strategies]}")
    print(f"fusion groups ({len(enum.analysis.groups)}):")
    for group in enum.analysis.groups:
        dims = group.launch_dims(group.members)
        print(f"  {group.group_id:56s} axis={group.axis} size={group.size} "
              f"max-fused={dims[0]}x{dims[1]}x{dims[2]}")
    print(f"lone ladders: "
          f"{sum(1 for m in enum.analysis.singletons if m.is_ladder)}, "
          f"plain GEMMs: "
          f"{sum(1 for m in enum.analysis.singletons if not m.is_ladder)}")
    tree = enum.build_fk_tree(enum.strategies[0])
    print(f"fk update tree: {sum(1 for _ in tree.variables())} variables, "
          f"<= {count_configurations(tree)} trials (parallel mode)")
    if features.streams:
        partition, stree = enum.prepare_stream_phase(
            enum.strategies[0], tree.assignment()
        )
        print(f"stream phase: {partition.num_super_epochs} super-epochs, "
              f"{len(partition.epochs)} epochs, "
              f"<= {count_configurations(stree)} trials")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Astra (ASPLOS 2019) reproduction: adaptive optimization "
                    "of deep-learning training on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--model", choices=sorted(MODEL_BUILDERS), default="sublstm")
        p.add_argument("--batch", type=int, default=16)
        p.add_argument("--seq-len", type=int, default=5, dest="seq_len")
        p.add_argument("--device", choices=sorted(DEVICES), default="P100")
        p.add_argument("--features", choices=["F", "FK", "FKS", "all"], default="all")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--budget", type=int, default=3000,
                       help="max exploration mini-batches")
        p.add_argument("--no-embedding", action="store_true")

    p = sub.add_parser("optimize", help="optimize one training job")
    common(p)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser("sweep", help="speedups across batch sizes")
    common(p)
    p.add_argument("--batches", default="8,16,32,64,128,256")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("baselines", help="compare against native/XLA/cuDNN")
    common(p)
    p.set_defaults(fn=cmd_baselines)

    p = sub.add_parser("inspect", help="dump the enumerator's static analysis")
    common(p)
    p.set_defaults(fn=cmd_inspect)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
