"""Baselines the paper compares against: native frameworks, cuDNN-style
compound kernels, and an XLA-style static compiler."""

from .native import native_plan, run_native

__all__ = ["native_plan", "run_native"]

from .cudnn import cudnn_applicable, cudnn_plan, detect_lstm_steps, run_cudnn
from .xla import run_xla, xla_plan

__all__ += [
    "cudnn_applicable", "cudnn_plan", "detect_lstm_steps", "run_cudnn",
    "run_xla", "xla_plan",
]
