"""XLA-style baseline: static whole-graph compilation (section 6.6).

Models the two sides of XLA the paper measures:

* the benefit: aggressive *static* elementwise fusion (its cost model is
  good at pointwise fusion), which gives healthy speedups over native TF
  on elementwise-heavy recurrent cells;
* the robustness failure: embeddings.  XLA's static lowering of lookup
  ops bounces between CPU and GPU ("multiple transitions between CPU and
  GPU for lookups"), so every embedding gather/scatter becomes a
  device-to-host index copy, a host-side gather that stalls the dispatch
  thread, and a host-to-device copy of the result.  On embedding models
  this makes XLA *worse* than native TF (the paper saw 3x worse on
  SC-RNN), which is why Table 9 evaluates embedding-less model variants.

XLA does not re-fuse GEMMs into larger GEMMs, select kernel libraries by
shape, or use multiple streams -- the dimensions where Astra_FK wins.
"""

from __future__ import annotations

import itertools

from ..gpu.device import GPUSpec
from ..gpu.kernels import HostTransfer
from ..ir import ops
from ..ir.graph import Graph
from ..runtime.executor import Executor, MiniBatchResult
from ..runtime.lowering import (
    elementwise_chains,
    fused_elementwise_kernel,
    kernel_for_node,
)
from ..runtime.plan import ExecutionPlan, Unit

#: host-side gather/scatter throughput, bytes per microsecond (a single
#: CPU core doing random-access row copies)
HOST_GATHER_BW = 4e3


def host_embedding_cost_us(graph: Graph, node_id: int, device: GPUSpec) -> float:
    """CPU time for one host-side embedding gather/scatter."""
    node = graph.node(node_id)
    return node.spec.size_bytes / HOST_GATHER_BW


def xla_plan(graph: Graph, device: GPUSpec) -> ExecutionPlan:
    """Statically compiled plan: fused elementwise clusters, stock GEMMs,
    and the host round-trip for every embedding op."""
    units: list[Unit] = []
    counter = itertools.count()
    covered: set[int] = set()

    # embeddings: lowered through the host
    for node in graph.nodes:
        if node.kind != ops.KIND_EMBEDDING:
            continue
        in_specs = [graph.node(i).spec for i in node.input_ids]
        if isinstance(node.op, ops.Embedding):
            down_bytes = in_specs[1].size_bytes  # indices to host
        else:  # EmbeddingGrad: gradient rows to host
            down_bytes = in_specs[1].size_bytes
        up_bytes = node.spec.size_bytes
        host_us = host_embedding_cost_us(graph, node.node_id, device)
        # one unit: d2h copy, then host gather stalls dispatch, then h2d
        units.append(
            Unit(
                next(counter),
                HostTransfer(up_bytes, direction="h2d", node_ids=(node.node_id,)),
                (node.node_id,),
                label=f"xla_host_{node.op.name}",
                pre_copies=(HostTransfer(down_bytes, direction="d2h"),),
                host_us=host_us + 2 * device.pcie_latency_us,
            )
        )
        covered.add(node.node_id)

    # aggressive static elementwise fusion
    remaining = {n.node_id for n in graph.nodes if not n.is_leaf} - covered
    for chain in elementwise_chains(graph, remaining):
        if len(chain) < 2:
            continue
        kernel = fused_elementwise_kernel(graph, chain)
        units.append(Unit(next(counter), kernel, chain, label="xla_" + kernel.label))
        covered.update(chain)

    # everything else: stock per-node kernels, single stream
    for node in graph.nodes:
        if node.is_leaf or node.node_id in covered:
            continue
        kernel = kernel_for_node(graph, node)
        if kernel is None:
            continue
        units.append(Unit(next(counter), kernel, (node.node_id,), label=kernel.name))

    return ExecutionPlan(units=units, profile=False, label="xla")


def run_xla(graph: Graph, device: GPUSpec) -> MiniBatchResult:
    """Execute one mini-batch as XLA would compile it."""
    executor = Executor(graph, device)
    return executor.run(xla_plan(graph, device))
