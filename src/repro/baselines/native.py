"""Native framework baseline (PyTorch / TensorFlow execution model).

One kernel per DFG node, a single CUDA stream, the default GEMM library,
no fusion, no profiling events (section 2.2: "most frameworks such as
Tensorflow today use just a single stream").  This is the "PyT" / "TF"
column of every table in the evaluation.
"""

from __future__ import annotations

from ..gpu.device import GPUSpec
from ..gpu.libraries import DEFAULT_LIBRARY
from ..ir.graph import Graph
from ..runtime.executor import Executor, MiniBatchResult
from ..runtime.lowering import build_units
from ..runtime.plan import ExecutionPlan


def native_plan(graph: Graph, fuse_elementwise: bool = False) -> ExecutionPlan:
    """The unadapted execution plan a stock framework would run."""
    units = build_units(graph, gemm_library=DEFAULT_LIBRARY, fuse_elementwise=fuse_elementwise)
    return ExecutionPlan(units=units, profile=False, label="native")


def run_native(graph: Graph, device: GPUSpec, fuse_elementwise: bool = False) -> MiniBatchResult:
    """Execute one mini-batch exactly as the native framework would."""
    executor = Executor(graph, device)
    return executor.run(native_plan(graph, fuse_elementwise=fuse_elementwise))
