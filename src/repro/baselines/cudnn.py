"""cuDNN-style baseline: hand-optimized compound kernels (section 2.4).

cuDNN accelerates *popular* layer structures -- standard LSTM stacks in
particular -- with hand-fused compound kernels that execute a whole
layer's step in a few near-peak launches (up to 6x over naive framework
execution for recurrent layers).  Two properties matter for the paper's
comparison:

* coverage is structural: a standard LSTM step is covered; MI-LSTM,
  subLSTM, SC-RNN and attention modules are not (they fall back to the
  native per-node execution, which is the gap Astra closes);
* the API works one layer at a time, so no cross-layer or whole-graph
  optimization happens (section 2.4).

Coverage detection here mirrors how a framework integrates cuDNN: a
layer/step scope whose GEMM structure matches the standard LSTM gate
pattern (4 gate ladders of x@W + h@U sharing (x, h)) is replaced by one
compound kernel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..gpu.device import GPUSpec
from ..gpu.kernels import CompoundLaunch
from ..ir.graph import Graph
from ..runtime.executor import Executor, MiniBatchResult
from ..runtime.lowering import kernel_for_node
from ..runtime.plan import ExecutionPlan, Unit
from ..core.fusion import analyse_fusion

#: sustained fraction of device peak inside a cuDNN compound kernel
CUDNN_EFFICIENCY = 0.72

#: cuDNN batches the input GEMMs of a recurrent layer across time steps,
#: so per covered step it pays well under one launch on average; we model
#: one compound launch per step plus the elementwise tail fused in.


@dataclass
class CudnnCoverage:
    """Which parts of the graph the accelerator covers."""

    #: scope -> node ids replaced by one compound kernel
    covered_scopes: dict[str, tuple[int, ...]]
    covered_nodes: set[int]

    @property
    def fraction_of_gemms(self) -> float:
        return getattr(self, "_gemm_fraction", 0.0)


def _absorb_sandwiched(graph: Graph, nodes: set[int], taken: set[int]) -> set[int]:
    """Convex closure: an elementwise node both fed by and feeding the
    covered set (directly or through one hop) must join it, otherwise the
    compound kernel and the outside node would depend on each other.
    Gradient-accumulation adds between a step's backward ops are the
    typical case."""
    nodes = set(nodes)
    changed = True
    while changed:
        changed = False
        frontier = {
            cid
            for nid in nodes
            for cid in graph.consumers(nid)
            if cid not in nodes and cid not in taken
        }
        for cid in frontier:
            node = graph.node(cid)
            if node.is_leaf or node.kind not in ("elementwise",):
                continue
            reaches = False
            for c1 in graph.consumers(cid):
                if c1 in nodes:
                    reaches = True
                    break
                if graph.node(c1).kind == "elementwise" and any(
                    c2 in nodes for c2 in graph.consumers(c1)
                ):
                    reaches = True
                    break
            if reaches:
                nodes.add(cid)
                changed = True
    return nodes


def detect_lstm_steps(graph: Graph) -> CudnnCoverage:
    """Find forward step scopes matching the standard LSTM pattern.

    A scope is covered when it contains a 4-ladder common-(x,h) fusion
    block (the signature of i/f/o/g gates) and the scope's remaining ops
    are elementwise -- i.e. a *standard* LSTM step.  Models with extra
    GEMMs in the step (attention) or non-ladder gate math (MI-LSTM) or
    non-standard cell output (subLSTM's ``sigmoid(c) - o``) do not match.

    The backward pass of a covered step is covered too (cuDNN provides
    the corresponding backward compound kernels).
    """
    analysis = analyse_fusion(graph)
    covered_scopes: dict[str, tuple[int, ...]] = {}
    covered_nodes: set[int] = set()

    for group in analysis.groups:
        if group.axis != "n" or len(group.members) != 4:
            continue
        if group.pass_tag != "forward":
            continue  # backward coverage follows from the forward match
        if not all(mb.is_ladder and len(mb.mm_ids) == 2 for mb in group.members):
            continue
        scope = group.members[0].scope
        if not all(mb.scope == scope for mb in group.members):
            continue
        # the four gate nonlinearity signature: 3 sigmoid + 1 tanh, looking
        # through residual bias adds between the ladder and the activation
        gate_outputs = [max(mb.node_ids) for mb in group.members]
        acts = []
        for out in gate_outputs:
            activation = "other"
            frontier = list(graph.consumers(out))
            hops = 0
            while frontier and hops < 3:
                next_frontier = []
                for cid in frontier:
                    op = graph.node(cid).op
                    if op is None:
                        continue
                    if op.name in ("sigmoid", "tanh"):
                        activation = op.name
                        next_frontier = []
                        break
                    if op.name == "add":
                        next_frontier.extend(graph.consumers(cid))
                frontier = next_frontier
                hops += 1
            acts.append(activation)
        if sorted(acts).count("sigmoid") != 3 or "tanh" not in acts:
            continue
        # cover the gate GEMMs plus the step's elementwise cell math, for
        # both passes: cuDNN ships matching backward compound kernels
        nodes = set(group.node_ids())
        for pass_tag in ("forward", "backward"):
            step_nodes = {
                n.node_id
                for n in graph.nodes
                if n.scope == scope and not n.is_leaf and n.pass_tag == pass_tag
            }
            pass_nodes = {
                nid for nid in step_nodes
                if graph.node(nid).kind in ("elementwise", "gemm")
            }
            if pass_tag == "forward":
                pass_nodes |= nodes
            if not pass_nodes:
                continue
            pass_nodes = _absorb_sandwiched(graph, pass_nodes, covered_nodes)
            key = f"{scope}/{pass_tag}"
            covered_scopes[key] = tuple(sorted(pass_nodes))
            covered_nodes |= pass_nodes

    coverage = CudnnCoverage(covered_scopes=covered_scopes, covered_nodes=covered_nodes)
    gemms = graph.gemm_nodes()
    covered_gemms = sum(1 for n in gemms if n.node_id in covered_nodes)
    coverage._gemm_fraction = covered_gemms / max(1, len(gemms))  # type: ignore[attr-defined]
    return coverage


def cudnn_plan(graph: Graph) -> ExecutionPlan:
    """Native execution with covered steps replaced by compound kernels."""
    coverage = detect_lstm_steps(graph)
    units: list[Unit] = []
    counter = itertools.count()

    for scope_key, node_ids in sorted(coverage.covered_scopes.items()):
        flops = 0
        rows = None
        for nid in node_ids:
            node = graph.node(nid)
            in_specs = [graph.node(i).spec for i in node.input_ids]
            flops += node.op.flops(in_specs, node.spec)  # type: ignore[union-attr]
            if node.kind == "gemm":
                m = node.op.gemm_dims(in_specs)[0]  # type: ignore[union-attr]
                rows = m if rows is None else min(rows, m)  # batch dim
        kernel = CompoundLaunch(
            total_flops=flops, efficiency=CUDNN_EFFICIENCY, rows=rows or 64,
            label=f"cudnn@{scope_key}", node_ids=node_ids,
        )
        units.append(Unit(next(counter), kernel, node_ids, label=kernel.label))

    for node in graph.nodes:
        if node.is_leaf or node.node_id in coverage.covered_nodes:
            continue
        kernel = kernel_for_node(graph, node)
        if kernel is None:
            continue
        units.append(Unit(next(counter), kernel, (node.node_id,), label=kernel.name))

    return ExecutionPlan(units=units, profile=False, label="cudnn")


def run_cudnn(graph: Graph, device: GPUSpec) -> MiniBatchResult:
    """Execute one mini-batch with cuDNN-style acceleration applied."""
    executor = Executor(graph, device)
    return executor.run(cudnn_plan(graph))


def cudnn_applicable(graph: Graph, threshold: float = 0.25) -> bool:
    """True when a meaningful share of the GEMM work is cuDNN-covered."""
    return detect_lstm_steps(graph).fraction_of_gemms >= threshold
