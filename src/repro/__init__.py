"""repro: a full reproduction of *Astra: Exploiting Predictability to
Optimize Deep Learning* (Sivathanu et al., ASPLOS 2019).

Layers (bottom-up):

* :mod:`repro.ir` -- shape-typed tensor IR, tracing, reverse-mode autodiff;
* :mod:`repro.gpu` -- deterministic discrete-event GPU simulator (streams,
  launch overhead, cudaEvents, GEMM kernel libraries, memory arenas);
* :mod:`repro.runtime` -- execution plans, dispatcher, executor;
* :mod:`repro.models` -- the paper's five evaluation models;
* :mod:`repro.baselines` -- native framework, cuDNN-style, XLA-style;
* :mod:`repro.core` -- Astra itself: enumerator, adaptive variables,
  profile index, custom-wirer, public session API;
* :mod:`repro.obs` -- observability: Chrome-trace export, metrics
  registry, structured run reports (all zero-cost when disabled);
* :mod:`repro.check` -- schedule-correctness validation: static
  race/liveness/layout checking of lowered schedules, the oracle behind
  ``Executor(validate=True)`` and ``repro check``.
"""

from .check import ScheduleValidationError, ValidationReport, validate_schedule
from .core.enumerator import AstraFeatures
from .core.measurement import ROBUST, TRUSTING, MeasurementPolicy
from .core.session import AstraSession, SessionReport
from .faults import ExplorationCheckpoint, FaultPlan, FaultSpec, FaultWindow
from .gpu.device import P100, V100, GPUSpec

__version__ = "1.0.0"

__all__ = [
    "AstraFeatures",
    "AstraSession",
    "SessionReport",
    "P100",
    "V100",
    "GPUSpec",
    "ScheduleValidationError",
    "ValidationReport",
    "validate_schedule",
    "MeasurementPolicy",
    "TRUSTING",
    "ROBUST",
    "FaultPlan",
    "FaultSpec",
    "FaultWindow",
    "ExplorationCheckpoint",
]
