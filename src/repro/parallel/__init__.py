"""Parallel exploration engine (docs/performance.md).

Partitions each exploration round's candidate configurations into work
shards, measures them on a pool of worker processes (with an in-process
fallback), and merges the results back into the profile index in
canonical order -- serial and parallel runs converge to the same winner,
the same index contents, and the same epoch time.
"""

from .config import ParallelConfig
from .engine import ParallelEngine, engine_supported, plan_wave
from .pool import InlinePool, ProcessPool, make_pool
from .wire import CandidateOutcome, CandidateTask, WorkerSpec

__all__ = [
    "CandidateOutcome",
    "CandidateTask",
    "InlinePool",
    "ParallelConfig",
    "ParallelEngine",
    "ProcessPool",
    "WorkerSpec",
    "engine_supported",
    "make_pool",
    "plan_wave",
]
