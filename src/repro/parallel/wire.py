"""Wire protocol of the parallel exploration engine.

Everything that crosses the process boundary lives here, and it is
deliberately *small*: a candidate travels as its tree assignment plus the
names of the variables being profiled (a few hundred bytes), never as a
built plan or a lowered schedule -- workers rebuild both deterministically
from the same enumerator inputs, which PR 4's signature machinery
guarantees are bit-identical (two plans with equal
:func:`~repro.perf.signature.plan_key` lower to bit-identical schedules).
Results travel back as slim :class:`~repro.runtime.executor.MiniBatchResult`
objects with the raw simulator output stripped, plus the event log the
wirer needs to replay its serial bookkeeping exactly (retry counters,
fault records, injector ledger entries) in canonical candidate order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to reconstruct the exploration world.

    Shipped once, pickled, through the pool initializer.  A worker built
    from the same spec as the wirer holds an enumerator, executor and
    lowering cache whose outputs are bit-identical to the parent's --
    the determinism the merge relies on.
    """

    graph: object
    device: object
    features: object
    seed: int
    validate: bool
    policy: object
    fast: object
    #: the :class:`~repro.faults.plan.FaultPlan`, or None; workers derive
    #: per-candidate injector sub-states from it
    fault_plan: object = None
    #: parent tracer is live: workers record per-candidate spans for the
    #: merged Chrome trace (ts relative to each candidate's start)
    trace: bool = False


@dataclass(frozen=True)
class CandidateTask:
    """One configuration to measure, identified by value, not by object.

    ``base_minibatch`` is the global budget ordinal of the candidate's
    first sample (prior spent + samples charged by earlier candidates in
    the wave); it keys the injector and jitter sub-streams, so results
    depend only on *which* candidate this is -- never on worker count,
    scheduling order, or resume history.
    """

    ordinal: int
    strategy_id: int
    assignment: tuple  # sorted (name, choice) pairs; dicts don't hash
    live_names: tuple
    base_minibatch: int
    #: parent injector already fired its one-shot preemption
    preempted: bool = False

    def assignment_dict(self) -> dict:
        return dict(self.assignment)


@dataclass
class SampleRecord:
    """Event log of one measurement sample (one budget charge).

    ``aborts`` lists the transient faults the worker's retry loop caught,
    in order; ``result`` is the slim measurement, or None when the sample
    was lost (attempt budget exhausted) or cut short by a non-transient
    error recorded on the outcome.
    """

    aborts: list = field(default_factory=list)  # [(kind, message), ...]
    result: object = None  # slim MiniBatchResult | None


@dataclass
class CandidateOutcome:
    """Everything a worker observed measuring one candidate."""

    ordinal: int
    samples: list = field(default_factory=list)  # [SampleRecord, ...]
    #: var name -> unit ids, from the worker-built plan (feeds the
    #: parent's metric extraction without shipping the plan itself)
    var_units: dict = field(default_factory=dict)
    #: executor-internal counter deltas (fault.*, check.*), merged into
    #: the parent registry at the candidate's canonical merge position
    counters: dict = field(default_factory=dict)
    #: injector sub-state side effects (None when no injector armed)
    injector_records: list = field(default_factory=list)
    injector_minibatch: int | None = None
    injector_preempted: bool = False
    #: a non-transient error that aborted the candidate, pickled; the
    #: parent re-raises it at the canonical merge position
    error: bytes | None = None
    error_repr: str | None = None
    #: schedule-validation violations to replay into the run report
    violations: list = field(default_factory=list)  # [(label, kind, text)]
    #: set when the candidate's injector fired a scheduled preemption
    preempted_at: int | None = None
    #: worker wall seconds spent on this candidate (utilization metric)
    busy_s: float = 0.0
    #: host-side trace spans recorded while measuring this candidate
    #: (Chrome-event dicts; ts relative to the candidate's own start;
    #: empty unless the spec requested tracing)
    spans: list = field(default_factory=list)
    #: os pid of the worker that measured this candidate (trace track key)
    worker_pid: int = 0


def slim_result(result, keep_units=None):
    """Strip the raw simulator output before shipping a result.

    ``raw`` holds every kernel record of the mini-batch -- two orders of
    magnitude more bytes than the per-unit times the wirer actually
    consumes.  When ``keep_units`` is given, ``unit_times`` is also
    filtered down to those unit ids: the parent's ``_metric_for`` only
    ever reads the units of this candidate's live variables, so shipping
    the rest of the schedule's per-unit times is pure IPC weight.  The
    remaining wirer-facing fields round-trip untouched.
    """
    unit_times = result.unit_times
    if keep_units is not None:
        unit_times = {
            uid: t for uid, t in unit_times.items() if uid in keep_units
        }
    return replace(result, raw=None, unit_times=unit_times)
