"""Configuration of the parallel exploration engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelConfig:
    """How the wirer partitions and dispatches exploration work.

    None of these knobs may change *results* -- the merge is canonical
    and per-candidate randomness is keyed by budget ordinal, so worker
    count, wave size and start method only move wall-clock time.  The
    equivalence tests pin that property.
    """

    #: worker processes; 1 selects the in-process fallback pool (same
    #: code path, no fork), which is also the fallback wherever process
    #: pools are unavailable
    workers: int = 1
    #: upper bound on candidates planned per wave.  A wave normally ends
    #: when enumeration seals (every live variable finished its current
    #: phase); the cap only bounds memory for degenerate spaces and is
    #: deliberately worker-count independent so batching never shifts
    #: with fleet size.
    max_wave: int = 32
    #: shard cost-model pre-ranking across the pool too
    prerank: bool = True
    #: multiprocessing start method override (None = fork where
    #: available, else the platform default)
    start_method: str | None = None
