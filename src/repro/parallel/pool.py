"""Worker pools: process-backed with an in-process fallback.

Both pools expose the same three calls (``run_shard``, ``run_estimates``,
``prewarm``) returning futures-like handles, so the engine never branches
on pool kind.  :func:`make_pool` picks the process pool when it can and
falls back to :class:`InlinePool` when it can't (``workers <= 1``,
platforms without working process pools, pickling failures at spawn) --
degraded throughput, never degraded results.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import Future, ProcessPoolExecutor

from . import worker as worker_mod
from .wire import WorkerSpec


class InlinePool:
    """Single-process fallback executing shards in the caller.

    Runs the exact worker code path (same state class, same measurement
    loop) so ``--workers 1`` exercises everything but the fork.
    """

    kind = "inline"
    workers = 1

    def __init__(self, spec: WorkerSpec):
        self._spec = spec
        self._state = None

    def _ensure(self):
        if self._state is None:
            self._state = worker_mod.WorkerState(self._spec)
        return self._state

    def prewarm(self) -> None:
        # building the state here would serialize with the parent's own
        # enumerator construction; defer to first use instead
        return None

    def run_shard(self, tasks) -> Future:
        future: Future = Future()
        try:
            future.set_result(worker_mod.run_shard(self._ensure(), tasks))
        except BaseException as exc:  # mirror executor future semantics
            future.set_exception(exc)
        return future

    def run_estimates(self, strategy_id, names) -> Future:
        future: Future = Future()
        try:
            future.set_result(
                worker_mod.run_estimates(self._ensure(), strategy_id, list(names))
            )
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def close(self) -> None:
        self._state = None


class ProcessPool:
    """``ProcessPoolExecutor`` wrapper with spec-initialized workers."""

    kind = "process"

    def __init__(self, spec: WorkerSpec, workers: int, start_method: str | None = None):
        self.workers = workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            # fork skips re-importing the package per worker and ships the
            # initializer payload through cheap COW memory
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        payload = pickle.dumps(spec)
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=worker_mod._pool_init,
            initargs=(payload,),
        )
        self._warmup: list[Future] = []

    def prewarm(self) -> None:
        """Kick every worker's spawn + initializer without blocking.

        Overlaps worker startup with the parent's own enumerator and
        native-baseline work; the first real shard then lands on a warm
        fleet.  Futures are retained so startup failures surface on the
        first dispatch rather than vanishing."""
        self._warmup = [
            self._executor.submit(worker_mod._pool_warmup)
            for _ in range(self.workers)
        ]

    def run_shard(self, tasks) -> Future:
        return self._executor.submit(worker_mod._pool_run_shard, tasks)

    def run_estimates(self, strategy_id, names) -> Future:
        return self._executor.submit(
            worker_mod._pool_run_estimates, strategy_id, list(names)
        )

    def close(self) -> None:
        # wait for worker exit: shutdown(wait=False) leaves the executor's
        # management thread racing interpreter teardown, which surfaces as
        # spurious "Bad file descriptor" noise at exit
        self._executor.shutdown(wait=True, cancel_futures=True)


def make_pool(spec: WorkerSpec, workers: int, start_method: str | None = None):
    """Build the best pool available for ``workers``.

    Any failure to stand up a process pool (unsupported platform,
    unpicklable spec member) degrades to the inline pool -- the engine
    still runs, merely without parallel speedup.
    """
    if workers <= 1:
        return InlinePool(spec)
    try:
        return ProcessPool(spec, workers, start_method)
    except Exception:
        return InlinePool(spec)
