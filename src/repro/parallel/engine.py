"""Wave planning and dispatch for parallel exploration.

The serial wirer explores an fk update tree one configuration per
iteration: measure the current config, merge its profiles into the index,
advance.  ``advance`` consults the index, so naively parallelizing the
loop stalls on every measurement.  This module exploits the structure of
fk exploration to batch candidates into *waves*:

* the fk tree is a single ``parallel``-mode node over independent
  ``"units"`` variables (:meth:`~repro.core.enumerator.Enumerator.build_fk_tree`),
  and a ``"units"`` measurement depends only on the variable's own choice
  (the units its choice emits), never on what the other variables chose;
* therefore the *keys* a candidate will add to the index are known at
  planning time, before the measurement exists -- only the values are
  pending.

:func:`plan_wave` walks the tree speculatively against the union of the
real index and the pending key set.  A variable that would need a pending
*value* (its exhaustion ``finalize`` scans measured values) is deferred:
it rides along at its stale position, other variables keep stepping, and
the wave seals when nothing can step.  Each planned candidate carries a
tree snapshot so the wirer's merge can replay the serial bookkeeping
exactly -- and rewind cleanly when a candidate's samples all failed.

The result: every variable visits the same choice sequence as the serial
loop, the index receives identical keys and values, and winner selection
(``finalize`` over those entries) is identical -- while a whole phase
typically dispatches as one or two waves.  Trees of any other shape
(prefix stream phases, exhaustive subtrees, hierarchical forks) take the
serial path unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.adaptive import MODE_PARALLEL, AdaptiveVariable, UpdateNode
from .wire import CandidateTask

#: speculative advance results for one variable
ADV_LIVE = "live"          # stepped to a new unmeasured choice
ADV_DEFERRED = "deferred"  # cannot resolve without a pending value
ADV_DONE = "done"          # exhausted; finalized against real values

#: wave statuses
STATUS_EXHAUSTED = "exhausted"  # tree fully explored; phase is over
STATUS_SEALED = "sealed"        # blocked on pending values; advance owed
STATUS_BUDGET = "budget"        # phase budget reached at the last config
STATUS_LIMIT = "limit"          # wave cap reached; advance owed


def engine_supported(tree) -> bool:
    """Only the fk shape: a parallel root over plain adaptive variables.

    Everything else -- prefix stream phases (each child frozen at its
    best before the next starts), exhaustive subtrees (cartesian
    odometer) -- is inherently sequential in the index and stays on the
    serial path.
    """
    return (
        isinstance(tree, UpdateNode)
        and tree.mode == MODE_PARALLEL
        and bool(tree.children)
        and all(isinstance(c, AdaptiveVariable) for c in tree.children)
    )


@dataclass
class WaveEntry:
    """One planned configuration: a measurement candidate or an index hit.

    ``snapshot`` captures the tree positions *at* this configuration, so
    the merge can restore them before replaying -- profile keys and the
    quarantine config-key both read variables' current values.
    """

    kind: str  # "measure" | "hit"
    snapshot: tuple
    assignment: dict
    live_names: tuple = ()
    live_keys: tuple = ()


def _advance_var(var, index, context, pending) -> str:
    """Speculative mirror of :meth:`AdaptiveVariable.advance`.

    Treats pending keys as measured while walking (their values are
    coming), but refuses to *finalize* through them -- finalize compares
    measured values, and guessing one would let the wave diverge from
    the serial winner.
    """
    if var._exhausted:
        return ADV_DONE
    position = var._position
    while True:
        position += 1
        if position >= len(var.choices):
            for choice in var.choices:
                if var.profile_key(context, choice) in pending:
                    return ADV_DEFERRED  # position untouched; ride along
            var._exhausted = True
            var.finalize(index, context)
            return ADV_DONE
        key = var.profile_key(context, var.choices[position])
        if key not in index and key not in pending:
            var._position = position
            return ADV_LIVE


def _advance_wave(root, index, context, pending) -> str:
    """Speculative mirror of the parallel-mode :meth:`UpdateNode.advance`."""
    any_live = False
    any_deferred = False
    for pos, child in enumerate(root.children):
        if root._done[pos]:
            continue
        result = _advance_var(child, index, context, pending)
        if result == ADV_LIVE:
            any_live = True
        elif result == ADV_DEFERRED:
            any_deferred = True
        else:
            root._done[pos] = True
    if any_live:
        return ADV_LIVE
    return ADV_DEFERRED if any_deferred else ADV_DONE


def plan_wave(
    tree,
    index,
    context: tuple,
    *,
    samples: int,
    spent: int,
    budget: int,
    limit: int,
    advance_first: bool,
) -> tuple[list[WaveEntry], str]:
    """Enumerate the next wave of configurations from the tree's state.

    Visits configurations in exactly the serial loop's order: current
    config, advance, config, advance ...  ``spent`` and ``budget`` are
    the phase-local counts the serial loop compares (every measurement
    candidate charges exactly ``samples`` mini-batches, so the projection
    is exact).  ``advance_first`` discharges the advance owed by a
    previous sealed/limit wave -- performed against the real index, with
    nothing pending, it is the serial advance.

    Leaves the tree at the end-of-wave state; the caller re-restores
    entry snapshots while merging.
    """
    entries: list[WaveEntry] = []
    pending: set = set()
    measures = 0
    if advance_first:
        if not tree.advance(index, context):
            return entries, STATUS_EXHAUSTED
    while True:
        live = [
            v for v in tree.variables()
            if v.profile_key(context) not in index
            and v.profile_key(context) not in pending
        ]
        snapshot = tree.snapshot_state()
        if live:
            live_keys = tuple(v.profile_key(context) for v in live)
            pending.update(live_keys)
            entries.append(WaveEntry(
                kind="measure",
                snapshot=snapshot,
                assignment=tree.assignment(),
                live_names=tuple(v.name for v in live),
                live_keys=live_keys,
            ))
            measures += 1
            if spent + measures * samples >= budget:
                return entries, STATUS_BUDGET
            if measures >= limit:
                return entries, STATUS_LIMIT
        else:
            entries.append(WaveEntry(
                kind="hit", snapshot=snapshot, assignment=tree.assignment(),
            ))
        result = _advance_wave(tree, index, context, pending)
        if result == ADV_DONE:
            return entries, STATUS_EXHAUSTED
        if result == ADV_DEFERRED:
            return entries, STATUS_SEALED


@dataclass
class EngineStats:
    rounds: int = 0
    candidates: int = 0
    shards: int = 0
    estimate_shards: int = 0
    discarded: int = 0
    busy_s: float = 0.0
    dispatch_s: float = 0.0
    inline_fallbacks: int = 0
    pool_startup_s: float = 0.0


class ParallelEngine:
    """Dispatches planned waves onto a worker pool and accounts for it.

    Owns no exploration semantics: the wirer plans waves and merges
    outcomes; the engine turns measurement candidates into shards,
    gathers :class:`~repro.parallel.wire.CandidateOutcome` lists in
    canonical (ordinal) order, and publishes ``parallel.*`` telemetry.
    """

    def __init__(self, pool, metrics=None, tracer=None):
        from ..obs.metrics import NULL_REGISTRY
        from ..obs.trace import NULL_TRACER

        self.pool = pool
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = EngineStats()

    @property
    def workers(self) -> int:
        return self.pool.workers

    def prewarm(self) -> None:
        start = time.perf_counter()
        self.pool.prewarm()
        self.stats.pool_startup_s += time.perf_counter() - start

    # -- dispatch ---------------------------------------------------------

    def measure_wave(self, tasks: list[CandidateTask]) -> list:
        """Run one wave's candidates; outcomes return in ordinal order.

        Shards are contiguous runs of ordinals, so concatenating shard
        results in shard order *is* the canonical order -- no sorting,
        no ties to break.
        """
        if not tasks:
            return []
        wave_base_us = self.tracer.now_us()
        start = time.perf_counter()
        shards = _shard(tasks, self.pool.workers)
        futures = [self.pool.run_shard(shard) for shard in shards]
        outcomes: list = []
        for shard, future in zip(shards, futures):
            outcomes.extend(self._collect(shard, future))
        wall = time.perf_counter() - start
        self._absorb_spans(outcomes, wave_base_us)
        busy = sum(o.busy_s for o in outcomes)
        self.stats.rounds += 1
        self.stats.candidates += len(tasks)
        self.stats.shards += len(shards)
        self.stats.busy_s += busy
        self.stats.dispatch_s += wall
        self.metrics.counter("parallel.rounds").inc()
        self.metrics.counter("parallel.candidates").inc(len(tasks))
        for shard in shards:
            self.metrics.histogram("parallel.shard_size").observe(len(shard))
        self.metrics.histogram("parallel.dispatch_us").observe(wall * 1e6)
        utilization = (
            busy / (wall * self.pool.workers) if wall > 0 else 0.0
        )
        self.metrics.series("parallel.utilization").append(utilization)
        self.tracer.instant(
            "parallel/round",
            candidates=len(tasks), shards=len(shards),
            wall_us=wall * 1e6, utilization=round(utilization, 3),
        )
        return outcomes

    def _absorb_spans(self, outcomes, wave_base_us: float) -> None:
        """Re-home worker-recorded spans onto the parent tracer's clock.

        Workers stamp span ``ts`` relative to their own candidate start;
        the parent lays each worker's candidates out back-to-back from the
        wave's start on that worker's dedicated track.  The layout is an
        approximation of true wall alignment (workers start within the
        dispatch jitter of each other), but busy/idle proportions and
        per-candidate durations are exact.
        """
        cursor: dict[int, float] = {}
        for outcome in outcomes:
            if not outcome.spans:
                continue
            base = wave_base_us + cursor.get(outcome.worker_pid, 0.0)
            self.tracer.absorb_worker_spans(
                outcome.spans, outcome.worker_pid, base
            )
            cursor[outcome.worker_pid] = (
                cursor.get(outcome.worker_pid, 0.0) + outcome.busy_s * 1e6
            )

    def gather_estimates(self, strategy_id: int, names: list) -> dict:
        """Sharded cost-model pre-ranking: name -> per-choice estimates."""
        if not names:
            return {}
        shards = _shard(list(names), self.pool.workers)
        futures = [
            self.pool.run_estimates(strategy_id, shard) for shard in shards
        ]
        estimates: dict = {}
        for shard, future in zip(shards, futures):
            try:
                rows = future.result()
            except Exception:
                # a failed estimate shard costs nothing: the pruner
                # recomputes missing entries serially
                self.stats.inline_fallbacks += 1
                continue
            estimates.update(zip(shard, rows))
        self.stats.estimate_shards += len(shards)
        self.metrics.counter("parallel.estimate_jobs").inc(len(names))
        return estimates

    def _collect(self, shard, future) -> list:
        """Resolve one shard, degrading to in-caller execution if the
        pool broke (worker killed, pipe torn): slower, never wrong --
        the outcome log is identical by the determinism contract."""
        try:
            return future.result()
        except Exception:
            self.stats.inline_fallbacks += 1
            self.metrics.counter("parallel.inline_fallbacks").inc()
            inline = self._inline()
            return inline.run_shard(shard).result()

    def _inline(self):
        if getattr(self.pool, "kind", None) == "inline":
            return self.pool
        if not hasattr(self, "_fallback"):
            self._fallback = self.make_inline_pool(self.pool_spec)
        return self._fallback

    def make_inline_pool(self, spec):
        """Build the in-caller fallback pool for ``_collect`` degradation.

        Subclasses dispatching a different task shape (the fleet engine's
        strategy tasks) override this with their own inline pool; the
        collect/degrade machinery above is shared unchanged.
        """
        from .pool import InlinePool

        return InlinePool(spec)

    # the wirer sets this right after constructing the engine; kept out
    # of __init__ so tests can drive the engine with a bare pool
    pool_spec = None

    def summary(self) -> dict:
        s = self.stats
        return {
            "workers": self.pool.workers,
            "pool": getattr(self.pool, "kind", "unknown"),
            "rounds": s.rounds,
            "candidates": s.candidates,
            "shards": s.shards,
            "discarded": s.discarded,
            "worker_busy_s": round(s.busy_s, 6),
            "dispatch_s": round(s.dispatch_s, 6),
            "pool_startup_s": round(s.pool_startup_s, 6),
            "inline_fallbacks": s.inline_fallbacks,
        }

    def close(self) -> None:
        self.pool.close()


def _shard(items: list, workers: int) -> list[list]:
    """Contiguous, balanced partition of ``items`` into ≤ ``workers`` runs."""
    if not items:
        return []
    count = min(max(1, workers), len(items))
    base, extra = divmod(len(items), count)
    shards = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        shards.append(items[start:start + size])
        start += size
    return shards
