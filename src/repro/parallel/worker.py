"""Worker half of the parallel exploration engine.

A worker owns a full measurement pipeline -- enumerator, lowering cache,
executor, simulator -- rebuilt from the :class:`~repro.parallel.wire.WorkerSpec`.
Per candidate it: resolves the allocation strategy, builds the plan from
the shipped assignment, lowers (through its own cache), optionally
validates, and runs the policy's sample/retry loop against a per-candidate
injector sub-state and jitter sub-stream.  Every observation the wirer's
serial bookkeeping would have made is captured in the
:class:`~repro.parallel.wire.CandidateOutcome` event log, so the parent
can replay it in canonical order and end up in the same state a serial
run reaches.

Module-level ``_pool_*`` functions are the process-pool entry points; the
in-process fallback pool calls the same code with an explicit state, so
``--workers 1`` and ``--workers N`` execute one implementation.
"""

from __future__ import annotations

import os
import pickle
import time

from .wire import CandidateOutcome, CandidateTask, SampleRecord, WorkerSpec, slim_result

#: domain-separation tag for per-candidate simulator jitter substreams
SIM_STREAM_TAG = 0x51B0


class WorkerState:
    """One worker's long-lived pipeline, built once per process."""

    def __init__(self, spec: WorkerSpec):
        from ..core.enumerator import Enumerator
        from ..obs.metrics import NULL_REGISTRY
        from ..perf.cache import LoweringCache
        from ..runtime.executor import Executor

        self.spec = spec
        self.enumerator = Enumerator(
            spec.graph, spec.device, spec.features,
            metrics=NULL_REGISTRY, cache_units=spec.fast.cache,
        )
        self.strategies = {
            s.strategy_id: s for s in self.enumerator.strategies
        }
        self.cache = LoweringCache() if spec.fast.cache else None
        self.executor = Executor(
            spec.graph, spec.device, seed=spec.seed, validate=spec.validate,
            injector=None, cache=self.cache,
        )
        #: strategy_id -> (unpruned fk tree, {var name -> var}); estimates
        #: must see the same choice lists the parent's unpruned tree has
        self._fk_vars: dict[int, dict] = {}

    def _vars_for(self, strategy_id: int) -> dict:
        cached = self._fk_vars.get(strategy_id)
        if cached is None:
            tree = self.enumerator.build_fk_tree(self.strategies[strategy_id])
            cached = {v.name: v for v in tree.variables()}
            self._fk_vars[strategy_id] = cached
        return cached


def run_estimates(state: WorkerState, strategy_id: int, names: list) -> list:
    """Cost-model estimates for a shard of fk variables.

    Returns one per-choice estimate list per name, computed by the same
    pure-float :func:`~repro.perf.ranker.estimate_choice_us` the serial
    pre-ranker uses -- bit-identical across processes.
    """
    from ..perf.ranker import estimate_choice_us

    strategy = state.strategies[strategy_id]
    out = []
    for name in names:
        var = state._vars_for(strategy_id)[name]
        out.append([
            estimate_choice_us(
                state.enumerator, strategy, var, choice, state.spec.device
            )
            for choice in var.choices
        ])
    return out


def run_shard(state: WorkerState, tasks: list) -> list:
    """Measure a contiguous shard of candidates, in ordinal order."""
    return [measure_candidate(state, task) for task in tasks]


def measure_candidate(state: WorkerState, task: CandidateTask) -> CandidateOutcome:
    """The worker-side mirror of the wirer's per-configuration loop.

    Mirrors ``CustomWirer._measure_config`` / ``_measure``: up to
    ``policy.samples`` mini-batches, each retried on transient faults up
    to ``policy.max_attempts`` with re-validation on retry.  Instead of
    *acting* on the observations (counters, fault logs, quarantine), it
    records them for the parent to replay at the merge position.
    """
    from ..check import ScheduleValidationError
    from ..faults.events import FaultError, PreemptionError
    from ..faults.injector import FaultInjector
    from ..obs.metrics import Counter, MetricsRegistry

    out = CandidateOutcome(ordinal=task.ordinal, worker_pid=os.getpid())
    start = time.perf_counter()
    spec = state.spec
    registry = MetricsRegistry()
    injector = None
    if spec.fault_plan is not None and spec.fault_plan.specs:
        injector = FaultInjector.for_candidate(
            spec.fault_plan, task.base_minibatch, preempted=task.preempted
        )
    executor = state.executor
    executor.metrics = registry
    executor.injector = injector
    executor._simulator.injector = injector
    executor._simulator.reseed((spec.seed, SIM_STREAM_TAG, task.base_minibatch))
    plan_label = None
    try:
        strategy = state.strategies[task.strategy_id]
        built = state.enumerator.build_plan(
            strategy, task.assignment_dict(),
            profile_vars=set(task.live_names),
        )
        plan_label = built.plan.label
        out.var_units = {
            name: list(ids) for name, ids in built.var_units.items()
        }
        keep_units = set()
        for ids in built.var_units.values():
            keep_units.update(ids)
        for sample_no in range(spec.policy.samples):
            record = SampleRecord()
            out.samples.append(record)
            attempts = 0
            sample_start = time.perf_counter()
            while True:
                try:
                    # mirror of CustomWirer._measure: a retried plan is
                    # statically re-validated even in unvalidated mode
                    validate = True if attempts > 0 and not spec.validate else None
                    result = executor.run(built.plan, validate=validate)
                except FaultError as exc:
                    if not exc.transient:
                        raise
                    attempts += 1
                    record.aborts.append((exc.kind, str(exc)))
                    if attempts >= spec.policy.max_attempts:
                        break  # sample lost; result stays None
                    continue
                record.result = slim_result(result, keep_units)
                break
            if spec.trace:
                now = time.perf_counter()
                out.spans.append({
                    "ph": "X",
                    "name": f"sample {plan_label}",
                    "cat": "worker",
                    "ts": (sample_start - start) * 1e6,
                    "dur": (now - sample_start) * 1e6,
                    "args": {
                        "ordinal": task.ordinal,
                        "sample": sample_no,
                        "retries": attempts,
                        "sim_us": (
                            record.result.total_time_us
                            if record.result is not None else None
                        ),
                    },
                })
    except PreemptionError as exc:
        out.preempted_at = exc.minibatch
    except ScheduleValidationError as exc:
        out.violations = [
            (plan_label or "astra", violation.kind, str(violation))
            for violation in exc.report.violations
        ]
        out.error, out.error_repr = _encode_error(exc)
    except FaultError as exc:  # non-transient: OOM window, etc.
        out.error, out.error_repr = _encode_error(exc)
    finally:
        executor.injector = None
        executor._simulator.injector = None
    if injector is not None:
        out.injector_records = list(injector.ledger)
        out.injector_minibatch = injector.minibatch
        out.injector_preempted = injector._preempted
    out.counters = {
        name: metric.value
        for name, metric in registry._instruments.items()
        if isinstance(metric, Counter) and metric.value
    }
    out.busy_s = time.perf_counter() - start
    return out


def _encode_error(exc) -> tuple:
    try:
        return pickle.dumps(exc), repr(exc)
    except Exception:
        return None, repr(exc)


# -- process-pool entry points (module level: picklable by reference) -----

_STATE: WorkerState | None = None


def _pool_init(payload: bytes) -> None:
    global _STATE
    _STATE = WorkerState(pickle.loads(payload))


def _pool_warmup() -> bool:
    """No-op task: forces worker spawn + initializer while the parent is
    still doing its own setup, so the fleet is warm before the first wave."""
    return _STATE is not None


def _pool_run_shard(tasks: list) -> list:
    return run_shard(_STATE, tasks)


def _pool_run_estimates(strategy_id: int, names: list) -> list:
    return run_estimates(_STATE, strategy_id, names)
