"""Fast-path exploration: making the optimizer itself cheap.

Astra's premise is that mini-batches are cheap probes, but a naive wirer
re-lowers and re-simulates every candidate configuration from scratch --
the optimizer becomes the hot path.  This package keeps every winner
identical while removing the redundant work:

* :mod:`repro.perf.signature` -- stable structural signatures for
  execution plans (fusion groups, library choices, stream map, barriers,
  profiling set, allocation identity);
* :mod:`repro.perf.cache` -- the plan-signature compilation cache that
  memoizes lowering (full schedules, and the dependency/order analysis
  shared across structurally identical plans);
* :mod:`repro.perf.ranker` -- the cost-model-guided pre-ranker that
  prunes provably-losing fusion/kernel choices before any simulated
  mini-batch is spent on them (``--no-prune`` restores exhaustive
  search; an equivalence test pins that both converge identically);
* :mod:`repro.perf.timers` -- exclusive per-phase wall-clock accounting
  (enumerate / lower / simulate / explore) with a null-object default;
* :mod:`repro.perf.bench` -- the ``repro bench`` harness that records
  baseline-vs-fast numbers into ``BENCH_<model>.json``.

See ``docs/performance.md`` for the cache key, the pruning invariant and
how to read the bench output.
"""

from .cache import LoweringCache
from .ranker import FastPath, estimate_choice_us, prune_fk_tree
from .signature import PlanSignature, plan_key, plan_signature, structure_key
from .timers import NULL_CLOCK, PhaseClock

__all__ = [
    "FastPath",
    "LoweringCache",
    "NULL_CLOCK",
    "PhaseClock",
    "PlanSignature",
    "estimate_choice_us",
    "plan_key",
    "plan_signature",
    "prune_fk_tree",
    "structure_key",
]
