"""Cost-model-guided pre-ranking of the fusion/kernel search space.

The fk phase explores ``"units"``-metric variables in parallel: every
mini-batch measures one choice per live variable, and a variable's
measurement is the summed execution time of exactly the units its choice
emitted (kernel duration + gather pre-copies; never launch overhead).
At base clock, without a fault injector, the simulator computes those
durations from the same analytic kernel models the cost model exposes --
so :func:`estimate_choice_us` reproduces the number the wirer *would*
measure, to float precision.

That exactness is what makes pruning safe: a choice whose estimate
exceeds the variable's best estimate by more than the guard margin can
never win ``finalize`` (which picks the measured minimum), so dropping
it cannot change any winner.  The convergence-equivalence tests pin
this: pruned and exhaustive exploration pick the same configuration and
the same final epoch time on every bundled model.

When the exactness preconditions do not hold (autoboost clock jitter, an
armed fault injector perturbing durations), :func:`prune_fk_tree`
declines to prune rather than risk a divergent winner.  Stream-phase
variables are never pruned: their epoch metric depends on cross-stream
overlap, for which the serial cost model is not admissible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.cost_model import units_cost_us
from ..gpu.device import CLOCK_BASE
from ..obs.metrics import NULL_REGISTRY


@dataclass(frozen=True)
class FastPath:
    """Fast-path configuration carried by the wirer.

    The library default keeps the compilation cache on (bit-identical by
    construction) and pruning off; the CLI turns pruning on and exposes
    ``--no-prune`` / ``--no-cache`` escape hatches.
    """

    #: memoize lowering through :class:`repro.perf.cache.LoweringCache`
    #: and the enumerator's unit-template cache
    cache: bool = True
    #: pre-rank fk choices with the cost model and prune losers
    prune: bool = False
    #: at most this fraction of a variable's choices may be pruned
    prune_fraction: float = 0.75
    #: keep any choice whose estimate is within (1 + margin) of the best
    #: -- absorbs float-roundoff ties without ever risking the argmin
    prune_margin: float = 0.05


def estimate_choice_us(enumerator, strategy, var, choice, device) -> float:
    """The ``"units"`` metric this choice would measure, analytically."""
    units = enumerator.units_for_choice(strategy, var, choice)
    return units_cost_us(units, device)


def _prunable(var, enumerator, tree_var_names: set[str]) -> bool:
    """Is pruning this variable's choices admissible at all?

    Mirrors the per-variable guards in :func:`prune_fk_tree` minus the
    counters, so the parallel engine can compute the estimate work list
    without touching the tree.
    """
    if var.metric_kind != "units" or len(var.choices) <= 1:
        return False
    if var.name.startswith("ladder:") and (
        enumerator.member_unfused_kernel_vars(var.payload) & tree_var_names
    ):
        return False
    return True


def estimate_jobs(enumerator, tree, device, injector=None) -> list[str]:
    """Names of fk variables whose choice estimates may be computed out of
    process by the parallel engine.

    Empty when :func:`prune_fk_tree` would decline to prune (injector
    armed, non-base clock): shipping estimates that will never be used is
    pure overhead.  Must be called on the *unpruned* tree -- workers
    rebuild the same tree deterministically and estimate against the same
    choice lists.
    """
    if injector is not None or device.clock_mode != CLOCK_BASE:
        return []
    tree_var_names = {v.name for v in tree.variables()}
    return [
        v.name for v in tree.variables()
        if _prunable(v, enumerator, tree_var_names)
    ]


def prune_fk_tree(
    enumerator, strategy, tree, device, fast: FastPath,
    metrics=None, injector=None, estimates=None,
) -> int:
    """Prune provably-losing choices from an fk update tree, in place.

    Returns the number of choices removed.  Mutates ``var.choices`` and
    re-initializes the tree so exploration starts from the pruned space;
    pruning is deterministic in (graph, device, strategy), so a resumed
    run reproduces the same pruned space.  Never prunes when the serial
    cost model is not provably exact (injector armed, non-base clock),
    and always keeps at least ``1 - prune_fraction`` of each variable's
    choices, including every choice tied with the best estimate.

    ``estimates`` optionally maps variable name -> per-choice estimate
    list computed elsewhere (the parallel engine shards the cost-model
    evaluation across workers).  Provided lists must come from
    :func:`estimate_choice_us` on an identical enumerator -- the pure
    float computation is bit-identical across processes -- and any
    missing or length-mismatched entry falls back to the serial
    computation, so a stale list can never change the pruning decision.
    """
    metrics = metrics if metrics is not None else NULL_REGISTRY
    if injector is not None or device.clock_mode != CLOCK_BASE:
        metrics.counter("perf.prune.skipped_inexact").inc()
        return 0

    provided = estimates if estimates is not None else {}
    pruned_total = 0
    tree_var_names = {v.name for v in tree.variables()}
    for var in tree.variables():
        if var.metric_kind != "units" or len(var.choices) <= 1:
            continue
        if var.name.startswith("ladder:") and (
            enumerator.member_unfused_kernel_vars(var.payload) & tree_var_names
        ):
            # the unfused choice's library is decided by a concurrent
            # kernel variable, so the analytic estimate (default library)
            # is not the value the wirer would measure -- don't prune
            metrics.counter("perf.prune.skipped_coupled").inc()
            continue
        var_estimates = provided.get(var.name)
        if var_estimates is None or len(var_estimates) != len(var.choices):
            var_estimates = [
                estimate_choice_us(enumerator, strategy, var, choice, device)
                for choice in var.choices
            ]
        cut = min(var_estimates) * (1.0 + fast.prune_margin)
        survivors = [i for i, est in enumerate(var_estimates) if est <= cut]
        keep_floor = max(1, len(var.choices) - int(fast.prune_fraction * len(var.choices)))
        if len(survivors) < keep_floor:
            # top back up with the next-cheapest choices so no more than
            # prune_fraction of the space is ever discarded
            ranked = sorted(
                range(len(var_estimates)), key=lambda i: (var_estimates[i], i)
            )
            survivors = sorted(ranked[:keep_floor])
        if len(survivors) == len(var.choices):
            continue
        pruned_total += len(var.choices) - len(survivors)
        # preserve relative order: choice order decides round pairing and
        # finalize tie-breaks, so survivors keep their original sequence
        var.choices[:] = [var.choices[i] for i in survivors]
        var.initialize()

    if pruned_total:
        metrics.counter("perf.prune.choices_pruned").inc(pruned_total)
    tree.initialize()
    return pruned_total
