"""Cost-model-guided pre-ranking of the fusion/kernel search space.

The fk phase explores ``"units"``-metric variables in parallel: every
mini-batch measures one choice per live variable, and a variable's
measurement is the summed execution time of exactly the units its choice
emitted (kernel duration + gather pre-copies; never launch overhead).
At base clock, without a fault injector, the simulator computes those
durations from the same analytic kernel models the cost model exposes --
so :func:`estimate_choice_us` reproduces the number the wirer *would*
measure, to float precision.

That exactness is what makes pruning safe: a choice whose estimate
exceeds the variable's best estimate by more than the guard margin can
never win ``finalize`` (which picks the measured minimum), so dropping
it cannot change any winner.  The convergence-equivalence tests pin
this: pruned and exhaustive exploration pick the same configuration and
the same final epoch time on every bundled model.

When the exactness preconditions do not hold (autoboost clock jitter, an
armed fault injector perturbing durations), :func:`prune_fk_tree`
declines to prune rather than risk a divergent winner.  Stream-phase
variables are never pruned: their epoch metric depends on cross-stream
overlap, for which the serial cost model is not admissible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..gpu.cost_model import units_cost_us
from ..gpu.device import CLOCK_BASE
from ..obs.metrics import NULL_REGISTRY


@dataclass(frozen=True)
class FastPath:
    """Fast-path configuration carried by the wirer.

    The library default keeps the compilation cache on (bit-identical by
    construction) and pruning off; the CLI turns pruning on and exposes
    ``--no-prune`` / ``--no-cache`` escape hatches.
    """

    #: memoize lowering through :class:`repro.perf.cache.LoweringCache`
    #: and the enumerator's unit-template cache
    cache: bool = True
    #: pre-rank fk choices with the cost model and prune losers
    prune: bool = False
    #: at most this fraction of a variable's choices may be pruned
    prune_fraction: float = 0.75
    #: keep any choice whose estimate is within (1 + margin) of the best
    #: -- absorbs float-roundoff ties without ever risking the argmin
    prune_margin: float = 0.05


def estimate_choice_us(enumerator, strategy, var, choice, device) -> float:
    """The ``"units"`` metric this choice would measure, analytically."""
    units = enumerator.units_for_choice(strategy, var, choice)
    return units_cost_us(units, device)


def _prunable(var, enumerator, tree_var_names: set[str]) -> bool:
    """Is pruning this variable's choices admissible at all?

    Mirrors the per-variable guards in :func:`prune_fk_tree` minus the
    counters, so the parallel engine can compute the estimate work list
    without touching the tree.
    """
    if var.metric_kind != "units" or len(var.choices) <= 1:
        return False
    if var.name.startswith("ladder:") and (
        enumerator.member_unfused_kernel_vars(var.payload) & tree_var_names
    ):
        return False
    return True


def estimate_jobs(enumerator, tree, device, injector=None) -> list[str]:
    """Names of fk variables whose choice estimates may be computed out of
    process by the parallel engine.

    Empty when :func:`prune_fk_tree` would decline to prune (injector
    armed, non-base clock): shipping estimates that will never be used is
    pure overhead.  Must be called on the *unpruned* tree -- workers
    rebuild the same tree deterministically and estimate against the same
    choice lists.
    """
    if injector is not None or device.clock_mode != CLOCK_BASE:
        return []
    tree_var_names = {v.name for v in tree.variables()}
    return [
        v.name for v in tree.variables()
        if _prunable(v, enumerator, tree_var_names)
    ]


def prune_fk_tree(
    enumerator, strategy, tree, device, fast: FastPath,
    metrics=None, injector=None, estimates=None,
) -> int:
    """Prune provably-losing choices from an fk update tree, in place.

    Returns the number of choices removed.  Mutates ``var.choices`` and
    re-initializes the tree so exploration starts from the pruned space;
    pruning is deterministic in (graph, device, strategy), so a resumed
    run reproduces the same pruned space.  Never prunes when the serial
    cost model is not provably exact (injector armed, non-base clock),
    and always keeps at least ``1 - prune_fraction`` of each variable's
    choices, including every choice tied with the best estimate.

    ``estimates`` optionally maps variable name -> per-choice estimate
    list computed elsewhere (the parallel engine shards the cost-model
    evaluation across workers).  Provided lists must come from
    :func:`estimate_choice_us` on an identical enumerator -- the pure
    float computation is bit-identical across processes -- and any
    missing or length-mismatched entry falls back to the serial
    computation, so a stale list can never change the pruning decision.
    """
    metrics = metrics if metrics is not None else NULL_REGISTRY
    if injector is not None or device.clock_mode != CLOCK_BASE:
        metrics.counter("perf.prune.skipped_inexact").inc()
        return 0

    provided = estimates if estimates is not None else {}
    pruned_total = 0
    tree_var_names = {v.name for v in tree.variables()}
    for var in tree.variables():
        if var.metric_kind != "units" or len(var.choices) <= 1:
            continue
        if var.name.startswith("ladder:") and (
            enumerator.member_unfused_kernel_vars(var.payload) & tree_var_names
        ):
            # the unfused choice's library is decided by a concurrent
            # kernel variable, so the analytic estimate (default library)
            # is not the value the wirer would measure -- don't prune
            metrics.counter("perf.prune.skipped_coupled").inc()
            continue
        var_estimates = provided.get(var.name)
        if var_estimates is None or len(var_estimates) != len(var.choices):
            var_estimates = [
                estimate_choice_us(enumerator, strategy, var, choice, device)
                for choice in var.choices
            ]
        cut = min(var_estimates) * (1.0 + fast.prune_margin)
        survivors = [i for i, est in enumerate(var_estimates) if est <= cut]
        keep_floor = max(1, len(var.choices) - int(fast.prune_fraction * len(var.choices)))
        if len(survivors) < keep_floor:
            # top back up with the next-cheapest choices so no more than
            # prune_fraction of the space is ever discarded
            ranked = sorted(
                range(len(var_estimates)), key=lambda i: (var_estimates[i], i)
            )
            survivors = sorted(ranked[:keep_floor])
        if len(survivors) == len(var.choices):
            continue
        pruned_total += len(var.choices) - len(survivors)
        # preserve relative order: choice order decides round pairing and
        # finalize tie-breaks, so survivors keep their original sequence
        var.choices[:] = [var.choices[i] for i in survivors]
        var.initialize()

    if pruned_total:
        metrics.counter("perf.prune.choices_pruned").inc(pruned_total)
    tree.initialize()
    return pruned_total


# -- fleet strategy pre-ranking (docs/distributed.md) -------------------------
#
# The same exactness argument, lifted from kernel choices to partitioning
# strategies.  At base clock without an injector the simulator's measured
# per-unit durations *are* the analytic kernel costs, so for every
# strategy a lower bound on its measured step time can be computed from
# pure arithmetic before a single strategy mini-batch is spent:
#
# * a replica's mini-batch time is at least the summed kernel durations
#   (the GPU must run them all) AND at least the serialized launch
#   overheads (the host must dispatch them all) -- ``max`` of the two;
# * the exposed all-reduce is at least ``comm * (1 - overlap_fraction)``,
#   because the hideable part is capped at ``overlap_fraction * comm``;
# * a pipeline's beat is at least its slowest stage's attributed compute
#   plus one *uncontended* boundary transfer (contention only adds).
#
# A strategy whose bound exceeds the seed strategy's *measured* step time
# can never win ``finalize`` (which picks the measured minimum), so
# pruning it cannot change the winner -- ties survive because the cut is
# ``bound > best``, never ``>=``.  When the preconditions fail (injector
# armed, autoboost clocks, inner-Astra compute whose stream overlap
# breaks the summed-durations bound) the pruner stands down and the
# search measures everything, exactly like :func:`prune_fk_tree`.


def fleet_replica_lo(
    compute_lo: Callable[[str, int], float],
    placement: tuple[str, ...],
    shards: tuple[int, ...],
) -> float:
    """Slowest-replica analytic beat of a data strategy."""
    return max(
        compute_lo(cls, shard) for cls, shard in zip(placement, shards)
    )


def fleet_strategy_lo(
    strategy,
    *,
    batch_size: int,
    grad_bytes: int,
    hidden_size: int,
    interconnect,
    scopes: tuple[str, ...],
    compute_lo: Callable[[str, int], float],
    stage_lo: Callable[[str, int], dict],
    overlap_fraction: float,
) -> float:
    """Admissible per-sample lower bound for one fleet strategy.

    ``compute_lo(cls, batch)`` and ``stage_lo(cls, micro)`` supply the
    per-device-class analytic price sheet (the fleet measurer computes it
    from the same native plans the measurement executes); everything else
    is closed-form.  Admissible: never exceeds the measured per-sample
    time at base clock, so ``bound > measured_best`` is a proof of loss.
    """
    if strategy.kind == "data":
        beat = fleet_replica_lo(compute_lo, strategy.placement, strategy.shards)
        world = len(strategy.placement)
        exposed = 0.0
        if world > 1:
            comm = interconnect.allreduce_us(grad_bytes, world)
            exposed = comm * (1.0 - overlap_fraction)
        return (beat + exposed) / float(batch_size)

    micro = max(1, batch_size // strategy.microbatches)
    samples = micro * strategy.microbatches
    stages = len(strategy.cuts)
    beat = 0.0
    start = 0
    for cls, width in zip(strategy.placement, strategy.cuts):
        per_scope = stage_lo(cls, micro)
        stage = sum(per_scope.get(s, 0.0) for s in scopes[start:start + width])
        beat = max(beat, stage)
        start += width
    if stages > 1:
        beat += interconnect.contended_us(micro * hidden_size * 4, 1)
    return (strategy.microbatches + stages - 1) * beat / float(samples)


def fleet_prune_standdown(
    *, injector=None, clock_modes=(), use_astra: bool = False,
) -> str | None:
    """Why strategy-bound pruning must decline, or None when it may run.

    Mirrors :func:`prune_fk_tree`'s guard, plus the fleet-specific case:
    inner-Astra compute uses stream overlap, for which the serialized
    summed-durations bound is not admissible.
    """
    if injector is not None:
        return "faults"
    if any(mode != CLOCK_BASE for mode in clock_modes):
        return "clock"
    if use_astra:
        return "inner_astra"
    return None


def prune_fleet_strategies(
    strategies: list,
    bounds: list[float],
    best_measured_us: float,
    *,
    metrics=None,
    injector=None,
    clock_modes=(),
    use_astra: bool = False,
) -> tuple[list[int], str | None]:
    """Indices of strategies that may still win, given the seed's
    measured per-sample time; preserves enumeration order.

    Returns ``(survivor_indices, standdown_reason)``.  On stand-down
    every index survives and ``fleet.prune.skipped_<reason>`` counts why
    -- the chaos contract: under injection the search measures the full
    space and the (faulted) winner is the exhaustive one by construction.
    """
    metrics = metrics if metrics is not None else NULL_REGISTRY
    reason = fleet_prune_standdown(
        injector=injector, clock_modes=clock_modes, use_astra=use_astra
    )
    if reason is not None:
        metrics.counter(f"fleet.prune.skipped_{reason}").inc()
        return list(range(len(strategies))), reason
    survivors = [
        i for i, bound in enumerate(bounds) if bound <= best_measured_us
    ]
    pruned = len(strategies) - len(survivors)
    if pruned:
        metrics.counter("fleet.prune.strategies_pruned").inc(pruned)
    return survivors, None
