"""Stable structural signatures for execution plans.

The compilation cache (:mod:`repro.perf.cache`) keys lowered schedules by
*what the dispatcher sees*: the unit list (kernels with all their shape /
library / traffic parameters, covered nodes, gather pre-copies, host
work, epoch coordinates), the stream map, the explicit dispatch order,
barrier placement, the profiling configuration, and the allocation
identity (label, arena size, contiguity-group structure).  Two plans with
equal signatures lower to bit-identical schedules; anything that could
change a single dispatch item changes the signature.

Deliberately excluded: ``plan.label`` -- it is cosmetic (it names the
plan in traces and reports) and never reaches a dispatch item, so e.g.
``astra`` and ``astra/production`` plans that are otherwise identical
share cached work.  Unit labels *are* included: ``validate_covering``
treats ``pack_*`` units specially, so they are structural.

Two forms exist: :func:`plan_key` / :func:`structure_key` return plain
hashable tuples -- the hot-path dictionary keys the compilation cache
uses on every lookup -- and :func:`plan_signature` wraps the plan key as
a canonical string (``repr`` of the tuple) plus a sha256 digest for
serialization.  The property tests pin injectivity on structurally
distinct plans and ``dumps``/``loads`` round-trip stability.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

SIGNATURE_VERSION = 1


#: identity-keyed kernel-key memo.  The enumerator's template cache hands
#: out unit *copies* that share kernel objects, so across exploration
#: rounds the same kernel instance is re-signed thousands of times.  The
#: stored strong reference keeps the object alive, which keeps its id()
#: valid; the ``is`` check makes an id collision impossible to act on.
#: Kernels are construct-once values (never mutated after ``__post_init__``).
_KERNEL_KEY_MEMO: dict[int, tuple] = {}
_KERNEL_KEY_CAP = 8192


def _kernel_key(kernel) -> tuple | None:
    """Canonical identity of one kernel: class name + every dataclass
    field (shapes, library, traffic, node coverage)."""
    if kernel is None:
        return None
    entry = _KERNEL_KEY_MEMO.get(id(kernel))
    if entry is not None and entry[0] is kernel:
        return entry[1]
    key = (type(kernel).__name__,) + tuple(
        (f.name, getattr(kernel, f.name)) for f in dataclasses.fields(kernel)
    )
    if len(_KERNEL_KEY_MEMO) >= _KERNEL_KEY_CAP:
        _KERNEL_KEY_MEMO.clear()
    _KERNEL_KEY_MEMO[id(kernel)] = (kernel, key)
    return key


def _allocation_key(allocation) -> tuple | None:
    if allocation is None:
        return None
    return (allocation.label, allocation.arena_size_bytes, allocation.strategy_key())


@dataclasses.dataclass(frozen=True)
class PlanSignature:
    """Canonical structural key of a plan plus its sha256 digest."""

    key: str
    digest: str

    def dumps(self) -> str:
        return json.dumps(
            {"version": SIGNATURE_VERSION, "key": self.key, "digest": self.digest}
        )

    @classmethod
    def loads(cls, text: str) -> "PlanSignature":
        doc = json.loads(text)
        if doc.get("version") != SIGNATURE_VERSION:
            raise ValueError(f"unsupported signature version {doc.get('version')}")
        sig = cls(key=doc["key"], digest=doc["digest"])
        if _digest(sig.key) != sig.digest:
            raise ValueError("signature digest does not match its key")
        return sig


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def plan_key(plan) -> tuple:
    """Full structural key: equal keys => identical lowering.

    A plain nested tuple of hashable values -- usable directly as a dict
    key, with no serialization cost on the cache's hot path.
    """
    return (
        "plan-sig", SIGNATURE_VERSION,
        tuple(
            (
                unit.unit_id,
                _kernel_key(unit.kernel),
                unit.node_ids,
                unit.label,
                tuple(_kernel_key(k) for k in unit.pre_copies),
                unit.host_us,
                unit.epoch,
                unit.super_epoch,
            )
            for unit in plan.units
        ),
        tuple(sorted(plan.stream_of.items())),
        tuple(plan.dispatch_order) if plan.dispatch_order is not None else None,
        tuple(sorted(plan.barriers_after)),
        plan.profile,
        (
            tuple(sorted(plan.profile_unit_ids))
            if plan.profile_unit_ids is not None
            else None
        ),
        _allocation_key(plan.allocation),
    )


def plan_signature(plan) -> PlanSignature:
    """Serializable form of :func:`plan_key`: canonical string + digest."""
    key = repr(plan_key(plan))
    return PlanSignature(key=key, digest=_digest(key))


def structure_key(plan) -> tuple:
    """Coarser signature of what the *dependency analysis* sees.

    ``Dispatcher.unit_dependencies`` depends only on each unit's id and
    covered nodes (plus the graph, fixed per dispatcher), and the issue
    order only additionally on ``dispatch_order``.  Plans that differ
    merely in kernel parameters (library choices, gather sizes), stream
    maps, barriers or profiling share one deps/order computation -- which
    is most of what consecutive exploration rounds are.
    """
    return (
        "plan-structure", SIGNATURE_VERSION,
        tuple(
            (unit.unit_id, unit.node_ids, unit.kernel is not None,
             unit.host_us > 0.0)
            for unit in plan.units
        ),
        tuple(plan.dispatch_order) if plan.dispatch_order is not None else None,
    )
