"""Exclusive per-phase wall-clock accounting.

A :class:`PhaseClock` splits a run's wall time into named phases
(``enumerate`` / ``lower`` / ``simulate`` / ``explore`` / ...).  Phases
nest, and the accounting is *exclusive*: entering a nested phase pauses
the enclosing one, so a slow inner phase can never be attributed to the
phase that happened to wrap it.  The sum of all phase times therefore
equals the total timed wall clock (up to timer-read overhead), which is
what the bench harness asserts.

Instrumented code holds a clock reference and calls it unconditionally;
:data:`NULL_CLOCK` is the do-nothing default (the same null-object idiom
as :data:`repro.obs.metrics.NULL_REGISTRY`), so un-benchmarked runs pay
one attribute lookup and an empty context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext


class PhaseClock:
    """Stack-based exclusive phase timer."""

    __slots__ = ("seconds", "counts", "_stack")

    def __init__(self) -> None:
        #: phase name -> exclusive seconds spent in it
        self.seconds: dict[str, float] = {}
        #: phase name -> number of times it was entered
        self.counts: dict[str, int] = {}
        # each frame is [name, resume_timestamp]; only the top frame runs
        self._stack: list[list] = []

    @contextmanager
    def phase(self, name: str):
        now = time.perf_counter()
        if self._stack:
            outer = self._stack[-1]
            self.seconds[outer[0]] = self.seconds.get(outer[0], 0.0) + now - outer[1]
        self._stack.append([name, now])
        try:
            yield self
        finally:
            now = time.perf_counter()
            frame = self._stack.pop()
            self.seconds[frame[0]] = self.seconds.get(frame[0], 0.0) + now - frame[1]
            self.counts[frame[0]] = self.counts.get(frame[0], 0) + 1
            if self._stack:
                self._stack[-1][1] = now  # resume the enclosing phase

    @property
    def total_s(self) -> float:
        """Sum of all exclusive phase times == total timed wall clock."""
        return sum(self.seconds.values())

    def snapshot(self) -> dict:
        return {
            "total_s": self.total_s,
            "phases": {
                name: {"seconds": self.seconds[name], "count": self.counts.get(name, 0)}
                for name in sorted(self.seconds)
            },
        }


class _NullClock:
    """Disabled clock: ``phase`` is a free no-op context manager."""

    __slots__ = ()
    seconds: dict = {}
    counts: dict = {}
    total_s = 0.0

    def phase(self, name: str):
        return nullcontext(self)

    def snapshot(self) -> dict:
        return {"total_s": 0.0, "phases": {}}


#: shared disabled clock -- the default everywhere timing hooks in
NULL_CLOCK = _NullClock()
