"""The plan-signature compilation cache.

Memoizes :meth:`repro.runtime.dispatcher.Dispatcher.lower` so repeated
and resumed exploration skips re-lowering:

* **schedule tier** -- full :func:`~repro.perf.signature.plan_signature`
  -> complete :class:`~repro.runtime.dispatcher.LoweredSchedule`.  Hits
  whenever the exact same configuration is lowered again (retries,
  resumed runs, compare-phase rebuilds of an already-explored config).
* **structure tier** -- :func:`~repro.perf.signature.structure_key` ->
  (unit dependencies, issue order).  Hits whenever only kernel
  parameters, stream maps, barriers or the profiling set changed --
  i.e. on almost every exploration round -- and skips the dependency
  recursion and toposort while the dispatcher still emits fresh items.

Both tiers are LRU-bounded.  Hit/miss/eviction counters are published to
the metrics registry under ``perf.cache.*`` and mirrored in
:meth:`stats` for the bench harness.

Correctness contract (pinned by the differential test): a cache-served
schedule serializes bit-identically to a fresh ``Dispatcher.lower`` of
the same plan.  On a schedule-tier hit the cached schedule is re-bound
to the *caller's* plan object (``dataclasses.replace``) so downstream
consumers (memory gate, unit-time readback) see the plan they passed in.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from ..obs.metrics import NULL_REGISTRY
from .signature import plan_key, structure_key


class LoweringCache:
    """Two-tier LRU memo for plan lowering."""

    def __init__(self, capacity: int = 256, metrics=None):
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._schedules: OrderedDict[tuple, object] = OrderedDict()
        self._structures: OrderedDict[tuple, tuple] = OrderedDict()
        self._counts = {
            "schedule_hits": 0, "schedule_misses": 0,
            "structure_hits": 0, "structure_misses": 0,
            "evictions": 0,
        }

    def _count(self, name: str, n: int = 1) -> None:
        self._counts[name] += n
        self.metrics.counter(f"perf.cache.{name}").inc(n)

    def _evict(self, store: OrderedDict) -> None:
        while len(store) > self.capacity:
            store.popitem(last=False)
            self._count("evictions")

    def lower(self, dispatcher, plan):
        """Memoized ``dispatcher.lower(plan)``."""
        skey = structure_key(plan)
        entry = self._structures.get(skey)
        if entry is None:
            # first sighting of this unit structure: neither tier can hold
            # this plan, so skip the full plan key entirely -- the cache
            # must be (nearly) free on all-miss workloads
            self._count("structure_misses")
            self._count("schedule_misses")
            deps = dispatcher.unit_dependencies(plan)
            order = dispatcher.order_units(plan, deps)
            self._structures[skey] = (deps, [u.unit_id for u in order])
            self._evict(self._structures)
            return dispatcher.lower(plan, deps=deps, order=order)

        key = plan_key(plan)
        cached = self._schedules.get(key)
        if cached is not None:
            self._schedules.move_to_end(key)
            self._count("schedule_hits")
            return dataclasses.replace(cached, plan=plan)
        self._count("schedule_misses")

        self._structures.move_to_end(skey)
        self._count("structure_hits")
        deps, order_ids = entry
        by_id = {u.unit_id: u for u in plan.units}
        order = [by_id[uid] for uid in order_ids]

        lowered = dispatcher.lower(plan, deps=deps, order=order)
        self._schedules[key] = lowered
        self._evict(self._schedules)
        return lowered

    @property
    def hit_rate(self) -> float:
        """Combined fraction of lookups answered by either tier."""
        hits = self._counts["schedule_hits"] + self._counts["structure_hits"]
        total = hits + self._counts["structure_misses"]
        return hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            **self._counts,
            "schedule_entries": len(self._schedules),
            "structure_entries": len(self._structures),
            "hit_rate": self.hit_rate,
        }
