"""The ``repro bench`` harness: baseline-vs-fast exploration timing.

For each requested feature variant, a model is optimized twice with the
same graph, device, seed and budget:

* **baseline** -- ``FastPath(cache=False, prune=False)``: the exhaustive
  path, every plan lowered from scratch;
* **fast** -- ``FastPath(cache=True, prune=True)``: the compilation
  cache plus cost-model pruning.

Both runs are wrapped in a :class:`~repro.perf.timers.PhaseClock`, so
the output breaks wall time into the exploration phases (``enumerate`` /
``prerank`` / ``lower`` / ``validate`` / ``simulate`` / ``explore``),
and the process-wide memos (GEMM-plan cache, kernel-key cache) are
cleared before *every* run so neither leg inherits the other's warmth.

Throughput is reported as **configs/sec**: the number of configuration
choices the search space contained *before* pruning, divided by wall
time.  Both legs share that numerator, so the configs/sec ratio equals
the wall-clock speedup -- pruning is credited for retiring choices
without measuring them, which is exactly its job.

The harness is also the exactness watchdog: ``ok`` is false -- and
``repro bench`` exits non-zero -- if the fast run's winning
configuration or final epoch time differs from the baseline's in any
variant, or if the cache never hit.  ``BENCH_<model>.json`` is the
serialized document; see ``docs/performance.md`` for how to read it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..core.session import AstraSession, SessionReport
from ..gpu import DEVICES
from ..gpu.device import GPUSpec
from ..models import MODEL_BUILDERS
from ..obs.metrics import MetricsRegistry
from .ranker import FastPath
from .timers import PhaseClock

BENCH_VERSION = 2

#: the variant the acceptance gate applies to: the fusion+kernel phase is
#: where both the cache and the pre-ranker bite (the stream phase's epoch
#: metric is not prunable, so ``all`` runs are simulator-bound)
PRIMARY_VARIANT = "FK"

DEFAULT_VARIANTS = (PRIMARY_VARIANT, "all")

#: minimum configs/sec ratio (fast vs baseline) a full-scale run of the
#: primary variant must show; ``--quick`` runs skip this timing gate
SPEEDUP_TARGET = 2.0

#: minimum configs/sec ratio (parallel vs fast) a full-scale run must
#: show -- enforced only when the host actually has at least ``workers``
#: CPU cores: process workers time-slicing one core cannot speed anything
#: up, and a bench gate must not assert physics the machine forbids.  The
#: equivalence gates (identical winner, identical epoch time) apply on
#: every host, always.
PARALLEL_SPEEDUP_TARGET = 3.0

#: worker count for the bench's parallel leg
DEFAULT_WORKERS = 4

BASELINE_FAST_PATH = FastPath(cache=False, prune=False)
FAST_FAST_PATH = FastPath(cache=True, prune=True)


def _clear_process_memos() -> None:
    """Reset process-wide memos so every timed leg starts cold.

    Without this, whichever leg runs first warms the GEMM-plan and
    kernel-key memos for the second -- the comparison must not depend on
    run order.
    """
    from ..gpu import libraries
    from . import signature

    libraries._PLAN_MEMO.clear()
    signature._KERNEL_KEY_MEMO.clear()


@dataclass
class BenchRun:
    """One timed optimization: the report plus its timing instruments."""

    report: SessionReport
    clock: PhaseClock
    metrics: MetricsRegistry
    wall_s: float

    def record(self) -> dict:
        fast_path = self.report.astra.fast_path
        choices = fast_path.get("choices_total", 0)
        return {
            "wall_s": self.wall_s,
            "phase_total_s": self.clock.total_s,
            "phases_s": dict(sorted(self.clock.seconds.items())),
            "configs_per_sec": (choices / self.wall_s) if self.wall_s > 0 else 0.0,
            "choices_total": choices,
            "choices_pruned": fast_path.get("choices_pruned", 0),
            "configs_explored": self.report.configs_explored,
            "best_time_us": self.report.best_time_us,
            "native_time_us": self.report.native_time_us,
            "speedup_over_native": self.report.speedup_over_native,
            "cache": fast_path.get("cache"),
            "engine": fast_path.get("parallel"),
        }


def timed_session_run(
    model,
    *,
    features: str = PRIMARY_VARIANT,
    device: GPUSpec | None = None,
    seed: int = 1,
    budget: int = 3000,
    fast: FastPath | None = None,
    workers: int | None = None,
) -> BenchRun:
    """Optimize ``model`` once under a phase clock, from a cold start.

    The clock's outer ``other`` phase covers session construction and any
    un-instrumented residue, so the exclusive phase times always sum to
    the timed wall clock (pinned by the harness-timing regression test).
    The parallel leg's pool lifetime -- spawn through shutdown -- is
    inside the timed wall: using workers costs their startup.
    """
    _clear_process_memos()
    device = device if device is not None else DEVICES["P100"]
    clock = PhaseClock()
    metrics = MetricsRegistry()
    start = time.perf_counter()
    with clock.phase("other"):
        session = AstraSession(
            model, device=device, features=features, seed=seed,
            metrics=metrics, fast=fast, clock=clock, workers=workers,
        )
        try:
            report = session.optimize(max_minibatches=budget)
        finally:
            session.close()
    wall_s = time.perf_counter() - start
    return BenchRun(report=report, clock=clock, metrics=metrics, wall_s=wall_s)


def _build_model(name: str, batch: int, seq_len: int):
    module = __import__(f"repro.models.{name}", fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=seq_len)
    return MODEL_BUILDERS[name](config)


def _winner_match(base: BenchRun, fast: BenchRun) -> dict:
    """The exactness invariant, checked per variant.

    Choices repr-compare (they are plain values: ints, strings, library
    names); the final epoch time must be *exactly* equal -- the fast path
    claims bit-identical winners, not statistically similar ones.
    """
    base_assignment = {k: repr(v) for k, v in base.report.astra.assignment.items()}
    fast_assignment = {k: repr(v) for k, v in fast.report.astra.assignment.items()}
    return {
        "assignment_match": base_assignment == fast_assignment,
        "best_time_match": base.report.best_time_us == fast.report.best_time_us,
        "assignment": fast_assignment,
    }


@dataclass
class BenchDoc:
    """The assembled ``BENCH_<model>.json`` document."""

    doc: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.doc["ok"]


def bench_model(
    name: str,
    *,
    batch: int = 16,
    seq_len: int = 5,
    device_name: str = "P100",
    seed: int = 1,
    budget: int = 3000,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    quick: bool = False,
    workers: int = DEFAULT_WORKERS,
) -> dict:
    """Run the baseline / fast / parallel comparison and assemble the doc.

    ``quick`` restricts the sweep to the primary variant and waives the
    configs/sec targets (CI smoke must not gate on machine speed); the
    exactness and cache-effectiveness guards always apply.

    The **parallel** leg (primary variant only -- the engine parallelizes
    the fusion+kernel trees) reruns the fast configuration with
    ``workers`` measurement workers.  Its gates:

    * equivalence, always, on every host: the parallel run's winning
      assignment, final epoch time and explored-config count must equal
      the serial fast run's *exactly* -- a parallel engine that changes
      the answer is broken, not fast;
    * throughput, full runs only: configs/sec at least
      :data:`PARALLEL_SPEEDUP_TARGET` times the serial fast leg's, when
      the host has at least ``workers`` cores.  On smaller hosts the
      measured ratio is still recorded but the gate reports itself
      skipped (``parallel_gate``); quick runs only require the ratio to
      be non-zero (both legs completed and were timed).
    """
    if name not in MODEL_BUILDERS:
        raise ValueError(f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}")
    device = DEVICES[device_name]
    if quick:
        variants = (PRIMARY_VARIANT,)
    model = _build_model(name, batch, seq_len)
    host_cpus = os.cpu_count() or 1

    failures: list[str] = []
    variant_docs: dict[str, dict] = {}
    for variant in variants:
        base = timed_session_run(
            model, features=variant, device=device, seed=seed, budget=budget,
            fast=BASELINE_FAST_PATH,
        )
        fast = timed_session_run(
            model, features=variant, device=device, seed=seed, budget=budget,
            fast=FAST_FAST_PATH,
        )
        match = _winner_match(base, fast)
        base_rec, fast_rec = base.record(), fast.record()
        ratio = (
            fast_rec["configs_per_sec"] / base_rec["configs_per_sec"]
            if base_rec["configs_per_sec"] > 0 else 0.0
        )
        cache = fast_rec["cache"] or {}
        variant_docs[variant] = {
            "baseline": base_rec,
            "fast": fast_rec,
            "configs_per_sec_ratio": ratio,
            "wall_speedup": (
                base_rec["wall_s"] / fast_rec["wall_s"]
                if fast_rec["wall_s"] > 0 else 0.0
            ),
            "cache_hit_rate": cache.get("hit_rate", 0.0),
            "winner_match": match["assignment_match"] and match["best_time_match"],
            "assignment_match": match["assignment_match"],
            "best_time_match": match["best_time_match"],
            "winning_assignment": match["assignment"],
        }
        if not match["assignment_match"]:
            failures.append(
                f"{variant}: pruned winner diverged from exhaustive winner"
            )
        if not match["best_time_match"]:
            failures.append(
                f"{variant}: final epoch time diverged "
                f"(baseline {base_rec['best_time_us']} us, "
                f"fast {fast_rec['best_time_us']} us)"
            )
        if variant == PRIMARY_VARIANT and workers:
            par = timed_session_run(
                model, features=variant, device=device, seed=seed,
                budget=budget, fast=FAST_FAST_PATH, workers=workers,
            )
            variant_docs[variant].update(
                _parallel_leg(fast, par, workers, host_cpus, quick, failures)
            )

    primary = variant_docs.get(PRIMARY_VARIANT)
    if primary is not None:
        if primary["cache_hit_rate"] <= 0.0:
            failures.append(f"{PRIMARY_VARIANT}: cache hit rate is 0")
        if not quick and primary["configs_per_sec_ratio"] < SPEEDUP_TARGET:
            failures.append(
                f"{PRIMARY_VARIANT}: configs/sec ratio "
                f"{primary['configs_per_sec_ratio']:.2f} below the "
                f"{SPEEDUP_TARGET:.1f}x target"
            )

    return {
        "version": BENCH_VERSION,
        "model": name,
        "batch": batch,
        "seq_len": seq_len,
        "device": device_name,
        "seed": seed,
        "budget": budget,
        "quick": quick,
        "workers": workers,
        "host_cpus": host_cpus,
        "primary_variant": PRIMARY_VARIANT,
        "speedup_target": SPEEDUP_TARGET,
        "parallel_speedup_target": PARALLEL_SPEEDUP_TARGET,
        "variants": variant_docs,
        "failures": failures,
        "ok": not failures,
    }


def _parallel_leg(
    fast: BenchRun,
    par: BenchRun,
    workers: int,
    host_cpus: int,
    quick: bool,
    failures: list[str],
) -> dict:
    """Record and gate the parallel leg against the serial fast leg."""
    match = _winner_match(fast, par)
    fast_rec, par_rec = fast.record(), par.record()
    ratio = (
        par_rec["configs_per_sec"] / fast_rec["configs_per_sec"]
        if fast_rec["configs_per_sec"] > 0 else 0.0
    )
    configs_match = (
        par_rec["configs_explored"] == fast_rec["configs_explored"]
    )
    if not match["assignment_match"]:
        failures.append(
            f"parallel@{workers}: winner diverged from serial fast winner"
        )
    if not match["best_time_match"]:
        failures.append(
            f"parallel@{workers}: final epoch time diverged "
            f"(serial {fast_rec['best_time_us']} us, "
            f"parallel {par_rec['best_time_us']} us)"
        )
    if not configs_match:
        failures.append(
            f"parallel@{workers}: explored {par_rec['configs_explored']} "
            f"configs, serial explored {fast_rec['configs_explored']}"
        )
    if quick:
        gate = "non-zero"
        if ratio <= 0.0:
            failures.append(f"parallel@{workers}: configs/sec ratio is zero")
    elif host_cpus >= workers:
        gate = f">= {PARALLEL_SPEEDUP_TARGET:.1f}x"
        if ratio < PARALLEL_SPEEDUP_TARGET:
            failures.append(
                f"parallel@{workers}: configs/sec ratio {ratio:.2f} below "
                f"the {PARALLEL_SPEEDUP_TARGET:.1f}x target"
            )
    else:
        gate = (
            f"skipped: host has {host_cpus} core(s) < {workers} workers"
        )
    return {
        "parallel": par_rec,
        "parallel_ratio": ratio,
        "parallel_winner_match": (
            match["assignment_match"] and match["best_time_match"]
            and configs_match
        ),
        "parallel_gate": gate,
    }


#: maximum tolerated drop in the machine-relative configs/sec ratio
#: before ``repro bench --compare`` fails (see :func:`compare_bench`)
REGRESSION_THRESHOLD = 0.20


def compare_bench(current: dict, baseline: dict) -> dict:
    """Diff a fresh bench document against a committed baseline.

    The regression gate compares what is stable across machines:

    * **winner identity** -- the winning assignment of every variant both
      documents ran must be identical; an optimizer that starts picking a
      different plan has changed behavior, not speed;
    * **relative throughput** -- the fast-vs-baseline ``configs_per_sec``
      *ratio*, which divides out the host's absolute speed.  A drop of
      more than :data:`REGRESSION_THRESHOLD` (20%) in any shared variant
      fails the comparison.

    Absolute configs/sec and cache hit rates are reported as
    informational deltas only -- they track the machine as much as the
    code, so they never gate.
    """
    failures: list[str] = []
    variants: dict[str, dict] = {}
    shared = [
        v for v in baseline.get("variants", {})
        if v in current.get("variants", {})
    ]
    if not shared:
        failures.append("no shared variants between current and baseline docs")
    for variant in shared:
        cur, base = current["variants"][variant], baseline["variants"][variant]
        cur_ratio = cur.get("configs_per_sec_ratio", 0.0)
        base_ratio = base.get("configs_per_sec_ratio", 0.0)
        ratio_drop = (
            1.0 - cur_ratio / base_ratio if base_ratio > 0 else 0.0
        )
        winner_match = (
            cur.get("winning_assignment") == base.get("winning_assignment")
        )
        variants[variant] = {
            "winner_match": winner_match,
            "ratio_current": cur_ratio,
            "ratio_baseline": base_ratio,
            "ratio_drop": ratio_drop,
            # informational: machine-dependent, never gated
            "configs_per_sec_current": cur["fast"]["configs_per_sec"],
            "configs_per_sec_baseline": base["fast"]["configs_per_sec"],
            "cache_hit_rate_current": cur.get("cache_hit_rate", 0.0),
            "cache_hit_rate_baseline": base.get("cache_hit_rate", 0.0),
        }
        if not winner_match:
            failures.append(
                f"{variant}: winning assignment changed vs committed baseline"
            )
        if ratio_drop > REGRESSION_THRESHOLD:
            failures.append(
                f"{variant}: configs/sec ratio regressed "
                f"{ratio_drop * 100:.1f}% "
                f"({base_ratio:.2f}x -> {cur_ratio:.2f}x; "
                f"threshold {REGRESSION_THRESHOLD * 100:.0f}%)"
            )
    return {
        "model": current.get("model"),
        "baseline_model": baseline.get("model"),
        "threshold": REGRESSION_THRESHOLD,
        "variants": variants,
        "failures": failures,
        "ok": not failures,
    }


def render_compare(diff: dict) -> str:
    """Human-readable summary of a :func:`compare_bench` diff."""
    lines = [
        f"bench compare: {diff.get('model')} vs committed "
        f"{diff.get('baseline_model')} "
        f"(gate: winner identity + ratio within "
        f"{diff['threshold'] * 100:.0f}%)",
        f"{'variant':>8}  {'ratio old':>9}  {'ratio new':>9}  {'drop%':>6}  "
        f"{'cfg/s old':>10}  {'cfg/s new':>10}  {'hit% old':>8}  "
        f"{'hit% new':>8}  winner",
    ]
    for variant, vdoc in diff["variants"].items():
        lines.append(
            f"{variant:>8}  {vdoc['ratio_baseline']:8.2f}x  "
            f"{vdoc['ratio_current']:8.2f}x  "
            f"{vdoc['ratio_drop'] * 100:6.1f}  "
            f"{vdoc['configs_per_sec_baseline']:10.0f}  "
            f"{vdoc['configs_per_sec_current']:10.0f}  "
            f"{vdoc['cache_hit_rate_baseline'] * 100:8.1f}  "
            f"{vdoc['cache_hit_rate_current'] * 100:8.1f}  "
            f"{'match' if vdoc['winner_match'] else 'CHANGED'}"
        )
    if diff["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in diff["failures"])
    else:
        lines.append("ok: winners stable, relative throughput held")
    return "\n".join(lines)


def render_bench(doc: dict) -> str:
    """Human-readable summary of a bench document."""
    lines = [
        f"bench {doc['model']}  batch={doc['batch']} seq={doc['seq_len']} "
        f"device={doc['device']} seed={doc['seed']}"
        + ("  [quick]" if doc.get("quick") else ""),
        f"{'variant':>8}  {'base(s)':>8}  {'fast(s)':>8}  {'ratio':>6}  "
        f"{'cfg/s base':>10}  {'cfg/s fast':>10}  {'hit%':>5}  "
        f"{'pruned':>6}  winner",
    ]
    for variant, vdoc in doc["variants"].items():
        base, fast = vdoc["baseline"], vdoc["fast"]
        lines.append(
            f"{variant:>8}  {base['wall_s']:8.3f}  {fast['wall_s']:8.3f}  "
            f"{vdoc['configs_per_sec_ratio']:5.2f}x  "
            f"{base['configs_per_sec']:10.0f}  {fast['configs_per_sec']:10.0f}  "
            f"{vdoc['cache_hit_rate'] * 100:5.1f}  "
            f"{fast['choices_pruned']:6d}  "
            f"{'match' if vdoc['winner_match'] else 'DIVERGED'}"
        )
    for variant, vdoc in doc["variants"].items():
        par = vdoc.get("parallel")
        if par is None:
            continue
        engine = par.get("engine") or {}
        lines.append(
            f"{variant:>8}  parallel@{doc.get('workers', '?')} "
            f"({engine.get('pool', '?')} pool): {par['wall_s']:.3f}s  "
            f"{vdoc['parallel_ratio']:.2f}x vs fast  "
            f"{'match' if vdoc['parallel_winner_match'] else 'DIVERGED'}  "
            f"gate: {vdoc['parallel_gate']}"
        )
    for variant, vdoc in doc["variants"].items():
        phases = vdoc["fast"]["phases_s"]
        detail = "  ".join(f"{k}={v:.3f}" for k, v in phases.items())
        lines.append(f"{variant:>8}  fast phases (s): {detail}")
    if doc["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in doc["failures"])
    else:
        lines.append("ok: winners identical, cache effective"
                     + ("" if doc.get("quick") else
                        f", primary ratio >= {doc['speedup_target']:.1f}x"))
    return "\n".join(lines)
