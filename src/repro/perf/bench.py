"""The ``repro bench`` harness: baseline-vs-fast exploration timing.

For each requested feature variant, a model is optimized twice with the
same graph, device, seed and budget:

* **baseline** -- ``FastPath(cache=False, prune=False)``: the exhaustive
  path, every plan lowered from scratch;
* **fast** -- ``FastPath(cache=True, prune=True)``: the compilation
  cache plus cost-model pruning.

Two more legs run for the primary variant: **parallel** (the fast
configuration on N measurement workers) and **warm** (the fast
configuration rerun against the profile store the fast leg populated --
the optimization-as-a-service path of ``docs/serving.md``).

Both runs are wrapped in a :class:`~repro.perf.timers.PhaseClock`, so
the output breaks wall time into the exploration phases (``enumerate`` /
``prerank`` / ``lower`` / ``validate`` / ``simulate`` / ``explore``),
and the process-wide memos (GEMM-plan cache, kernel-key cache) are
cleared before *every* run so neither leg inherits the other's warmth.

Throughput is reported as **configs/sec**: the number of configuration
choices the search space contained *before* pruning, divided by wall
time.  Both legs share that numerator, so the configs/sec ratio equals
the wall-clock speedup -- pruning is credited for retiring choices
without measuring them, which is exactly its job.

The harness is also the exactness watchdog: ``ok`` is false -- and
``repro bench`` exits non-zero -- if the fast run's winning
configuration or final epoch time differs from the baseline's in any
variant, or if the cache never hit.  ``BENCH_<model>.json`` is the
serialized document; see ``docs/performance.md`` for how to read it.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

from ..core.session import AstraSession, SessionReport
from ..gpu import DEVICES
from ..gpu.device import GPUSpec
from ..models import MODEL_BUILDERS
from ..obs.metrics import MetricsRegistry
from .ranker import FastPath
from .timers import PhaseClock

BENCH_VERSION = 4

#: the variant the acceptance gate applies to: the fusion+kernel phase is
#: where both the cache and the pre-ranker bite (the stream phase's epoch
#: metric is not prunable, so ``all`` runs are simulator-bound)
PRIMARY_VARIANT = "FK"

DEFAULT_VARIANTS = (PRIMARY_VARIANT, "all")

#: minimum configs/sec ratio (fast vs baseline) a full-scale run of the
#: primary variant must show; ``--quick`` runs skip this timing gate
SPEEDUP_TARGET = 2.0

#: minimum configs/sec ratio (parallel vs fast) a full-scale run must
#: show -- enforced only when the host actually has at least ``workers``
#: CPU cores: process workers time-slicing one core cannot speed anything
#: up, and a bench gate must not assert physics the machine forbids.  The
#: equivalence gates (identical winner, identical epoch time) apply on
#: every host, always.
PARALLEL_SPEEDUP_TARGET = 3.0

#: worker count for the bench's parallel leg
DEFAULT_WORKERS = 4

#: maximum fraction of the cold run's measured configurations a
#: warm-started rerun may measure (the ISSUE's acceptance gate);
#: deterministic on the simulator, so it applies on every host
WARM_CONFIGS_TARGET = 0.5

#: maximum fraction of the exhaustive baseline's measured configurations
#: the learned-top-k leg may measure (docs/learning.md); deterministic,
#: applies on every host
LEARNED_CONFIGS_TARGET = 0.5

#: maximum |model - what-if| relative disagreement the learned leg's
#: cross-check may report (mirrors ``LearnedGate.whatif_rel_gate``)
LEARNED_WHATIF_GATE = 0.05

BASELINE_FAST_PATH = FastPath(cache=False, prune=False)
FAST_FAST_PATH = FastPath(cache=True, prune=True)


def _clear_process_memos() -> None:
    """Reset process-wide memos so every timed leg starts cold.

    Without this, whichever leg runs first warms the GEMM-plan and
    kernel-key memos for the second -- the comparison must not depend on
    run order.
    """
    from ..gpu import libraries
    from . import signature

    libraries._PLAN_MEMO.clear()
    signature._KERNEL_KEY_MEMO.clear()


@dataclass
class BenchRun:
    """One timed optimization: the report plus its timing instruments."""

    report: SessionReport
    clock: PhaseClock
    metrics: MetricsRegistry
    wall_s: float

    def record(self) -> dict:
        fast_path = self.report.astra.fast_path
        choices = fast_path.get("choices_total", 0)
        return {
            "wall_s": self.wall_s,
            "phase_total_s": self.clock.total_s,
            "phases_s": dict(sorted(self.clock.seconds.items())),
            "configs_per_sec": (choices / self.wall_s) if self.wall_s > 0 else 0.0,
            "choices_total": choices,
            "choices_pruned": fast_path.get("choices_pruned", 0),
            "configs_explored": self.report.configs_explored,
            "best_time_us": self.report.best_time_us,
            "native_time_us": self.report.native_time_us,
            "speedup_over_native": self.report.speedup_over_native,
            "cache": fast_path.get("cache"),
            "engine": fast_path.get("parallel"),
            "warm": dict(self.report.warm),
            "learned": fast_path.get("learned"),
        }


def timed_session_run(
    model,
    *,
    features: str = PRIMARY_VARIANT,
    device: GPUSpec | None = None,
    seed: int = 1,
    budget: int = 3000,
    fast: FastPath | None = None,
    workers: int | None = None,
    store=None,
    learned=None,
) -> BenchRun:
    """Optimize ``model`` once under a phase clock, from a cold start.

    The clock's outer ``other`` phase covers session construction and any
    un-instrumented residue, so the exclusive phase times always sum to
    the timed wall clock (pinned by the harness-timing regression test).
    The parallel leg's pool lifetime -- spawn through shutdown -- is
    inside the timed wall: using workers costs their startup.  A
    ``store`` makes the run a warm-start participant (docs/serving.md):
    seeding from the store and publishing back are both inside the timed
    wall, so the warm leg pays for its own I/O.
    """
    _clear_process_memos()
    device = device if device is not None else DEVICES["P100"]
    clock = PhaseClock()
    metrics = MetricsRegistry()
    start = time.perf_counter()
    with clock.phase("other"):
        session = AstraSession(
            model, device=device, features=features, seed=seed,
            metrics=metrics, fast=fast, clock=clock, workers=workers,
            store=store, learned=learned,
        )
        try:
            report = session.optimize(max_minibatches=budget)
        finally:
            session.close()
    wall_s = time.perf_counter() - start
    return BenchRun(report=report, clock=clock, metrics=metrics, wall_s=wall_s)


def _build_model(name: str, batch: int, seq_len: int):
    module = __import__(f"repro.models.{name}", fromlist=["DEFAULT_CONFIG"])
    config = module.DEFAULT_CONFIG.scaled(batch_size=batch, seq_len=seq_len)
    return MODEL_BUILDERS[name](config)


def _winner_match(base: BenchRun, fast: BenchRun) -> dict:
    """The exactness invariant, checked per variant.

    Choices repr-compare (they are plain values: ints, strings, library
    names); the final epoch time must be *exactly* equal -- the fast path
    claims bit-identical winners, not statistically similar ones.
    """
    base_assignment = {k: repr(v) for k, v in base.report.astra.assignment.items()}
    fast_assignment = {k: repr(v) for k, v in fast.report.astra.assignment.items()}
    return {
        "assignment_match": base_assignment == fast_assignment,
        "best_time_match": base.report.best_time_us == fast.report.best_time_us,
        "assignment": fast_assignment,
    }


@dataclass
class BenchDoc:
    """The assembled ``BENCH_<model>.json`` document."""

    doc: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.doc["ok"]


def bench_model(
    name: str,
    *,
    batch: int = 16,
    seq_len: int = 5,
    device_name: str = "P100",
    seed: int = 1,
    budget: int = 3000,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    quick: bool = False,
    workers: int = DEFAULT_WORKERS,
    learned=None,
) -> dict:
    """Run the baseline / fast / parallel comparison and assemble the doc.

    ``quick`` restricts the sweep to the primary variant and waives the
    configs/sec targets (CI smoke must not gate on machine speed); the
    exactness and cache-effectiveness guards always apply.

    The **parallel** leg (primary variant only -- the engine parallelizes
    the fusion+kernel trees) reruns the fast configuration with
    ``workers`` measurement workers.  Its gates:

    * equivalence, always, on every host: the parallel run's winning
      assignment, final epoch time and explored-config count must equal
      the serial fast run's *exactly* -- a parallel engine that changes
      the answer is broken, not fast;
    * throughput, full runs only: configs/sec at least
      :data:`PARALLEL_SPEEDUP_TARGET` times the serial fast leg's, when
      the host has at least ``workers`` cores.  On smaller hosts the
      measured ratio is still recorded but the gate reports itself
      skipped (``parallel_gate``); quick runs only require the ratio to
      be non-zero (both legs completed and were timed).

    The **warm** leg (primary variant only) reruns the fast
    configuration against a profile store populated by an untimed rerun
    of the same job (docs/serving.md).  Its gates -- identical winner,
    at most :data:`WARM_CONFIGS_TARGET` of the cold measurements,
    non-zero seeding -- are deterministic and apply always; see
    :func:`_warm_leg`.

    The **learned** leg (primary variant only, when ``learned`` names a
    cost-model artifact) reruns the fast configuration with the learned
    top-k ranker armed (docs/learning.md).  Its gates -- winner and
    epoch time identical to the exhaustive baseline, at most
    :data:`LEARNED_CONFIGS_TARGET` of the baseline's measurements, a
    non-zero model hit rate, and a passing what-if cross-check -- are
    deterministic and apply always; see :func:`_learned_leg`.
    """
    if name not in MODEL_BUILDERS:
        raise ValueError(f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}")
    device = DEVICES[device_name]
    if quick:
        variants = (PRIMARY_VARIANT,)
    model = _build_model(name, batch, seq_len)
    host_cpus = os.cpu_count() or 1

    failures: list[str] = []
    variant_docs: dict[str, dict] = {}
    warm_dir = tempfile.TemporaryDirectory(prefix="astra-bench-store-")
    try:
        _bench_variants(
            model, variants, device, seed, budget, quick, workers,
            host_cpus, warm_dir.name, failures, variant_docs,
            learned=learned,
        )
    finally:
        warm_dir.cleanup()

    primary = variant_docs.get(PRIMARY_VARIANT)
    if primary is not None:
        if primary["cache_hit_rate"] <= 0.0:
            failures.append(f"{PRIMARY_VARIANT}: cache hit rate is 0")
        if not quick and primary["configs_per_sec_ratio"] < SPEEDUP_TARGET:
            failures.append(
                f"{PRIMARY_VARIANT}: configs/sec ratio "
                f"{primary['configs_per_sec_ratio']:.2f} below the "
                f"{SPEEDUP_TARGET:.1f}x target"
            )

    return {
        "version": BENCH_VERSION,
        "model": name,
        "batch": batch,
        "seq_len": seq_len,
        "device": device_name,
        "seed": seed,
        "budget": budget,
        "quick": quick,
        "workers": workers,
        "host_cpus": host_cpus,
        "primary_variant": PRIMARY_VARIANT,
        "speedup_target": SPEEDUP_TARGET,
        "parallel_speedup_target": PARALLEL_SPEEDUP_TARGET,
        "warm_configs_target": WARM_CONFIGS_TARGET,
        "variants": variant_docs,
        "failures": failures,
        "ok": not failures,
    }


def _bench_variants(
    model, variants, device, seed, budget, quick, workers,
    host_cpus, warm_root, failures, variant_docs, learned=None,
) -> None:
    for variant in variants:
        base = timed_session_run(
            model, features=variant, device=device, seed=seed, budget=budget,
            fast=BASELINE_FAST_PATH,
        )
        fast = timed_session_run(
            model, features=variant, device=device, seed=seed, budget=budget,
            fast=FAST_FAST_PATH,
        )
        match = _winner_match(base, fast)
        base_rec, fast_rec = base.record(), fast.record()
        ratio = (
            fast_rec["configs_per_sec"] / base_rec["configs_per_sec"]
            if base_rec["configs_per_sec"] > 0 else 0.0
        )
        cache = fast_rec["cache"] or {}
        variant_docs[variant] = {
            "baseline": base_rec,
            "fast": fast_rec,
            "configs_per_sec_ratio": ratio,
            "wall_speedup": (
                base_rec["wall_s"] / fast_rec["wall_s"]
                if fast_rec["wall_s"] > 0 else 0.0
            ),
            "cache_hit_rate": cache.get("hit_rate", 0.0),
            "winner_match": match["assignment_match"] and match["best_time_match"],
            "assignment_match": match["assignment_match"],
            "best_time_match": match["best_time_match"],
            "winning_assignment": match["assignment"],
        }
        if not match["assignment_match"]:
            failures.append(
                f"{variant}: pruned winner diverged from exhaustive winner"
            )
        if not match["best_time_match"]:
            failures.append(
                f"{variant}: final epoch time diverged "
                f"(baseline {base_rec['best_time_us']} us, "
                f"fast {fast_rec['best_time_us']} us)"
            )
        if variant == PRIMARY_VARIANT and workers:
            par = timed_session_run(
                model, features=variant, device=device, seed=seed,
                budget=budget, fast=FAST_FAST_PATH, workers=workers,
            )
            variant_docs[variant].update(
                _parallel_leg(fast, par, workers, host_cpus, quick, failures)
            )
        if variant == PRIMARY_VARIANT:
            # populate run: identical job, untimed, against a fresh
            # store -- the fast leg stays store-free so its wall time
            # remains comparable to committed (pre-warm-leg) baselines,
            # which the serve import cost would otherwise contaminate
            store = os.path.join(warm_root, variant)
            timed_session_run(
                model, features=variant, device=device, seed=seed,
                budget=budget, fast=FAST_FAST_PATH, store=store,
            )
            warm = timed_session_run(
                model, features=variant, device=device, seed=seed,
                budget=budget, fast=FAST_FAST_PATH, store=store,
            )
            variant_docs[variant].update(
                _warm_leg(fast, warm, failures)
            )
        if variant == PRIMARY_VARIANT and learned is not None:
            lrn = timed_session_run(
                model, features=variant, device=device, seed=seed,
                budget=budget, fast=FAST_FAST_PATH, learned=learned,
            )
            variant_docs[variant].update(
                _learned_leg(base, lrn, failures)
            )


def _warm_leg(fast: BenchRun, warm: BenchRun, failures: list[str]) -> dict:
    """Record and gate the warm-start leg against the serial fast leg.

    An untimed populate run filled the store; the warm leg reruns the
    identical job against it.  All three gates are deterministic (the
    simulator is noise-free), so they apply on every host, quick runs
    included:

    * the warm run's winning assignment and final epoch time must equal
      the fast run's exactly -- warm-starting claims bit-identical
      convergence, not approximate reuse;
    * the warm run must *measure* at most :data:`WARM_CONFIGS_TARGET`
      (50%) of the configurations the cold run measured -- the point of
      the store is retiring measurements, and a fully matching index
      retires essentially all of them;
    * the warm run must actually have seeded entries -- a warm leg that
      silently ran cold (store misconfigured, digest mismatch) would
      otherwise pass the identity gates vacuously.
    """
    match = _winner_match(fast, warm)
    fast_rec, warm_rec = fast.record(), warm.record()
    seeded = (warm_rec["warm"] or {}).get("seeded_entries", 0)
    fraction = (
        warm_rec["configs_explored"] / fast_rec["configs_explored"]
        if fast_rec["configs_explored"] > 0 else 0.0
    )
    if not match["assignment_match"]:
        failures.append("warm: winner diverged from cold fast winner")
    if not match["best_time_match"]:
        failures.append(
            f"warm: final epoch time diverged "
            f"(cold {fast_rec['best_time_us']} us, "
            f"warm {warm_rec['best_time_us']} us)"
        )
    if fraction > WARM_CONFIGS_TARGET:
        failures.append(
            f"warm: measured {warm_rec['configs_explored']} of "
            f"{fast_rec['configs_explored']} cold configurations "
            f"({fraction * 100:.0f}%; target <= "
            f"{WARM_CONFIGS_TARGET * 100:.0f}%)"
        )
    if seeded <= 0:
        failures.append("warm: store seeded 0 entries (warm leg ran cold)")
    return {
        "warm": warm_rec,
        "warm_speedup": (
            fast_rec["wall_s"] / warm_rec["wall_s"]
            if warm_rec["wall_s"] > 0 else 0.0
        ),
        "warm_configs_fraction": fraction,
        "warm_seeded_entries": seeded,
        "warm_winner_match": (
            match["assignment_match"] and match["best_time_match"]
        ),
        "warm_gate": (
            f"<= {WARM_CONFIGS_TARGET * 100:.0f}% of cold configs, "
            f"identical winner"
        ),
    }


def _learned_leg(base: BenchRun, lrn: BenchRun, failures: list[str]) -> dict:
    """Record and gate the learned-top-k leg against the exhaustive baseline.

    The learned ranker claims it can retire most of the search space
    without moving the answer (docs/learning.md).  All gates are
    deterministic (the simulator is noise-free) and apply on every host,
    quick runs included:

    * the learned run's winning assignment and final epoch time must
      equal the **exhaustive baseline's** exactly -- not merely the fast
      leg's: the model rides on top of the FK pre-ranker, and the claim
      is against ground truth;
    * the learned run must measure at most
      :data:`LEARNED_CONFIGS_TARGET` (50%) of the configurations the
      exhaustive baseline measured;
    * the model must actually have pruned choices -- a leg whose model
      was rejected or declined everywhere would otherwise pass the
      identity gates vacuously (the "non-zero hit rate" guard);
    * the what-if cross-check must have run (non-zero checks) and agree
      within :data:`LEARNED_WHATIF_GATE` on the critical kernels.
    """
    match = _winner_match(base, lrn)
    base_rec, lrn_rec = base.record(), lrn.record()
    summary = lrn_rec.get("learned") or {}
    whatif = summary.get("whatif") or {}
    fraction = (
        lrn_rec["configs_explored"] / base_rec["configs_explored"]
        if base_rec["configs_explored"] > 0 else 0.0
    )
    if summary.get("rejected"):
        failures.append(
            f"learned: model artifact rejected ({summary['rejected']})"
        )
    if not match["assignment_match"]:
        failures.append("learned: winner diverged from exhaustive winner")
    if not match["best_time_match"]:
        failures.append(
            f"learned: final epoch time diverged "
            f"(exhaustive {base_rec['best_time_us']} us, "
            f"learned {lrn_rec['best_time_us']} us)"
        )
    if fraction > LEARNED_CONFIGS_TARGET:
        failures.append(
            f"learned: measured {lrn_rec['configs_explored']} of "
            f"{base_rec['configs_explored']} exhaustive configurations "
            f"({fraction * 100:.0f}%; target <= "
            f"{LEARNED_CONFIGS_TARGET * 100:.0f}%)"
        )
    if summary.get("choices_pruned", 0) <= 0:
        failures.append(
            "learned: model pruned 0 choices (hit rate is zero; skips: "
            f"{summary.get('skips', {})})"
        )
    if whatif.get("checked", 0) <= 0:
        failures.append("learned: what-if cross-check ran 0 checks")
    elif not whatif.get("ok", False) or (
        whatif.get("max_rel_error", 0.0) > LEARNED_WHATIF_GATE
    ):
        failures.append(
            f"learned: what-if disagreement "
            f"{whatif.get('max_rel_error', 0.0) * 100:.1f}% above the "
            f"{LEARNED_WHATIF_GATE * 100:.0f}% gate"
        )
    return {
        "learned": lrn_rec,
        "learned_speedup": (
            base_rec["wall_s"] / lrn_rec["wall_s"]
            if lrn_rec["wall_s"] > 0 else 0.0
        ),
        "learned_configs_fraction": fraction,
        "learned_winner_match": (
            match["assignment_match"] and match["best_time_match"]
        ),
        "learned_choices_pruned": summary.get("choices_pruned", 0),
        "learned_whatif_checked": whatif.get("checked", 0),
        "learned_whatif_max_rel_error": whatif.get("max_rel_error", 0.0),
        "learned_model_fingerprint": summary.get("fingerprint"),
        "learned_gate": (
            f"<= {LEARNED_CONFIGS_TARGET * 100:.0f}% of exhaustive "
            f"configs, identical winner, what-if within "
            f"{LEARNED_WHATIF_GATE * 100:.0f}%"
        ),
    }


def _parallel_leg(
    fast: BenchRun,
    par: BenchRun,
    workers: int,
    host_cpus: int,
    quick: bool,
    failures: list[str],
) -> dict:
    """Record and gate the parallel leg against the serial fast leg."""
    match = _winner_match(fast, par)
    fast_rec, par_rec = fast.record(), par.record()
    ratio = (
        par_rec["configs_per_sec"] / fast_rec["configs_per_sec"]
        if fast_rec["configs_per_sec"] > 0 else 0.0
    )
    configs_match = (
        par_rec["configs_explored"] == fast_rec["configs_explored"]
    )
    if not match["assignment_match"]:
        failures.append(
            f"parallel@{workers}: winner diverged from serial fast winner"
        )
    if not match["best_time_match"]:
        failures.append(
            f"parallel@{workers}: final epoch time diverged "
            f"(serial {fast_rec['best_time_us']} us, "
            f"parallel {par_rec['best_time_us']} us)"
        )
    if not configs_match:
        failures.append(
            f"parallel@{workers}: explored {par_rec['configs_explored']} "
            f"configs, serial explored {fast_rec['configs_explored']}"
        )
    if quick:
        gate = "non-zero"
        if ratio <= 0.0:
            failures.append(f"parallel@{workers}: configs/sec ratio is zero")
    elif host_cpus >= workers:
        gate = f">= {PARALLEL_SPEEDUP_TARGET:.1f}x"
        if ratio < PARALLEL_SPEEDUP_TARGET:
            failures.append(
                f"parallel@{workers}: configs/sec ratio {ratio:.2f} below "
                f"the {PARALLEL_SPEEDUP_TARGET:.1f}x target"
            )
    else:
        gate = (
            f"skipped: host has {host_cpus} core(s) < {workers} workers"
        )
    return {
        "parallel": par_rec,
        "parallel_ratio": ratio,
        "parallel_winner_match": (
            match["assignment_match"] and match["best_time_match"]
            and configs_match
        ),
        "parallel_gate": gate,
    }


#: maximum tolerated drop in the machine-relative configs/sec ratio
#: before ``repro bench --compare`` fails (see :func:`compare_bench`)
REGRESSION_THRESHOLD = 0.20

#: the document version that introduced each optional leg.  The compare
#: gate uses these to distinguish "this document *predates* the leg"
#: (gate skipped: committed old baselines stay loadable forever) from
#: "this document *should* carry the leg but does not" (gate reports the
#: missing leg explicitly) -- and to refuse documents that carry a leg
#: their declared version cannot: without the explicit check, a learned
#: leg diffed against a v2/v3 baseline would silently pass vacuously.
LEG_VERSIONS = {"warm": 3, "learned": 4}

#: human label per leg for failure messages
_LEG_LABELS = {"warm": "warm-start", "learned": "learned-top-k"}


def compare_bench(current: dict, baseline: dict) -> dict:
    """Diff a fresh bench document against a committed baseline.

    The regression gate compares what is stable across machines:

    * **winner identity** -- the winning assignment of every variant both
      documents ran must be identical; an optimizer that starts picking a
      different plan has changed behavior, not speed;
    * **relative throughput** -- the fast-vs-baseline ``configs_per_sec``
      *ratio*, which divides out the host's absolute speed.  A drop of
      more than :data:`REGRESSION_THRESHOLD` (20%) in any shared variant
      fails the comparison.

    * **optional legs** (warm-start, learned-top-k) -- when *both*
      documents carry the leg, its ``<leg>_speedup`` ratio (which
      divides out the host's absolute speed) must not drop by more than
      the same threshold, and the leg's winner identity must hold.
      Each leg has an explicit schema version (:data:`LEG_VERSIONS`): a
      baseline whose declared version predates the leg skips the gate
      (committed v2/v3 documents stay loadable forever), a document
      that carries a leg its declared version cannot **fails** the
      comparison, and a document new enough to carry the leg but
      missing it reports a distinct skip reason -- the learned gate can
      never silently pass against a pre-learned baseline.

    Absolute configs/sec and cache hit rates are reported as
    informational deltas only -- they track the machine as much as the
    code, so they never gate.
    """
    failures: list[str] = []
    variants: dict[str, dict] = {}
    cur_version = current.get("version", 0)
    base_version = baseline.get("version", 0)
    shared = [
        v for v in baseline.get("variants", {})
        if v in current.get("variants", {})
    ]
    if not shared:
        failures.append("no shared variants between current and baseline docs")
    for variant in shared:
        cur, base = current["variants"][variant], baseline["variants"][variant]
        cur_ratio = cur.get("configs_per_sec_ratio", 0.0)
        base_ratio = base.get("configs_per_sec_ratio", 0.0)
        ratio_drop = (
            1.0 - cur_ratio / base_ratio if base_ratio > 0 else 0.0
        )
        winner_match = (
            cur.get("winning_assignment") == base.get("winning_assignment")
        )
        variants[variant] = {
            "winner_match": winner_match,
            "ratio_current": cur_ratio,
            "ratio_baseline": base_ratio,
            "ratio_drop": ratio_drop,
            # informational: machine-dependent, never gated
            "configs_per_sec_current": cur["fast"]["configs_per_sec"],
            "configs_per_sec_baseline": base["fast"]["configs_per_sec"],
            "cache_hit_rate_current": cur.get("cache_hit_rate", 0.0),
            "cache_hit_rate_baseline": base.get("cache_hit_rate", 0.0),
        }
        if not winner_match:
            failures.append(
                f"{variant}: winning assignment changed vs committed baseline"
            )
        if ratio_drop > REGRESSION_THRESHOLD:
            failures.append(
                f"{variant}: configs/sec ratio regressed "
                f"{ratio_drop * 100:.1f}% "
                f"({base_ratio:.2f}x -> {cur_ratio:.2f}x; "
                f"threshold {REGRESSION_THRESHOLD * 100:.0f}%)"
            )
        for leg in LEG_VERSIONS:
            _compare_leg(
                variant, leg, cur, base, cur_version, base_version,
                variants[variant], failures,
            )
    return {
        "model": current.get("model"),
        "baseline_model": baseline.get("model"),
        "threshold": REGRESSION_THRESHOLD,
        "variants": variants,
        "failures": failures,
        "ok": not failures,
    }


def _compare_leg(
    variant: str, leg: str, cur: dict, base: dict,
    cur_version: int, base_version: int, vdoc: dict, failures: list[str],
) -> None:
    """Gate one optional leg of one variant (see :func:`compare_bench`)."""
    min_version = LEG_VERSIONS[leg]
    cur_speed = cur.get(f"{leg}_speedup")
    base_speed = base.get(f"{leg}_speedup")
    vdoc[f"{leg}_speedup_current"] = cur_speed
    vdoc[f"{leg}_speedup_baseline"] = base_speed
    # a document that carries the leg while declaring a version that
    # predates it is mislabelled -- refuse it instead of comparing
    mislabelled = False
    for side, version, speed in (("current", cur_version, cur_speed),
                                 ("baseline", base_version, base_speed)):
        if speed is not None and version < min_version:
            failures.append(
                f"{variant}: {side} document declares version {version} "
                f"but carries a {leg} leg (introduced in version "
                f"{min_version})"
            )
            mislabelled = True
    if mislabelled:
        vdoc[f"{leg}_gate"] = "failed: version/leg mismatch"
        return
    if cur_speed is None or base_speed is None:
        if base_version < min_version or cur_version < min_version:
            side, version = (
                ("baseline", base_version) if base_version < min_version
                else ("current", cur_version)
            )
            vdoc[f"{leg}_gate"] = (
                f"skipped: {side} document version {version} predates "
                f"the {leg} leg (introduced in version {min_version})"
            )
        else:
            side = "current" if cur_speed is None else "baseline"
            vdoc[f"{leg}_gate"] = (
                f"skipped: {side} document did not run the {leg} leg"
            )
        return
    drop = 1.0 - cur_speed / base_speed if base_speed > 0 else 0.0
    vdoc[f"{leg}_gate"] = "compared"
    vdoc[f"{leg}_speedup_drop"] = drop
    vdoc[f"{leg}_winner_match"] = cur.get(f"{leg}_winner_match", False)
    if not cur.get(f"{leg}_winner_match", False):
        failures.append(f"{variant}: {leg} leg's winner diverged")
    if drop > REGRESSION_THRESHOLD:
        failures.append(
            f"{variant}: {_LEG_LABELS[leg]} speedup regressed "
            f"{drop * 100:.1f}% "
            f"({base_speed:.2f}x -> {cur_speed:.2f}x; "
            f"threshold {REGRESSION_THRESHOLD * 100:.0f}%)"
        )


def render_compare(diff: dict) -> str:
    """Human-readable summary of a :func:`compare_bench` diff."""
    lines = [
        f"bench compare: {diff.get('model')} vs committed "
        f"{diff.get('baseline_model')} "
        f"(gate: winner identity + ratio within "
        f"{diff['threshold'] * 100:.0f}%)",
        f"{'variant':>8}  {'ratio old':>9}  {'ratio new':>9}  {'drop%':>6}  "
        f"{'cfg/s old':>10}  {'cfg/s new':>10}  {'hit% old':>8}  "
        f"{'hit% new':>8}  winner",
    ]
    for variant, vdoc in diff["variants"].items():
        lines.append(
            f"{variant:>8}  {vdoc['ratio_baseline']:8.2f}x  "
            f"{vdoc['ratio_current']:8.2f}x  "
            f"{vdoc['ratio_drop'] * 100:6.1f}  "
            f"{vdoc['configs_per_sec_baseline']:10.0f}  "
            f"{vdoc['configs_per_sec_current']:10.0f}  "
            f"{vdoc['cache_hit_rate_baseline'] * 100:8.1f}  "
            f"{vdoc['cache_hit_rate_current'] * 100:8.1f}  "
            f"{'match' if vdoc['winner_match'] else 'CHANGED'}"
        )
    for leg in LEG_VERSIONS:
        for variant, vdoc in diff["variants"].items():
            gate = vdoc.get(f"{leg}_gate")
            if gate is None:
                continue
            if gate != "compared":
                lines.append(f"{variant:>8}  {leg}: {gate}")
            else:
                lines.append(
                    f"{variant:>8}  {leg}: "
                    f"{vdoc[f'{leg}_speedup_baseline']:.2f}x -> "
                    f"{vdoc[f'{leg}_speedup_current']:.2f}x "
                    f"(drop {vdoc[f'{leg}_speedup_drop'] * 100:.1f}%)  "
                    f"{'match' if vdoc.get(f'{leg}_winner_match') else 'CHANGED'}"
                )
    if diff["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in diff["failures"])
    else:
        lines.append("ok: winners stable, relative throughput held")
    return "\n".join(lines)


def render_bench(doc: dict) -> str:
    """Human-readable summary of a bench document."""
    lines = [
        f"bench {doc['model']}  batch={doc['batch']} seq={doc['seq_len']} "
        f"device={doc['device']} seed={doc['seed']}"
        + ("  [quick]" if doc.get("quick") else ""),
        f"{'variant':>8}  {'base(s)':>8}  {'fast(s)':>8}  {'ratio':>6}  "
        f"{'cfg/s base':>10}  {'cfg/s fast':>10}  {'hit%':>5}  "
        f"{'pruned':>6}  winner",
    ]
    for variant, vdoc in doc["variants"].items():
        base, fast = vdoc["baseline"], vdoc["fast"]
        lines.append(
            f"{variant:>8}  {base['wall_s']:8.3f}  {fast['wall_s']:8.3f}  "
            f"{vdoc['configs_per_sec_ratio']:5.2f}x  "
            f"{base['configs_per_sec']:10.0f}  {fast['configs_per_sec']:10.0f}  "
            f"{vdoc['cache_hit_rate'] * 100:5.1f}  "
            f"{fast['choices_pruned']:6d}  "
            f"{'match' if vdoc['winner_match'] else 'DIVERGED'}"
        )
    for variant, vdoc in doc["variants"].items():
        par = vdoc.get("parallel")
        if par is None:
            continue
        engine = par.get("engine") or {}
        lines.append(
            f"{variant:>8}  parallel@{doc.get('workers', '?')} "
            f"({engine.get('pool', '?')} pool): {par['wall_s']:.3f}s  "
            f"{vdoc['parallel_ratio']:.2f}x vs fast  "
            f"{'match' if vdoc['parallel_winner_match'] else 'DIVERGED'}  "
            f"gate: {vdoc['parallel_gate']}"
        )
    for variant, vdoc in doc["variants"].items():
        warm = vdoc.get("warm")
        if warm is None:
            continue
        lines.append(
            f"{variant:>8}  warm (store): {warm['wall_s']:.3f}s  "
            f"{vdoc['warm_speedup']:.2f}x vs cold  "
            f"measured {warm['configs_explored']} of "
            f"{vdoc['fast']['configs_explored']} configs "
            f"({vdoc['warm_configs_fraction'] * 100:.0f}%)  "
            f"seeded {vdoc['warm_seeded_entries']}  "
            f"{'match' if vdoc['warm_winner_match'] else 'DIVERGED'}  "
            f"gate: {vdoc['warm_gate']}"
        )
    for variant, vdoc in doc["variants"].items():
        lrn = vdoc.get("learned")
        if lrn is None:
            continue
        fingerprint = vdoc.get("learned_model_fingerprint") or "?"
        lines.append(
            f"{variant:>8}  learned (model {fingerprint[:12]}): "
            f"{lrn['wall_s']:.3f}s  "
            f"{vdoc['learned_speedup']:.2f}x vs exhaustive  "
            f"measured {lrn['configs_explored']} of "
            f"{vdoc['baseline']['configs_explored']} configs "
            f"({vdoc['learned_configs_fraction'] * 100:.0f}%)  "
            f"cut {vdoc['learned_choices_pruned']}  "
            f"what-if {vdoc['learned_whatif_checked']} checks "
            f"(max {vdoc['learned_whatif_max_rel_error'] * 100:.1f}%)  "
            f"{'match' if vdoc['learned_winner_match'] else 'DIVERGED'}  "
            f"gate: {vdoc['learned_gate']}"
        )
    for variant, vdoc in doc["variants"].items():
        phases = vdoc["fast"]["phases_s"]
        detail = "  ".join(f"{k}={v:.3f}" for k, v in phases.items())
        lines.append(f"{variant:>8}  fast phases (s): {detail}")
    if doc["failures"]:
        lines.append("FAILURES:")
        lines.extend(f"  - {msg}" for msg in doc["failures"])
    else:
        lines.append("ok: winners identical, cache effective"
                     + ("" if doc.get("quick") else
                        f", primary ratio >= {doc['speedup_target']:.1f}x"))
    return "\n".join(lines)
