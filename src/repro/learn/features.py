"""Hand-built feature extraction for the learned cost model.

A feature vector describes *one choice of one adaptive variable*: the
units the choice would emit (the same per-variable emission the FK
pre-ranker prices), summarized into the physical quantities the
simulated device model keys on -- operand shapes (as flops/bytes), GEMM
tile and wave occupancy from ``gpu/cost_model.py`` / ``gpu/libraries.py``,
fusion-group size and chunking, library identity, stream layout, and
the device's own roofline parameters so one model can serve a
heterogeneous fleet.

The column order is the serialization contract: artifacts embed
:func:`feature_digest` and loading refuses a vector layout it was not
trained on, so silent feature/column misalignment cannot survive a
round-trip (the mutation-oracle tests attack exactly this).
"""

from __future__ import annotations

import hashlib
import math

from ..gpu.cost_model import units_cost_us
from ..gpu.kernels import CopyLaunch, ElementwiseLaunch, GemmLaunch, HostTransfer
from ..gpu.libraries import GEMM_LIBRARIES

#: library one-hot columns, in a stable (sorted) order
_LIBRARY_NAMES = tuple(sorted(GEMM_LIBRARIES))

#: the feature-vector layout, one name per column, in extraction order
FEATURE_NAMES: tuple[str, ...] = (
    "est_us",        # analytic units cost -- the pre-ranker's exact estimate
    "log_flops",     # log1p of total flops across the choice's launches
    "log_bytes",     # log1p of total bytes moved (operands, copies, PCIe)
    "waves",         # summed GEMM wave count at this device's SM slots
    "occupancy",     # mean last-wave SM occupancy over the GEMM launches
    "launches",      # kernel launches emitted (pre-copies included)
    "copies",        # gather/scatter pre-copy launches alone
    "group_size",    # DFG nodes covered -- the fusion-group size signal
    "chunk",         # fusion chunk width (1 for unfused / non-fusion vars)
    "fused",         # 1.0 when the choice fuses (chunk > 1 or ladder fuse)
    "split_k",       # summed split-k factor of the chosen GEMM plans
    *(f"lib_{name}" for name in _LIBRARY_NAMES),  # library mix fractions
    "streams_on",    # stream layout explored for this job (feature set)
    "log_peak_flops",  # device roofline: log peak flops/us
    "log_mem_bw",      # device roofline: log memory bytes/us
    "sm_slots",        # device concurrency: schedulable block slots
)


def feature_digest() -> str:
    """Fingerprint of the feature-vector layout.

    Stored in every model artifact; a mismatch at load time means the
    extractor changed since training and the artifact is stale.
    """
    text = "astra-learn-features-v1|" + ",".join(FEATURE_NAMES)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: feature layout for the *fleet strategy* model family
#: (:class:`~repro.learn.model.FleetStrategyModel`) -- one row per
#: candidate partitioning, anchored on the admissible analytic bound
FLEET_FEATURE_NAMES: tuple[str, ...] = (
    "bound_us",        # admissible per-sample bound -- the anchor column
    "world",           # replicas (data) or stages (pipeline)
    "is_pipeline",     # 1.0 for pipeline strategies
    "is_weighted",     # 1.0 for throughput-weighted data splits
    "hetero",          # 1.0 when the placement mixes device classes
    "max_stage_share", # slowest replica/stage's share of total compute
    "log_comm_bytes",  # log1p of bytes crossing the fabric per step
    "exposed_lo_us",   # analytic lower bound on exposed communication
    "log_boundary",    # log1p of per-handoff boundary bytes (pipeline)
    "microbatches",    # streamed micro-batches (1 for data strategies)
    "envelope",        # fleet compute envelope: fast-class peak / slow-class
    "fast_fraction",   # fraction of the placement on the fastest class
)


def fleet_feature_digest() -> str:
    """Fingerprint of the fleet-strategy feature layout."""
    text = "astra-fleet-features-v1|" + ",".join(FLEET_FEATURE_NAMES)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def fleet_strategy_features(
    strategy,
    *,
    bound_us: float,
    exposed_lo_us: float,
    comm_bytes: float,
    boundary_bytes: float,
    stage_shares: list[float],
    class_specs: dict,
) -> list[float]:
    """Extract the :data:`FLEET_FEATURE_NAMES` vector for one strategy.

    Everything comes from the analytic price sheet and the strategy's own
    shape -- no measurement is spent on a feature, so ranking the whole
    space is free.
    """
    peaks = sorted(
        (spec.peak_flops_per_us for spec in class_specs.values()),
        reverse=True,
    )
    envelope = peaks[0] / peaks[-1] if peaks else 1.0
    fastest = max(
        class_specs, key=lambda cls: class_specs[cls].peak_flops_per_us
    )
    fast_fraction = (
        strategy.placement.count(fastest) / len(strategy.placement)
    )
    total_share = sum(stage_shares)
    max_share = (
        max(stage_shares) / total_share if total_share > 0 else 1.0
    )
    return [
        bound_us,
        float(strategy.world),
        1.0 if strategy.kind == "pipeline" else 0.0,
        1.0 if strategy.split == "weighted" else 0.0,
        1.0 if strategy.heterogeneous else 0.0,
        max_share,
        math.log1p(comm_bytes),
        exposed_lo_us,
        math.log1p(boundary_bytes),
        float(strategy.microbatches),
        envelope,
        fast_fraction,
    ]


def _choice_shape(var_name: str, choice) -> tuple[float, float]:
    """(chunk, fused) for the variable kind that owns this choice."""
    if var_name.startswith("fusion:"):
        chunk, _lib = choice
        return float(chunk), 1.0 if chunk > 1 else 0.0
    if var_name.startswith("ladder:"):
        fuse, _lib = choice
        return 1.0, 1.0 if fuse else 0.0
    return 1.0, 0.0  # kernel variables: a bare library name


def _kernel_bytes(kernel) -> float:
    if isinstance(kernel, GemmLaunch):
        # fp32 operand traffic: A (m*k), B (k*n), C (m*n)
        return 4.0 * (kernel.m * kernel.k + kernel.k * kernel.n
                      + kernel.m * kernel.n)
    if isinstance(kernel, ElementwiseLaunch):
        return float(kernel.num_elements * kernel.bytes_per_element)
    if isinstance(kernel, (CopyLaunch, HostTransfer)):
        return float(kernel.bytes_moved)
    return 0.0


def choice_features(enumerator, strategy, var, choice, device) -> list[float]:
    """Extract the :data:`FEATURE_NAMES` vector for one variable choice.

    Drives :meth:`Enumerator.units_for_choice`, so the summarized units
    are exactly the units the choice's ``"units"`` measurement would
    cover -- features and targets describe the same work.
    """
    units = enumerator.units_for_choice(strategy, var, choice)
    est_us = units_cost_us(units, device)

    flops = 0.0
    moved = 0.0
    launches = 0
    copies = 0
    nodes = 0
    waves = 0.0
    split_k = 0.0
    occupancies: list[float] = []
    lib_counts = dict.fromkeys(_LIBRARY_NAMES, 0)
    gemms = 0
    for unit in units:
        nodes += len(unit.node_ids)
        kernels = list(unit.pre_copies)
        copies += len(unit.pre_copies)
        if unit.kernel is not None:
            kernels.append(unit.kernel)
        launches += len(kernels)
        for kernel in kernels:
            flops += float(kernel.flops())
            moved += _kernel_bytes(kernel)
            if isinstance(kernel, GemmLaunch):
                gemms += 1
                lib_counts[kernel.library] += 1
                plan = kernel.impl.plan(kernel.m, kernel.k, kernel.n, device)
                kernel_waves = math.ceil(plan.tiles / device.sm_slots)
                waves += kernel_waves
                split_k += plan.split_k
                occupancies.append(
                    plan.tiles / (kernel_waves * device.sm_slots)
                )

    chunk, fused = _choice_shape(var.name, choice)
    occupancy = (
        sum(occupancies) / len(occupancies) if occupancies else 1.0
    )
    lib_mix = [
        lib_counts[name] / gemms if gemms else 0.0 for name in _LIBRARY_NAMES
    ]
    return [
        est_us,
        math.log1p(flops),
        math.log1p(moved),
        waves,
        occupancy,
        float(launches),
        float(copies),
        float(nodes),
        chunk,
        fused,
        split_k,
        *lib_mix,
        1.0 if enumerator.features.streams else 0.0,
        math.log(device.peak_flops_per_us),
        math.log(device.mem_bw_bytes_per_us),
        float(device.sm_slots),
    ]
