"""Harvesting training corpora from profile indexes.

A training record pairs one variable choice's feature vector with the
``"units"`` measurement the exploration recorded for it -- read back
from a :class:`~repro.core.profile_index.ProfileIndex` (a live run, a
checkpoint, or a :class:`~repro.serve.store.ProfileStore` segment set).

Records are only harvested where features and target describe the same
work: quarantined sentinels are dropped, and ladder variables coupled to
live kernel variables are skipped entirely (their measured value depends
on a concurrent choice, so the extracted features would lie about it --
the same guard the FK pre-ranker applies before pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.measurement import QUARANTINED_US
from .features import choice_features


@dataclass(frozen=True)
class TrainingRecord:
    """One (features, measured-us) supervision pair."""

    features: tuple[float, ...]
    target_us: float
    device: str
    feature_set: str
    var: str
    choice: str


def harvest_index(enumerator, index, device, *, context=()) -> list[TrainingRecord]:
    """All usable (features, target) pairs ``index`` holds for this job.

    Walks every strategy's fk tree the way the wirer does, looks up each
    choice's profile key, and keeps the measured ones.
    """
    records: list[TrainingRecord] = []
    feature_set = repr(enumerator.features)
    for strategy in enumerator.strategies:
        strategy_context = tuple(context) + strategy.context_key()
        tree = enumerator.build_fk_tree(strategy)
        tree_var_names = {v.name for v in tree.variables()}
        for var in tree.variables():
            if var.metric_kind != "units":
                continue
            if var.name.startswith("ladder:") and (
                enumerator.member_unfused_kernel_vars(var.payload)
                & tree_var_names
            ):
                continue  # coupled measurement: features would not match
            for choice in var.choices:
                value = index.get(var.profile_key(strategy_context, choice))
                if value is None or value >= QUARANTINED_US:
                    continue
                records.append(TrainingRecord(
                    features=tuple(choice_features(
                        enumerator, strategy, var, choice, device
                    )),
                    target_us=float(value),
                    device=device.name,
                    feature_set=feature_set,
                    var=var.name,
                    choice=repr(choice),
                ))
    return records


def harvest_fleet(report) -> list[TrainingRecord]:
    """Training rows from one :class:`~repro.fleet.search.FleetSearchReport`.

    One record per *measured* strategy: the analytic feature vector the
    search already extracted, paired with the measured per-sample step
    time.  Pruned strategies contribute nothing (their target was never
    measured), and a faulted search's report carries no rows at all --
    the standard guard that features and targets must describe the same
    clean work.
    """
    records: list[TrainingRecord] = []
    if report.standdown is not None:
        return records
    for row in report.table:
        if row.get("per_sample_us") is None or row.get("features") is None:
            continue
        records.append(TrainingRecord(
            features=tuple(row["features"]),
            target_us=float(row["per_sample_us"]),
            device=report.fleet,
            feature_set="fleet",
            var="fleet.strategy",
            choice=row["label"],
        ))
    return records


def harvest_run(
    model,
    device,
    features="FK",
    *,
    seed: int = 0,
    budget: int = 3000,
    store=None,
) -> list[TrainingRecord]:
    """Run one exhaustive exploration and harvest its profile index.

    Pruning is forced off so every choice gets measured (or seeded from
    ``store`` -- a warm start retires the measurements but still fills
    the index, so repeat harvests of a stored job are nearly free and
    bit-identical).  Passing ``store`` also publishes the measurements
    back, growing the shared corpus.
    """
    from ..core.session import AstraSession
    from ..perf.ranker import FastPath

    session = AstraSession(
        model, device=device, features=features, seed=seed,
        fast=FastPath(cache=True, prune=False), store=store,
    )
    try:
        session.optimize(max_minibatches=budget)
        return harvest_index(
            session.wirer.enumerator, session.wirer.index, device,
            context=session.wirer.base_context,
        )
    finally:
        session.close()
