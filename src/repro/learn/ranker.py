"""Learned top-k pruning of the fk search space, with a verified gate.

Sits beside the FK pre-ranker (``repro.perf.ranker``) in the wirer's
prerank phase, but cuts deeper: instead of keeping everything within an
exactness margin, it keeps only the model's **top-k choices plus the
uncertainty band** -- every choice whose calibrated lower bound still
overlaps the best choice's upper bound.  A choice is pruned only when
its band lies strictly above the band of the predicted best, so a
calibrated model provably cannot discard the measured winner.

The ranker is paranoid by design; it declines (falls back to measuring
everything the FK pre-ranker left) whenever:

* a fault injector is armed or the device clock is off base -- the
  corpus the model learned from does not describe perturbed durations
  (the FK pre-ranker's own guard);
* the model was not trained on this device or feature set, or its
  calibration is too loose (``learn.skipped_*`` counters name the
  reason);
* the Daydream-style **what-if cross-check** fails: before trusting the
  model on a strategy, the default configuration is executed once on a
  clean executor, its trace analyzed, and the model's predictions for
  the variables owning the top critical-path GEMMs are compared against
  ``obs/whatif.py`` replay projections.  Disagreement beyond the gate
  (5% by default) rejects the model for that strategy.

Coupled ladder variables are never pruned, for the same reason the FK
pre-ranker skips them: their measurement depends on a concurrently
explored kernel choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import CLOCK_BASE
from ..obs.metrics import NULL_REGISTRY
from .features import choice_features
from .model import LearnedCostModel, ModelArtifactError, StaleModelError


@dataclass(frozen=True)
class LearnedGate:
    """Trust thresholds for the learned fast path."""

    #: always keep at least this many top-ranked choices per variable
    topk: int = 1
    #: calibrated quantile that defines the uncertainty band
    quantile: str = "q99"
    #: minimum training-corpus size before the model may prune
    min_records: int = 32
    #: maximum calibrated q95 relative residual before the model may prune
    max_uncertainty: float = 0.25
    #: maximum |model - what-if| relative disagreement on critical kernels
    whatif_rel_gate: float = 0.05
    #: how many top critical-path GEMM records the cross-check inspects
    whatif_top: int = 3


class LearnedRanker:
    """A bound model + gate, with per-run accounting for the report."""

    def __init__(self, model: LearnedCostModel, gate: LearnedGate | None = None,
                 metrics=None):
        self.model = model
        self.gate = gate if gate is not None else LearnedGate()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._choices_pruned = 0
        self._vars_ranked = 0
        self._skips: dict[str, int] = {}
        self._whatif: dict = {"checked": 0, "max_rel_error": 0.0,
                              "strategies": {}, "ok": True}
        #: per-strategy cross-check verdicts (strategy_id -> bool)
        self._verified: dict[int, bool] = {}

    @classmethod
    def bind(cls, source, *, metrics=None, gate=None) -> "LearnedRanker":
        """Materialize a ranker from whatever the caller configured.

        ``source`` may be a ranker, a trained model, an artifact JSON
        string, or a path to one.  Raises :class:`ModelArtifactError` /
        :class:`StaleModelError` for the caller to turn into a counted
        fallback.
        """
        if isinstance(source, cls):
            if metrics is not None:
                source.metrics = metrics
            return source
        if isinstance(source, LearnedCostModel):
            return cls(source, gate=gate, metrics=metrics)
        if isinstance(source, str):
            text = source.lstrip()
            if text.startswith("{"):
                return cls(LearnedCostModel.loads(source), gate=gate,
                           metrics=metrics)
            return cls(LearnedCostModel.load_path(source), gate=gate,
                       metrics=metrics)
        raise ModelArtifactError(
            f"cannot bind a learned ranker from {type(source).__name__}"
        )

    # -- accounting ---------------------------------------------------------

    def _skip(self, reason: str) -> int:
        self._skips[reason] = self._skips.get(reason, 0) + 1
        self.metrics.counter(f"learn.skipped_{reason}").inc()
        return 0

    def summary(self) -> dict:
        """The ``fast_path["learned"]`` block of the run report."""
        return {
            "fingerprint": self.model.fingerprint,
            "records": self.model.records,
            "quantile": self.gate.quantile,
            "band_rel": self.model.quantiles.get(self.gate.quantile, 0.0),
            "choices_pruned": self._choices_pruned,
            "vars_ranked": self._vars_ranked,
            "skips": dict(sorted(self._skips.items())),
            "whatif": dict(self._whatif),
        }

    # -- the gated fast path ------------------------------------------------

    def apply(
        self, enumerator, strategy, tree, device, *,
        graph, seed, context=(), injector=None, provenance=None,
    ) -> int:
        """Prune ``tree`` in place; returns the number of choices removed.

        Mirrors :func:`repro.perf.ranker.prune_fk_tree`'s contract:
        deterministic in (graph, device, strategy, artifact), preserves
        choice order, re-initializes mutated variables and the tree.
        """
        if injector is not None or device.clock_mode != CLOCK_BASE:
            return self._skip("inexact")
        if not self.model.supports(device.name, repr(enumerator.features)):
            return self._skip("unsupported")
        if not self.model.confident(min_records=self.gate.min_records,
                                    max_rel=self.gate.max_uncertainty):
            return self._skip("unconfident")
        if not self._verify_strategy(enumerator, strategy, tree, device,
                                     graph, seed):
            return self._skip("whatif_rejected")

        pruned_total = 0
        tree_var_names = {v.name for v in tree.variables()}
        for var in tree.variables():
            if var.metric_kind != "units" or len(var.choices) <= 1:
                continue
            if var.name.startswith("ladder:") and (
                enumerator.member_unfused_kernel_vars(var.payload)
                & tree_var_names
            ):
                continue
            bands = [
                self.model.band(
                    choice_features(enumerator, strategy, var, choice, device),
                    quantile=self.gate.quantile,
                )
                for choice in var.choices
            ]
            self._vars_ranked += 1
            ranked = sorted(range(len(bands)), key=lambda i: (bands[i][1], i))
            keep = set(ranked[:self.gate.topk])
            best_hi = min(hi for _lo, _pred, hi in bands)
            keep.update(
                i for i, (lo, _pred, _hi) in enumerate(bands) if lo <= best_hi
            )
            if len(keep) == len(var.choices):
                continue
            pruned_total += len(var.choices) - len(keep)
            if provenance is not None:
                for i, choice in enumerate(var.choices):
                    if i not in keep:
                        provenance.model_pruned(
                            context, var.name, choice, bands[i][1]
                        )
            # survivors keep their original order: choice order decides
            # round pairing and finalize tie-breaks
            var.choices[:] = [
                choice for i, choice in enumerate(var.choices) if i in keep
            ]
            var.initialize()
        if pruned_total:
            self._choices_pruned += pruned_total
            self.metrics.counter("learn.choices_pruned").inc(pruned_total)
            tree.initialize()
        return pruned_total

    # -- the what-if cross-check --------------------------------------------

    def _verify_strategy(self, enumerator, strategy, tree, device,
                         graph, seed) -> bool:
        """Execute the strategy's default configuration once and compare
        the model against trace replay on the critical path."""
        if strategy.strategy_id in self._verified:
            return self._verified[strategy.strategy_id]

        from ..obs.analysis import TimelineGraph, analyze
        from ..obs.whatif import swap_libraries
        from ..runtime.executor import Executor

        built = enumerator.build_plan(strategy, tree.assignment())
        executor = Executor(graph, device, seed=seed)
        lowered = executor.dispatcher.lower(built.plan)
        raw = executor.run_lowered(lowered).raw
        timeline = TimelineGraph.from_execution(raw, lowered, device)
        report = analyze(timeline)

        owner = {
            unit_id: name
            for name, unit_ids in built.var_units.items()
            for unit_id in unit_ids
        }
        vars_by_name = {v.name: v for v in tree.variables()}
        indices = report.top_critical_records(self.gate.whatif_top,
                                              kind="gemm")
        if not indices:
            # tiny graphs can put no GEMM on the critical path at all
            # (elementwise chains dominate); the gate still wants evidence,
            # so verify against the heaviest GEMMs in the trace instead
            gemms = sorted(
                (n for n in timeline.nodes if n.kind == "gemm"),
                key=lambda n: (-n.duration, n.index),
            )
            indices = [n.index for n in gemms[:self.gate.whatif_top]]
        errors: list[float] = []
        checked_vars: set[str] = set()
        for index in indices:
            node = timeline.nodes[index]
            name = owner.get(node.unit)
            var = vars_by_name.get(name) if name is not None else None
            if var is None or name in checked_vars:
                continue
            checked_vars.add(name)
            owned = set(built.var_units[name])
            owned_nodes = [n for n in timeline.nodes if n.unit in owned]
            if name.startswith("kernel:"):
                # replay every library alternative for the owned GEMMs and
                # demand the model agree with the projection for each.  The
                # model prices the variable's whole unit set; the library
                # swap only re-prices its GEMMs, so the choice-invariant
                # owned work (layout packs) is read back from the trace.
                gemm_indices = [n.index for n in owned_nodes
                                if n.kind == "gemm"]
                invariant = sum(n.duration for n in owned_nodes
                                if n.kind != "gemm")
                for choice in var.choices:
                    prediction = self.model.predict(choice_features(
                        enumerator, strategy, var, choice, device
                    ))
                    projection = swap_libraries(
                        timeline, dict.fromkeys(gemm_indices, choice), device
                    )
                    projected = invariant + sum(
                        change.new_duration_us for change in projection.changes
                    )
                    errors.append(_rel_error(prediction, projected))
            else:
                # fusion/ladder: the trace already measured this choice;
                # the model must reproduce the recorded owned durations
                prediction = self.model.predict(choice_features(
                    enumerator, strategy, var, var.value, device
                ))
                recorded = sum(n.duration for n in owned_nodes)
                errors.append(_rel_error(prediction, recorded))

        max_error = max(errors, default=0.0)
        ok = bool(errors) and max_error <= self.gate.whatif_rel_gate
        self._whatif["checked"] += len(errors)
        self._whatif["max_rel_error"] = max(
            self._whatif["max_rel_error"], max_error
        )
        self._whatif["strategies"][str(strategy.strategy_id)] = {
            "label": strategy.label,
            "checks": len(errors),
            "max_rel_error": max_error,
            "ok": ok,
        }
        if not ok:
            self._whatif["ok"] = False
            self.metrics.counter("learn.whatif_rejected").inc()
        self.metrics.gauge("learn.whatif_max_rel_error").set(
            self._whatif["max_rel_error"]
        )
        self._verified[strategy.strategy_id] = ok
        return ok


def _rel_error(prediction: float, reference: float) -> float:
    return abs(prediction - reference) / max(abs(reference), 1e-9)


class FleetStrategyRanker:
    """Learned top-k cut over fleet strategies (docs/distributed.md).

    Applied *after* the admissible bound pruning: among the survivors the
    bound could not dominate, a confident
    :class:`~repro.learn.model.FleetStrategyModel` keeps only the top-k
    predicted strategies plus everyone whose calibrated lower band still
    overlaps the best upper band -- the same keep-rule as the fk
    :class:`LearnedRanker`, so a calibrated model provably cannot discard
    the measured winner.  Every decline is a counted stand-down
    (``learn.fleet.skipped_<reason>``) that falls back to measuring all
    survivors.
    """

    FEATURE_SET = "fleet"

    def __init__(self, model, gate: LearnedGate | None = None, metrics=None):
        self.model = model
        self.gate = gate if gate is not None else LearnedGate()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._skips: dict[str, int] = {}
        self._cut = 0

    def _skip(self, reason: str, count: int):
        self._skips[reason] = self._skips.get(reason, 0) + 1
        self.metrics.counter(f"learn.fleet.skipped_{reason}").inc()
        return list(range(count)), reason

    def cut(
        self, feature_rows: list[list[float]], *,
        fleet_name: str, exact: bool = True,
    ) -> tuple[list[int], str | None]:
        """Indices (original order) of strategies still worth measuring.

        ``exact`` carries the perf pre-ranker's verdict: when the
        measurement preconditions fail (injector, clocks, inner Astra)
        the learned model's corpus does not describe what will be
        measured either, so it stands down with it.
        """
        count = len(feature_rows)
        if count <= self.gate.topk:
            return list(range(count)), None
        if not exact:
            return self._skip("inexact", count)
        if not self.model.supports(fleet_name, self.FEATURE_SET):
            return self._skip("unsupported", count)
        if not self.model.confident(min_records=self.gate.min_records,
                                    max_rel=self.gate.max_uncertainty):
            return self._skip("unconfident", count)
        bands = [
            self.model.band(row, quantile=self.gate.quantile)
            for row in feature_rows
        ]
        ranked = sorted(range(count), key=lambda i: (bands[i][1], i))
        keep = set(ranked[:self.gate.topk])
        best_hi = min(hi for _lo, _pred, hi in bands)
        keep.update(i for i, (lo, _p, _h) in enumerate(bands) if lo <= best_hi)
        cut = count - len(keep)
        if cut:
            self._cut += cut
            self.metrics.counter("learn.fleet.strategies_cut").inc(cut)
        return sorted(keep), None

    def summary(self) -> dict:
        return {
            "fingerprint": self.model.fingerprint,
            "records": self.model.records,
            "quantile": self.gate.quantile,
            "strategies_cut": self._cut,
            "skips": dict(sorted(self._skips.items())),
        }
