"""The learned cost model: staged ridge regression with calibration.

Dependency-free (pure-Python linear algebra) and deterministic: the
same records and seed produce the bit-identical artifact on any host.
The fit is staged, GBM-style:

* **stage 0** anchors the prediction on the analytic ``est_us`` feature
  with a closed-form least-squares line -- on clean base-clock corpora
  (where the ``"units"`` metric *is* the analytic cost) this stage alone
  is already exact, and because it is linear in the raw estimate it
  extrapolates safely to shapes far outside the training corpus (the
  AutoTVM transfer property);
* **stage 1** fits a ridge regressor over the standardized remaining
  features to the stage-0 residual, soaking up whatever structure the
  anchor missed (contention, fused-launch overheads, noisy corpora).

Calibration: seeded k-fold cross-validation yields out-of-fold relative
residuals whose quantiles (q50/q90/q95/q99) ship inside the artifact --
every prediction comes with a band, and the ranker treats the band (not
the point estimate) as the truth.

Artifacts are JSON documents fingerprinted like store segments
(``serve/store.py``): a sha256 over the canonical body, the
``store_schema_version`` of the simulator that produced the training
targets, and the :func:`~repro.learn.features.feature_digest` of the
extractor layout.  :meth:`LearnedCostModel.loads` refuses anything
corrupt (:class:`ModelArtifactError`) or trained against a different
simulator/extractor (:class:`StaleModelError`); callers fall back to
exhaustive exploration.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import ClassVar

from ..serve.keys import store_schema_version
from .features import (
    FEATURE_NAMES,
    FLEET_FEATURE_NAMES,
    feature_digest,
    fleet_feature_digest,
)

ARTIFACT_VERSION = 1
ARTIFACT_KIND = "astra-learned-cost-model"

#: quantile levels calibrated into every artifact
QUANTILE_LEVELS = (0.50, 0.90, 0.95, 0.99)

_EPS = 1e-12


class ModelArtifactError(ValueError):
    """The artifact is unusable: corrupt, truncated, or malformed."""


class StaleModelError(ModelArtifactError):
    """The artifact is intact but trained against a different simulator
    schema or feature layout -- refusing it is the contract."""


def artifact_fingerprint(body: dict) -> str:
    """Checksum over the canonical artifact body (sans the checksum)."""
    scrubbed = {k: v for k, v in body.items() if k != "sha256"}
    text = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting; deterministic."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < _EPS:
            raise ModelArtifactError("singular normal equations")
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(n):
            if r == col:
                continue
            factor = a[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                a[r][c] -= factor * a[col][c]
    return [a[i][n] / a[i][i] for i in range(n)]


def _ridge(rows: list[list[float]], targets: list[float], l2: float) -> list[float]:
    """Ridge weights (including intercept, unregularized) for ``rows``."""
    n = len(rows[0]) + 1  # + intercept column
    xtx = [[0.0] * n for _ in range(n)]
    xty = [0.0] * n
    for row, y in zip(rows, targets):
        ext = row + [1.0]
        for i in range(n):
            xi = ext[i]
            if xi == 0.0:
                continue
            xty[i] += xi * y
            for j in range(n):
                xtx[i][j] += xi * ext[j]
    for i in range(n - 1):  # leave the intercept unpenalized
        xtx[i][i] += l2
    return _solve(xtx, xty)


def _quantile(sorted_values: list[float], level: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(level * len(sorted_values) + 0.999999) - 1))
    return sorted_values[index]


@dataclass
class LearnedCostModel:
    """A trained, serializable cost model (see module docstring).

    Subclasses retarget the same staged fit + calibration machinery at a
    different feature layout by overriding :attr:`artifact_kind`,
    :meth:`expected_features` and :meth:`expected_digest` -- the
    serialization checks (kind, digest) then keep the artifact families
    mutually unloadable (a fleet model can never masquerade as an fk
    model, and vice versa).
    """

    #: artifact-kind tag embedded in (and demanded of) every artifact
    artifact_kind: ClassVar[str] = ARTIFACT_KIND

    feature_names: tuple[str, ...]
    #: stage 0: prediction anchor ``anchor_slope * est_us + anchor_bias``
    anchor_slope: float
    anchor_bias: float
    #: stage 1: standardization + ridge weights over the residual
    mean: tuple[float, ...]
    scale: tuple[float, ...]
    weights: tuple[float, ...]  # one per feature + trailing intercept
    #: calibrated relative-residual quantiles, e.g. {"q99": 0.012}
    quantiles: dict[str, float]
    records: int
    seed: int
    l2: float
    calibration: str  # "kfold" or "insample"
    schema: str = field(default_factory=store_schema_version)
    features_digest: str = field(default_factory=feature_digest)
    devices: tuple[str, ...] = ()
    feature_sets: tuple[str, ...] = ()

    # -- the feature contract (overridden by subclasses) --------------------

    @classmethod
    def expected_features(cls) -> tuple[str, ...]:
        """The column layout this model family trains on."""
        return FEATURE_NAMES

    @classmethod
    def expected_digest(cls) -> str:
        """Fingerprint of :meth:`expected_features`' extractor layout."""
        return feature_digest()

    # -- training -----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        records,
        *,
        seed: int = 0,
        l2: float = 1e-6,
        folds: int = 5,
    ) -> "LearnedCostModel":
        """Train on :class:`~repro.learn.harvest.TrainingRecord` rows.

        Deterministic in (records, seed, l2, folds): the k-fold split is
        drawn from ``random.Random(seed)`` and every float reduction runs
        in a fixed order.
        """
        records = list(records)
        if not records:
            raise ModelArtifactError("cannot train on an empty corpus")
        expected = cls.expected_features()
        n_features = len(records[0].features)
        if n_features != len(expected):
            raise ModelArtifactError(
                f"expected {len(expected)} features, got {n_features}"
            )
        rows = [list(r.features) for r in records]
        targets = [float(r.target_us) for r in records]

        fitted = cls._fit_raw(rows, targets, l2)

        # out-of-fold calibration: each record is predicted by a model
        # that never saw it; relative residual quantiles become the band
        residuals: list[float] = []
        calibration = "insample"
        if len(records) >= 2 * folds:
            calibration = "kfold"
            order = list(range(len(records)))
            random.Random(seed).shuffle(order)
            chunk = (len(order) + folds - 1) // folds
            for start in range(0, len(order), chunk):
                holdout = set(order[start:start + chunk])
                train_rows = [rows[i] for i in order if i not in holdout]
                train_targets = [targets[i] for i in order if i not in holdout]
                fold_fit = cls._fit_raw(train_rows, train_targets, l2)
                for i in sorted(holdout):
                    pred = cls._predict_raw(fold_fit, rows[i])
                    residuals.append(
                        abs(pred - targets[i]) / max(abs(targets[i]), _EPS)
                    )
        else:
            for row, y in zip(rows, targets):
                pred = cls._predict_raw(fitted, row)
                residuals.append(abs(pred - y) / max(abs(y), _EPS))
        residuals.sort()
        quantiles = {
            f"q{int(level * 100)}": _quantile(residuals, level)
            for level in QUANTILE_LEVELS
        }

        slope, bias, mean, scale, weights = fitted
        return cls(
            feature_names=tuple(expected),
            anchor_slope=slope,
            anchor_bias=bias,
            mean=tuple(mean),
            scale=tuple(scale),
            weights=tuple(weights),
            quantiles=quantiles,
            records=len(records),
            seed=seed,
            l2=l2,
            calibration=calibration,
            features_digest=cls.expected_digest(),
            devices=tuple(sorted({r.device for r in records})),
            feature_sets=tuple(sorted({r.feature_set for r in records})),
        )

    @staticmethod
    def _fit_raw(rows, targets, l2):
        """(slope, bias, mean, scale, weights) for the two fit stages."""
        count = len(rows)
        est = [row[0] for row in rows]
        est_mean = sum(est) / count
        y_mean = sum(targets) / count
        var = sum((e - est_mean) ** 2 for e in est)
        if var < _EPS:
            slope, bias = 0.0, y_mean
        else:
            cov = sum(
                (e - est_mean) * (y - y_mean) for e, y in zip(est, targets)
            )
            slope = cov / var
            bias = y_mean - slope * est_mean
        residual = [y - (slope * e + bias) for e, y in zip(est, targets)]

        n = len(rows[0])
        mean = [sum(row[i] for row in rows) / count for i in range(n)]
        scale = []
        for i in range(n):
            spread = (
                sum((row[i] - mean[i]) ** 2 for row in rows) / count
            ) ** 0.5
            scale.append(spread if spread > _EPS else 1.0)
        standardized = [
            [(row[i] - mean[i]) / scale[i] for i in range(n)] for row in rows
        ]
        weights = _ridge(standardized, residual, l2)
        return slope, bias, mean, scale, weights

    @staticmethod
    def _predict_raw(fitted, row) -> float:
        slope, bias, mean, scale, weights = fitted
        pred = slope * row[0] + bias
        acc = weights[len(row)]  # intercept
        for i, value in enumerate(row):
            acc += weights[i] * ((value - mean[i]) / scale[i])
        return pred + acc

    # -- inference ----------------------------------------------------------

    def predict(self, features) -> float:
        """Point estimate (us) for one feature vector."""
        fitted = (
            self.anchor_slope, self.anchor_bias,
            self.mean, self.scale, self.weights,
        )
        return self._predict_raw(fitted, list(features))

    def band(self, features, quantile: str = "q99") -> tuple[float, float, float]:
        """(lo, prediction, hi) at the requested calibrated quantile."""
        pred = self.predict(features)
        rel = self.quantiles.get(quantile, 0.0)
        spread = abs(pred) * rel
        return (pred - spread, pred, pred + spread)

    def supports(self, device_name: str, feature_set: str) -> bool:
        """Was the model trained on this device and feature set?"""
        return device_name in self.devices and feature_set in self.feature_sets

    def confident(self, *, min_records: int = 32, max_rel: float = 0.25) -> bool:
        """Is the calibrated uncertainty tight enough to prune with?"""
        return (
            self.calibration == "kfold"
            and self.records >= min_records
            and self.quantiles.get("q95", float("inf")) <= max_rel
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        body = {
            "artifact": type(self).artifact_kind,
            "version": ARTIFACT_VERSION,
            "schema": self.schema,
            "features_digest": self.features_digest,
            "feature_names": list(self.feature_names),
            "anchor_slope": self.anchor_slope,
            "anchor_bias": self.anchor_bias,
            "mean": list(self.mean),
            "scale": list(self.scale),
            "weights": list(self.weights),
            "quantiles": dict(self.quantiles),
            "records": self.records,
            "seed": self.seed,
            "l2": self.l2,
            "calibration": self.calibration,
            "devices": list(self.devices),
            "feature_sets": list(self.feature_sets),
        }
        body["sha256"] = artifact_fingerprint(body)
        return body

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @property
    def fingerprint(self) -> str:
        return self.to_dict()["sha256"][:16]

    @classmethod
    def loads(cls, text: str, *, schema: str | None = None) -> "LearnedCostModel":
        """Parse and verify an artifact.

        Order matters and mirrors the store's segment classifier:
        integrity first (a corrupt artifact raises
        :class:`ModelArtifactError` before its schema field is believed),
        then staleness (:class:`StaleModelError` on a schema or feature
        layout the running simulator does not match).
        """
        try:
            body = json.loads(text)
        except (json.JSONDecodeError, TypeError) as exc:
            raise ModelArtifactError(f"unparseable model artifact: {exc}") from exc
        if not isinstance(body, dict) or body.get("artifact") != cls.artifact_kind:
            raise ModelArtifactError(
                f"not a {cls.artifact_kind!r} artifact"
            )
        declared = body.get("sha256")
        if declared != artifact_fingerprint(body):
            raise ModelArtifactError("model artifact checksum mismatch")
        if body.get("version") != ARTIFACT_VERSION:
            raise StaleModelError(
                f"artifact version {body.get('version')!r} != {ARTIFACT_VERSION}"
            )
        expected_schema = schema if schema is not None else store_schema_version()
        if body.get("schema") != expected_schema:
            raise StaleModelError(
                f"artifact schema {body.get('schema')!r} does not match the "
                f"running simulator ({expected_schema!r})"
            )
        if body.get("features_digest") != cls.expected_digest():
            raise StaleModelError("artifact feature layout mismatch")
        try:
            return cls(
                feature_names=tuple(body["feature_names"]),
                anchor_slope=float(body["anchor_slope"]),
                anchor_bias=float(body["anchor_bias"]),
                mean=tuple(body["mean"]),
                scale=tuple(body["scale"]),
                weights=tuple(body["weights"]),
                quantiles={k: float(v) for k, v in body["quantiles"].items()},
                records=int(body["records"]),
                seed=int(body["seed"]),
                l2=float(body["l2"]),
                calibration=str(body["calibration"]),
                schema=str(body["schema"]),
                features_digest=str(body["features_digest"]),
                devices=tuple(body["devices"]),
                feature_sets=tuple(body["feature_sets"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelArtifactError(f"malformed model artifact: {exc}") from exc

    @classmethod
    def load_path(cls, path: str, *, schema: str | None = None) -> "LearnedCostModel":
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ModelArtifactError(f"unreadable model artifact: {exc}") from exc
        return cls.loads(text, schema=schema)


FLEET_ARTIFACT_KIND = "astra-fleet-cost-model"


@dataclass
class FleetStrategyModel(LearnedCostModel):
    """The learned cost model retargeted at fleet *strategies*.

    One row per candidate partitioning (``learn/features.py``'s
    ``FLEET_FEATURE_NAMES``: the admissible analytic bound as the
    anchor, plus stage-compute shares, boundary traffic and the device
    envelope), trained on the per-sample step times earlier fleet
    searches measured (:func:`~repro.learn.harvest.harvest_fleet`).
    Same staged fit, same calibration, same banded trust contract --
    a distinct artifact kind and feature digest keep the families apart.
    """

    artifact_kind: ClassVar[str] = FLEET_ARTIFACT_KIND

    features_digest: str = field(default_factory=fleet_feature_digest)

    @classmethod
    def expected_features(cls) -> tuple[str, ...]:
        return FLEET_FEATURE_NAMES

    @classmethod
    def expected_digest(cls) -> str:
        return fleet_feature_digest()
