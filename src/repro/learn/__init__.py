"""Learned cost model over the profile-index corpus (docs/learning.md).

The FK pre-ranker (``repro.perf.ranker``) prunes choices it can price
*exactly*; this package goes further in the AutoTVM direction: a
dependency-free regression model trained on the measurements the fleet
has already paid for (``ProfileIndex`` / ``ProfileStore`` corpora),
with calibrated per-prediction uncertainty so exploration measures only
the model's top-k plus an uncertainty band -- and falls back to
exhaustive exploration whenever the model is stale, unconfident, or
contradicted by a Daydream-style what-if replay of the collected trace.

Two model families share the machinery: the per-choice fk model
(:class:`LearnedCostModel`) and the per-strategy fleet model
(:class:`FleetStrategyModel`, cut applied by
:class:`FleetStrategyRanker` -- see ``docs/distributed.md``).
"""

from .features import (
    FEATURE_NAMES,
    FLEET_FEATURE_NAMES,
    choice_features,
    feature_digest,
    fleet_feature_digest,
    fleet_strategy_features,
)
from .harvest import TrainingRecord, harvest_fleet, harvest_index, harvest_run
from .model import (
    ARTIFACT_VERSION,
    FLEET_ARTIFACT_KIND,
    FleetStrategyModel,
    LearnedCostModel,
    ModelArtifactError,
    StaleModelError,
    artifact_fingerprint,
)
from .ranker import FleetStrategyRanker, LearnedGate, LearnedRanker

__all__ = [
    "ARTIFACT_VERSION",
    "FEATURE_NAMES",
    "FLEET_ARTIFACT_KIND",
    "FLEET_FEATURE_NAMES",
    "FleetStrategyModel",
    "FleetStrategyRanker",
    "LearnedCostModel",
    "LearnedGate",
    "LearnedRanker",
    "ModelArtifactError",
    "StaleModelError",
    "TrainingRecord",
    "artifact_fingerprint",
    "choice_features",
    "feature_digest",
    "fleet_feature_digest",
    "fleet_strategy_features",
    "harvest_fleet",
    "harvest_index",
    "harvest_run",
]
