"""Learned cost model over the profile-index corpus (docs/learning.md).

The FK pre-ranker (``repro.perf.ranker``) prunes choices it can price
*exactly*; this package goes further in the AutoTVM direction: a
dependency-free regression model trained on the measurements the fleet
has already paid for (``ProfileIndex`` / ``ProfileStore`` corpora),
with calibrated per-prediction uncertainty so exploration measures only
the model's top-k plus an uncertainty band -- and falls back to
exhaustive exploration whenever the model is stale, unconfident, or
contradicted by a Daydream-style what-if replay of the collected trace.
"""

from .features import FEATURE_NAMES, choice_features, feature_digest
from .harvest import TrainingRecord, harvest_index, harvest_run
from .model import (
    ARTIFACT_VERSION,
    LearnedCostModel,
    ModelArtifactError,
    StaleModelError,
    artifact_fingerprint,
)
from .ranker import LearnedGate, LearnedRanker

__all__ = [
    "ARTIFACT_VERSION",
    "FEATURE_NAMES",
    "LearnedCostModel",
    "LearnedGate",
    "LearnedRanker",
    "ModelArtifactError",
    "StaleModelError",
    "TrainingRecord",
    "artifact_fingerprint",
    "choice_features",
    "feature_digest",
    "harvest_index",
    "harvest_run",
]
