"""Shared scaffolding for the model zoo.

Every model is written the way a researcher writes a *long-tail* cell
(paper section 1): gate by gate, one matmul per projection, relying on the
framework -- not hand-fused kernels -- for performance.  That naive
structure is precisely what gives Astra's enumerator its fusion
candidates: per step, the gate GEMMs share the step input ``x_t`` and the
recurrent state ``h_{t-1}`` (common-argument fusion, section 4.4.1), and
``x@W + h@U`` forms a GEMM-accumulator ladder.

Tracing scopes record provenance (``layerL/stepT``), which the enumerator
uses for equivalence classes and candidate pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..ir.autodiff import backward
from ..ir.graph import Graph
from ..ir.trace import Tracer, Var


@dataclass(frozen=True)
class ModelConfig:
    """Workload parameters for a traced training mini-batch."""

    batch_size: int = 32
    seq_len: int = 6
    hidden_size: int = 650
    embed_size: int = 650
    vocab_size: int = 10000
    num_layers: int = 1
    #: skip the embedding lookup (Table 9 evaluates embedding-less variants)
    use_embedding: bool = True
    #: trace the backward pass as well (training vs inference)
    train: bool = True

    def scaled(self, **changes) -> "ModelConfig":
        return replace(self, **changes)


@dataclass
class TracedModel:
    """A model traced at fixed shapes: the unit Astra optimizes."""

    name: str
    config: ModelConfig
    tracer: Tracer
    graph: Graph
    loss: Var
    #: node ids of per-step logits (useful for tests)
    logit_nodes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.graph.validate()


class ModelBuilder:
    """Helpers every recurrent language model shares."""

    def __init__(self, name: str, config: ModelConfig):
        self.name = name
        self.config = config
        self.tracer = Tracer(name)
        self._logits: list[int] = []

    # -- inputs -------------------------------------------------------------

    def token_inputs(self) -> list[Var]:
        """Per-step inputs: embedded tokens, or raw feature vectors when
        embeddings are disabled (the Table 9 variant)."""
        tr, cfg = self.tracer, self.config
        steps = []
        if cfg.use_embedding:
            table = tr.param((cfg.vocab_size, cfg.embed_size), label="embed")
            for t in range(cfg.seq_len):
                with tr.scope(f"embed/step{t}"):
                    idx = tr.input((cfg.batch_size,), dtype="int64", label=f"tok{t}")
                    steps.append(tr.embedding(table, idx))
        else:
            for t in range(cfg.seq_len):
                steps.append(
                    tr.input((cfg.batch_size, cfg.embed_size), label=f"x{t}")
                )
        return steps

    def zeros_state(self, label: str) -> Var:
        cfg = self.config
        return self.tracer.input((cfg.batch_size, cfg.hidden_size), label=label)

    # -- output head ----------------------------------------------------------

    def lm_loss(self, hiddens: list[Var]) -> Var:
        """Per-step projection to the vocabulary + cross-entropy.

        Targets arrive as one-hot input tensors; the loss is
        ``-sum(onehot * log softmax(logits))`` summed over steps.
        """
        tr, cfg = self.tracer, self.config
        w_out = tr.param((cfg.hidden_size, cfg.vocab_size), label="w_out")
        step_losses = []
        for t, h in enumerate(hiddens):
            with tr.scope(f"head/step{t}"):
                logits = tr.matmul(h, w_out)
                self._logits.append(logits.node.node_id)
                probs = tr.softmax(logits)
                logp = tr.log(probs)
                onehot = tr.input((cfg.batch_size, cfg.vocab_size), label=f"y{t}")
                step_losses.append(tr.reduce_sum(tr.mul(logp, onehot)))
        with tr.scope("head/total"):
            total = step_losses[0]
            for part in step_losses[1:]:
                total = tr.add(total, part)
            return tr.scale(total, -1.0 / (cfg.batch_size * cfg.seq_len))

    def finish(self, loss: Var) -> TracedModel:
        tr = self.tracer
        tr.output(loss)
        if self.config.train:
            backward(tr, loss)
        return TracedModel(
            name=self.name,
            config=self.config,
            tracer=tr,
            graph=tr.graph,
            loss=loss,
            logit_nodes=self._logits,
        )
