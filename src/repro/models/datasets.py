"""Synthetic dataset length distributions.

The paper's experiments only depend on input *shapes*, never values
(section 4.1) -- so the datasets are modelled by their sentence-length
distributions.  The PTB distribution drives the dynamic-graph bucketing
experiment (section 5.5 / Table 8): the paper calibrated 5 buckets on PTB
and obtained bucket boundaries of 13, 18, 24, 30 and 83 tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the bucket boundaries the paper reports for PTB with 5 buckets
PAPER_PTB_BUCKETS = (13, 18, 24, 30, 83)


@dataclass(frozen=True)
class LengthDistribution:
    """A sentence-length distribution used to drive dynamic-graph runs."""

    name: str
    mean_log: float
    sigma_log: float
    min_len: int
    max_len: int

    def sample(self, count: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        lengths = np.exp(rng.normal(self.mean_log, self.sigma_log, size=count))
        return np.clip(np.round(lengths), self.min_len, self.max_len).astype(int)


#: log-normal fit loosely matching PTB's length histogram (mean ~21 tokens,
#: long tail to 82) -- reproduces the paper's bucket boundaries when
#: quantile-bucketed into 5 buckets (see compute_buckets)
PTB_LENGTHS = LengthDistribution("ptb", mean_log=3.03, sigma_log=0.55, min_len=3, max_len=83)

#: Hutter is character-level and trained on fixed-length chunks
HUTTER_LENGTHS = LengthDistribution("hutter", mean_log=4.0, sigma_log=0.0, min_len=50, max_len=50)


def compute_buckets(lengths: np.ndarray, num_buckets: int = 5) -> tuple[int, ...]:
    """Quantile-calibrated bucket upper bounds (the paper's approach:
    "calibrated on the distribution of input sentence lengths", 6.5).

    Each bucket's bound is the smallest length that covers its quantile
    share; the last bucket always covers the maximum.
    """
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    sorted_lengths = np.sort(lengths)
    bounds = []
    for i in range(1, num_buckets):
        q = i / num_buckets
        bounds.append(int(sorted_lengths[min(len(sorted_lengths) - 1, int(q * len(sorted_lengths)))]))
    bounds.append(int(sorted_lengths[-1]))
    # deduplicate while keeping order (degenerate distributions)
    unique: list[int] = []
    for b in bounds:
        if not unique or b > unique[-1]:
            unique.append(b)
    return tuple(unique)


def bucket_for(length: int, buckets: tuple[int, ...]) -> int:
    """Index of the smallest bucket that fits ``length`` (mapping to the
    nearest *larger* bucket, section 6.5)."""
    for i, bound in enumerate(buckets):
        if length <= bound:
            return i
    return len(buckets) - 1
