"""PTB Stacked LSTM -- the "popular" structure cuDNN fully accelerates.

A standard multi-layer LSTM language model in the "large" PTB
configuration (hidden/input size 1500, paper section 6.3).  Because the
cell is a vanilla LSTM, the cuDNN baseline applies to the whole recurrent
stack; Table 5 compares Astra against it.
"""

from __future__ import annotations

from ..ir.trace import Tracer, Var
from .cells import ModelBuilder, ModelConfig, TracedModel

#: the paper's "large" PTB configuration (input size of 1500), 2 layers
DEFAULT_CONFIG = ModelConfig(
    hidden_size=1500, embed_size=1500, vocab_size=2000, num_layers=2
)

_GATES = ("i", "f", "o", "g")


def lstm_step(tr: Tracer, x: Var, h: Var, c: Var, weights: dict) -> tuple[Var, Var]:
    """One standard LSTM step, written gate-by-gate (one GEMM pair per
    gate) the way unfused framework code executes it."""
    pre = {}
    for name in _GATES:
        w, u, b = weights[name]
        pre[name] = tr.add(tr.add(tr.matmul(x, w), tr.matmul(h, u)), b)
    i = tr.sigmoid(pre["i"])
    f = tr.sigmoid(pre["f"])
    o = tr.sigmoid(pre["o"])
    g = tr.tanh(pre["g"])
    c_next = tr.add(tr.mul(f, c), tr.mul(i, g))
    h_next = tr.mul(o, tr.tanh(c_next))
    return h_next, c_next


def make_lstm_weights(tr: Tracer, input_size: int, hidden: int, tag: str) -> dict:
    return {
        name: (
            tr.param((input_size, hidden), label=f"{tag}_W{name}"),
            tr.param((hidden, hidden), label=f"{tag}_U{name}"),
            tr.param((hidden,), label=f"{tag}_b{name}"),
        )
        for name in _GATES
    }


def build_stacked_lstm(config: ModelConfig = DEFAULT_CONFIG) -> TracedModel:
    """Trace one training mini-batch of the stacked-LSTM language model."""
    builder = ModelBuilder("stacked_lstm", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        layer_weights = []
        for layer in range(config.num_layers):
            input_size = config.embed_size if layer == 0 else hidden
            layer_weights.append(make_lstm_weights(tr, input_size, hidden, f"l{layer}"))

    xs = builder.token_inputs()
    states = [
        (builder.zeros_state(f"h0_l{layer}"), builder.zeros_state(f"c0_l{layer}"))
        for layer in range(config.num_layers)
    ]

    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        inp = x
        for layer in range(config.num_layers):
            with tr.scope(f"layer{layer}/step{t}"):
                h, c = lstm_step(tr, inp, *states[layer], layer_weights[layer])
                states[layer] = (h, c)
                inp = h
        hiddens.append(inp)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
