"""RHN: Recurrent Highway Network (Zilly et al. 2016).

One of the long-tail architectures the paper's introduction names as
"not currently accelerated by cuDNN" (section 1).  Each step runs a
*stack of highway micro-layers* inside the recurrence:

    for layer l in 1..depth:
        h_l = tanh(x@W_h [l==1 only] + s_{l-1}@R_h^l + b_h^l)
        t_l = sigmoid(x@W_t [l==1 only] + s_{l-1}@R_t^l + b_t^l)
        s_l = h_l * t_l + s_{l-1} * (1 - t_l)

The first micro-layer sees the input (a 2-GEMM ladder per gate); deeper
micro-layers are recurrence-only (single GEMMs sharing s_{l-1} -- a
common-argument fusion pair per micro-layer).
"""

from __future__ import annotations

from ..ir.trace import Var
from .cells import ModelBuilder, ModelConfig, TracedModel

DEFAULT_CONFIG = ModelConfig(hidden_size=830, embed_size=830, vocab_size=2000)

#: recurrence depth (micro-layers per step); the RHN paper uses up to 10
DEFAULT_DEPTH = 3


def build_rhn(config: ModelConfig = DEFAULT_CONFIG, depth: int = DEFAULT_DEPTH) -> TracedModel:
    """Trace one training mini-batch of the RHN language model."""
    builder = ModelBuilder("rhn", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        w_h = tr.param((config.embed_size, hidden), label="W_h")
        w_t = tr.param((config.embed_size, hidden), label="W_t")
        layers = []
        for l in range(depth):
            layers.append((
                tr.param((hidden, hidden), label=f"R_h{l}"),
                tr.param((hidden, hidden), label=f"R_t{l}"),
                tr.param((hidden,), label=f"b_h{l}"),
                tr.param((hidden,), label=f"b_t{l}"),
            ))

    xs = builder.token_inputs()
    s = builder.zeros_state("s0")

    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        for l, (r_h, r_t, b_h, b_t) in enumerate(layers):
            with tr.scope(f"hwy{l}/step{t}"):
                if l == 0:
                    pre_h = tr.add(tr.add(x @ w_h, s @ r_h), b_h)
                    pre_t = tr.add(tr.add(x @ w_t, s @ r_t), b_t)
                else:
                    pre_h = tr.add(s @ r_h, b_h)
                    pre_t = tr.add(s @ r_t, b_t)
                h = tr.tanh(pre_h)
                gate = tr.sigmoid(pre_t)
                carry = tr.add_scalar(tr.scale(gate, -1.0), 1.0)
                s = tr.add(tr.mul(h, gate), tr.mul(s, carry))
        hiddens.append(s)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
