"""LSTM with Attention over its own history (Wu et al. 2016-style).

Another long-tail structure from the paper's introduction: a single-layer
LSTM whose output at each step attends over all *previous* step outputs.
The recurrent core is standard LSTM (cuDNN could cover it in isolation),
but the interleaved attention breaks the accelerator's layer abstraction
(section 2.4: "these APIs work at the abstraction of a single layer") --
so the hand-optimized path does not apply end to end, while Astra's
whole-graph view does.
"""

from __future__ import annotations

from ..ir.trace import Var
from .cells import ModelBuilder, ModelConfig, TracedModel
from .stacked_lstm import lstm_step, make_lstm_weights

DEFAULT_CONFIG = ModelConfig(hidden_size=650, embed_size=650, vocab_size=2000)


def build_attn_lstm(config: ModelConfig = DEFAULT_CONFIG) -> TracedModel:
    """Trace one training mini-batch of the attention-augmented LSTM."""
    builder = ModelBuilder("attn_lstm", config)
    tr = builder.tracer
    hidden = config.hidden_size

    with tr.scope("params"):
        weights = make_lstm_weights(tr, config.embed_size, hidden, "l0")
        w_q = tr.param((hidden, hidden), label="attn_Wq")
        w_mix = tr.param((2 * hidden, hidden), label="attn_Wmix")

    xs = builder.token_inputs()
    h = builder.zeros_state("h0")
    c = builder.zeros_state("c0")

    history: list[Var] = []
    hiddens: list[Var] = []
    for t, x in enumerate(xs):
        with tr.scope(f"layer0/step{t}"):
            h, c = lstm_step(tr, x, h, c, weights)
        if history:
            with tr.scope(f"attention/step{t}"):
                # batch-pooled memory of previous outputs: (t, H)
                pooled = [
                    tr.scale(tr.reduce_sum(o, axis=0, keepdims=True),
                             1.0 / config.batch_size)
                    for o in history
                ]
                memory = pooled[0] if len(pooled) == 1 else tr.concat(pooled, axis=0)
                keys = tr.transpose(memory)          # (H, t)
                scores = tr.matmul(tr.matmul(h, w_q), keys)   # (B, t)
                attn = tr.softmax(scores)
                context = tr.matmul(attn, memory)    # (B, H)
                mixed = tr.concat([h, context], axis=1)
                h = tr.tanh(tr.matmul(mixed, w_mix))
        history.append(h)
        hiddens.append(h)

    loss = builder.lm_loss(hiddens)
    return builder.finish(loss)
